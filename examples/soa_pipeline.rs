//! The Figure 2 prototype pipeline over the wire protocol.
//!
//! Client → (XML envelope) → bus → PromiseGateway → PromiseManager →
//! Application handler → ResourceManager, with promise checking after the
//! action and a reply envelope back to the client. The §6 combined form
//! is used: one message carries a `<promise-request>`, an `<environment>`
//! referencing it by correlation, and the purchase action body.
//!
//! Run with: `cargo run --example soa_pipeline`

use std::sync::Arc;
use std::time::Duration;

use promises::core::{ActionError, Catalog, PoolSchema, PromiseManager, SystemClock};
use promises::rm::ResourceManager;
use promises::wire::{
    ActionRequest, EnvEntry, EnvRef, Envelope, EnvironmentHeader, InMemoryBus, NetworkProfile,
    PromiseGateway, PromiseRequestHeader, PromiseResult,
};

fn main() {
    println!("== Figure 2: client -> promise manager -> application -> RM ==\n");

    // Server side: promise manager + application handler behind a gateway.
    let rm = Arc::new(ResourceManager::new());
    let pm = Arc::new(PromiseManager::new(rm, Arc::new(SystemClock::new())));
    pm.register_pool(PoolSchema::quantity("pink-widgets"));
    pm.seed_quantity("pink-widgets", 10).unwrap();

    let gateway = Arc::new(PromiseGateway::new(Arc::clone(&pm)));
    gateway.register_handler(
        "merchant",
        "purchase",
        Arc::new(|rm, txn, action| {
            let qty: i64 = action
                .get("qty")
                .and_then(|v| v.parse().ok())
                .ok_or(ActionError::App("missing qty".into()))?;
            rm.update(txn, Catalog::QTY_TABLE, "pink-widgets", |r| {
                let q = r.int("qty").unwrap();
                r.set("qty", q - qty);
            })?;
            Ok(vec![("shipped".into(), qty.to_string())])
        }),
    );

    // Transport: in-memory bus with injected latency (every message is
    // XML-encoded and decoded in both directions).
    let bus = InMemoryBus::new();
    bus.set_profile(NetworkProfile {
        latency: Duration::from_millis(2),
        drop_probability: 0.0,
    });
    bus.register("merchant-gateway", gateway.clone());

    // Client side, message 1: standalone promise request.
    let request = Envelope::new().with_promise_request(PromiseRequestHeader {
        request_id: "r1".into(),
        client: "order-process".into(),
        predicates: vec!["qty('pink-widgets') >= 5".into()],
        duration_ms: 60_000,
        exchange: vec![],
        negotiate: false,
        prepare: false,
    });
    println!("client: -> promise request qty('pink-widgets') >= 5");
    let reply = bus.send("merchant-gateway", &request).unwrap();
    let resp = reply.response_for("r1").unwrap();
    let promise_id = resp.promise_id.expect("accepted");
    println!(
        "client: <- accepted, promise id {promise_id}, expires at {}ms",
        resp.expires_at
    );

    // Message 2: the §6 combined form — request a SECOND promise, run the
    // purchase under BOTH (releasing both on success), in one envelope.
    let combined = Envelope::new()
        .with_promise_request(PromiseRequestHeader {
            request_id: "r2".into(),
            client: "order-process".into(),
            predicates: vec!["qty('pink-widgets') >= 2".into()],
            duration_ms: 60_000,
            exchange: vec![],
            negotiate: false,
            prepare: false,
        })
        .with_environment(EnvironmentHeader {
            entries: vec![
                EnvEntry {
                    reference: EnvRef::Id(promise_id),
                    release_after: true,
                },
                EnvEntry {
                    reference: EnvRef::Correlation("r2".into()),
                    release_after: true,
                },
            ],
        })
        .with_action(ActionRequest::new("merchant", "purchase").param("qty", 7));
    println!("client: -> combined promise-request + purchase(7) under both promises");
    let reply = bus.send("merchant-gateway", &combined).unwrap();
    assert!(matches!(
        reply.response_for("r2").unwrap().result,
        PromiseResult::Accepted
    ));
    let action = reply.action_response.clone().unwrap();
    println!(
        "client: <- action ok={} shipped={:?}; promises released with it",
        action.ok,
        action.get("shipped")
    );
    assert!(action.ok);
    assert_eq!(pm.live_count(), 0);

    // Message 3: a violating purchase is rolled back by the post-check.
    let hold = Envelope::new().with_promise_request(PromiseRequestHeader {
        request_id: "r3".into(),
        client: "other-client".into(),
        predicates: vec!["qty('pink-widgets') >= 3".into()],
        duration_ms: 60_000,
        exchange: vec![],
        negotiate: false,
        prepare: false,
    });
    bus.send("merchant-gateway", &hold).unwrap();
    println!("\nother-client: holds a promise for the remaining 3 widgets");

    let rogue =
        Envelope::new().with_action(ActionRequest::new("merchant", "purchase").param("qty", 1));
    let reply = bus.send("merchant-gateway", &rogue).unwrap();
    let action = reply.action_response.unwrap();
    println!(
        "client: unprotected purchase(1) -> ok={} ({})",
        action.ok,
        action.error.as_deref().unwrap_or("-")
    );
    assert!(!action.ok, "the rogue purchase must be rolled back");

    let stats = bus.stats();
    println!(
        "\nbus: {} messages delivered, {} bytes of XML moved",
        stats.delivered, stats.bytes
    );
    let m = pm.metrics();
    println!(
        "manager: granted={} rejected={} executions={} violations_rolled_back={}",
        m.granted, m.rejected, m.executions, m.violations_rolled_back
    );
}
