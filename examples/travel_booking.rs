//! Travel booking: atomic multi-resource promises, negotiation, and
//! promise modification (paper §3.3 and §4).
//!
//! A travel agent atomically promises flight + car + hotel room; a hotel
//! client negotiates away desirable-but-unavailable room features; a bank
//! client upgrades and weakens a funds promise.
//!
//! Run with: `cargo run --example travel_booking`

use std::sync::Arc;

use promises::core::{Predicate, PromiseManager, PromiseRequestSpec, PropExpr, SystemClock};
use promises::rm::ResourceManager;
use promises::services::{Bank, Hotel, RoomSpec, TravelAgent};

fn new_pm() -> Arc<PromiseManager> {
    Arc::new(PromiseManager::new(
        Arc::new(ResourceManager::new()),
        Arc::new(SystemClock::new()),
    ))
}

fn main() {
    println!("== §4: atomic flight + car + hotel promise ==\n");
    let agent = TravelAgent::new(new_pm(), 2, 1, &[("201", false), ("512", true)]).unwrap();

    let trip = agent.promise_trip("alice", true, 60_000).unwrap().unwrap();
    println!("alice: flight+car+view-room promised atomically ({trip})");

    match agent.promise_trip("bob", false, 60_000).unwrap() {
        Ok(_) => unreachable!("only one car exists and alice holds a car promise"),
        Err(reason) => println!("bob: whole trip rejected, nothing partially held ({reason})"),
    }

    let booking = agent.confirm(trip).unwrap();
    println!("alice: trip confirmed, room {} booked\n", booking.room);
    assert_eq!(booking.room, "512");

    println!("== §3.3: negotiating desirable room features ==\n");
    let hotel = Hotel::new(new_pm());
    hotel
        .add_room(RoomSpec::new("101", 1, false, false, 2, "standard"))
        .unwrap();
    hotel
        .add_room(RoomSpec::new("202", 2, false, false, 2, "standard"))
        .unwrap();

    // Essential: two beds, non-smoking. Desirable: a view, then a suite.
    let want = Predicate::property(
        "rooms",
        PropExpr::all([
            PropExpr::eq("beds", 2i64),
            PropExpr::eq("smoking", false),
            PropExpr::eq("view", true).desirable(),
            PropExpr::at_least("class", "suite").desirable(),
        ]),
        1,
    );
    let mut spec = PromiseRequestSpec::new("negotiated-stay", "carol");
    spec.predicates = vec![want];
    let outcome = hotel.manager().request_negotiated(spec).unwrap();
    println!(
        "carol: granted after dropping {} desirable clause(s)",
        outcome.total_dropped()
    );
    println!("       granted form: {}", outcome.granted_predicates[0]);
    assert!(outcome.response.decision.is_granted());
    assert_eq!(
        outcome.total_dropped(),
        2,
        "no view, no suite in this hotel"
    );

    println!("\n== §4: upgrading and weakening a funds promise ==\n");
    let bank = Bank::new(new_pm());
    bank.open_account("alice", 250).unwrap();
    let p100 = bank
        .promise_funds("shop", "alice", 100, 60_000)
        .unwrap()
        .unwrap();
    println!("shop: holds promise for $100 of alice's $250");

    // Upgrade to $200: during the atomic exchange the demand is 200, not
    // 100 + 200 — so this succeeds with only $250 on hand.
    let p200 = bank
        .change_promise("shop", "alice", p100, 200, 60_000)
        .unwrap()
        .unwrap();
    println!("shop: upgraded to $200 atomically (old promise handed back)");

    // Attempting $300 fails and RETAINS the $200 promise (§4).
    let kept = bank
        .change_promise("shop", "alice", p200, 300, 60_000)
        .unwrap();
    assert!(kept.is_err());
    println!("shop: $300 upgrade rejected; the $200 promise was retained");

    // Weaken to $50 and withdraw.
    let p50 = bank
        .change_promise("shop", "alice", p200, 50, 60_000)
        .unwrap()
        .unwrap();
    bank.withdraw(p50, "alice", 50).unwrap();
    println!(
        "shop: weakened to $50 and withdrew; alice's balance is now ${}",
        bank.balance("alice").unwrap()
    );
    assert_eq!(bank.balance("alice").unwrap(), 200);
}
