//! A long-running order process as an explicit workflow (the shape the
//! paper's GAT engine [5] would drive), including the failure branches:
//! rejection at placement, compensation when only part of the resources
//! are available, and promise expiry when the customer stalls too long.
//!
//! Run with: `cargo run --example order_workflow`

use std::sync::Arc;

use promises::core::{PromiseManager, SystemClock};
use promises::rm::ResourceManager;
use promises::services::{Merchant, OrderEvent, OrderWorkflow, Shipping};

fn services(stock: u64, slots: u64) -> (Arc<Merchant>, Arc<Shipping>) {
    let pm = Arc::new(PromiseManager::new(
        Arc::new(ResourceManager::new()),
        Arc::new(SystemClock::new()),
    ));
    let merchant = Arc::new(Merchant::new(Arc::clone(&pm)));
    merchant.stock_sku("widgets", stock).unwrap();
    let shipping = Arc::new(Shipping::new(pm, slots).unwrap());
    (merchant, shipping)
}

fn main() {
    println!("== A promise-protected order workflow ==\n");
    let (merchant, shipping) = services(12, 2);

    // Happy path.
    let mut order = OrderWorkflow::new(
        Arc::clone(&merchant),
        Arc::clone(&shipping),
        "alice",
        "widgets",
        5,
        60_000,
    );
    println!("alice: place order (5 widgets + next-day shipping)");
    println!("  -> {:?}", order.handle(OrderEvent::Place).unwrap());
    println!("alice: payment received (promises still held)");
    println!(
        "  -> {:?}",
        order.handle(OrderEvent::PaymentReceived).unwrap()
    );
    println!("alice: fulfil (purchase + ship, promises released atomically)");
    println!("  -> {:?}\n", order.handle(OrderEvent::Fulfil).unwrap());

    // Rejection branch: goods unavailable => terminate immediately, no
    // "insufficient stock after payment" code path needed (the paper's
    // core programming-model argument).
    let mut big = OrderWorkflow::new(
        Arc::clone(&merchant),
        Arc::clone(&shipping),
        "bob",
        "widgets",
        100,
        60_000,
    );
    println!("bob: place order for 100 widgets (only 7 remain)");
    println!("  -> {:?}\n", big.handle(OrderEvent::Place).unwrap());

    // Cancellation branch: promises returned to the pool.
    let mut fickle = OrderWorkflow::new(
        Arc::clone(&merchant),
        Arc::clone(&shipping),
        "carol",
        "widgets",
        7,
        60_000,
    );
    println!("carol: place order for the last 7 widgets");
    println!("  -> {:?}", fickle.handle(OrderEvent::Place).unwrap());
    println!("carol: cancels");
    println!("  -> {:?}", fickle.handle(OrderEvent::Cancel).unwrap());
    println!(
        "  merchant: {} widgets promisable again, {} live promises\n",
        merchant.on_hand("widgets").unwrap(),
        merchant.manager().live_count()
    );

    // Expiry branch: a short promise lapses while the customer dawdles.
    let mut slow = OrderWorkflow::new(
        Arc::clone(&merchant),
        Arc::clone(&shipping),
        "dave",
        "widgets",
        2,
        30, // 30 ms TTL
    );
    println!("dave: place order with a 30ms promise, then dawdle 100ms");
    slow.handle(OrderEvent::Place).unwrap();
    slow.handle(OrderEvent::PaymentReceived).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    match slow.handle(OrderEvent::Fulfil) {
        Err(e) => println!("  -> fulfilment refused: {e}"),
        Ok(s) => println!("  -> {s:?} (machine was fast enough!)"),
    }
    let m = merchant.manager().metrics();
    println!(
        "\nmanager metrics: granted={} rejected={} released={} expired={} expired-errors={}",
        m.granted, m.rejected, m.released, m.expired_reaped, m.expired_errors
    );
    assert_eq!(merchant.manager().live_count(), 0);
}
