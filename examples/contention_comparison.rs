//! Head-to-head isolation comparison under contention (mini version of
//! experiment E4; the full sweep lives in `promises-bench`).
//!
//! Runs the same reserve–think–consume workload over four mechanisms:
//! long-held locks, optimistic check-then-act, escrow, and promises, and
//! prints a comparison table.
//!
//! Run with: `cargo run --release --example contention_comparison`

use std::sync::Arc;
use std::time::Duration;

use promises::baselines::{EscrowReserver, LockReserver, OptimisticReserver};
use promises::rm::ResourceManager;
use promises::sim::{promise_reserver, run_qty_workload, seed_pools, RunReport, WorkloadConfig};

fn cfg() -> WorkloadConfig {
    WorkloadConfig {
        clients: 16,
        ops_per_client: 30,
        pools: 4,
        hotspot_probability: 0.7,
        zipf_exponent: 0.0,
        amount_max: 3,
        think: Duration::from_millis(2),
        real_time_think: true,
        abandon_probability: 0.1,
        multi_pool: false,
        pinned_pools: false,
        seed: 2007,
    }
}

fn row(name: &str, r: &RunReport) {
    let latency = r
        .avg_latency
        .map(|d| format!("{:.1}ms", d.as_secs_f64() * 1e3))
        .unwrap_or_else(|| "n/a".into());
    println!(
        "{name:<12} {:>8.0} {:>10} {:>10} {:>10} {:>10} {:>12}",
        r.throughput, r.completed, r.failed_fast, r.failed_late, r.deadlocks, latency,
    );
}

fn main() {
    let cfg = cfg();
    const POOL_QTY: u64 = 100_000; // ample stock: isolate concurrency cost
    println!(
        "workload: {} clients x {} ops, {} pools (hotspot p={}), think {:?}\n",
        cfg.clients, cfg.ops_per_client, cfg.pools, cfg.hotspot_probability, cfg.think
    );
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "system", "ops/s", "completed", "fail-fast", "fail-late", "deadlocks", "avg-latency"
    );

    let rm = Arc::new(ResourceManager::new());
    seed_pools(&rm, cfg.pools, POOL_QTY);
    row(
        "locks-2pl",
        &run_qty_workload(Arc::new(LockReserver::new(rm)), &cfg),
    );

    let rm = Arc::new(ResourceManager::new());
    seed_pools(&rm, cfg.pools, POOL_QTY);
    row(
        "optimistic",
        &run_qty_workload(Arc::new(OptimisticReserver::new(rm)), &cfg),
    );

    let rm = Arc::new(ResourceManager::new());
    seed_pools(&rm, cfg.pools, POOL_QTY);
    row(
        "escrow",
        &run_qty_workload(Arc::new(EscrowReserver::new(rm)), &cfg),
    );

    let reserver = Arc::new(promise_reserver(cfg.pools, POOL_QTY));
    row("promises", &run_qty_workload(reserver, &cfg));

    println!(
        "\nreading the table: locks serialise the hotspot (low ops/s); promises,\n\
         escrow and optimistic overlap think time; under ample stock optimistic\n\
         has no late failures — re-run with scarce stock to see them appear."
    );
}
