//! Quickstart: the paper's Figure 1 ordering process, step by step.
//!
//! Reproduces the message flow of Figure 1 ("Outline of Ordering Process
//! Code"): the order process asks the promise manager for a promise that
//! 5 pink widgets stay in stock, continues processing the order while a
//! *competing* order runs concurrently, then purchases the stock and
//! releases the promise as one atomic unit.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use promises::core::{PromiseManager, SystemClock};
use promises::rm::ResourceManager;
use promises::services::Merchant;

fn main() {
    println!("== Figure 1: the promise-protected ordering process ==\n");

    let rm = Arc::new(ResourceManager::new());
    let pm = Arc::new(PromiseManager::new(rm, Arc::new(SystemClock::new())));
    let merchant = Merchant::new(pm);
    merchant.stock_sku("pink-widgets", 12).unwrap();
    println!("merchant: stocked 12 pink widgets");

    // Order process: determine we need 5 pink widgets to be in stock and
    // send a promise request that quantity('pink widgets') >= 5.
    println!("\n[order-1] send promise request: qty('pink-widgets') >= 5");
    let p1 = match merchant
        .reserve_stock("alice", "pink-widgets", 5, 60_000)
        .unwrap()
    {
        Ok(promise) => {
            println!("[manager] promise accepted: {promise}");
            promise
        }
        Err(reason) => {
            println!("[manager] promise rejected ({reason}); terminate order process");
            return;
        }
    };

    // Concurrent order processes may be selling the same goods...
    println!("\n[order-2] concurrent order wants 7 widgets (only 12-5=7 unpromised remain)");
    let p2 = merchant
        .reserve_stock("bob", "pink-widgets", 7, 60_000)
        .unwrap()
        .expect("7 unpromised widgets remain");
    println!("[manager] promise accepted: {p2}");

    println!("\n[order-3] a third order wants 1 more widget");
    match merchant
        .reserve_stock("carol", "pink-widgets", 1, 60_000)
        .unwrap()
    {
        Ok(_) => unreachable!("stock is fully promised"),
        Err(reason) => println!("[manager] promise rejected immediately: {reason}"),
    }

    // "...Continue processing order (organise payment, shippers)..."
    println!("\n[order-1] organising payment and shipping under promise protection");

    // "Send 'purchase stock' request to promise manager and release
    // promise to keep stock level >= 5" — atomic per §4.
    let order = merchant.purchase(p1, "alice", "pink-widgets", 5).unwrap();
    println!("[manager] purchase executed, promise released atomically -> order {order}");

    let order = merchant.purchase(p2, "bob", "pink-widgets", 7).unwrap();
    println!("[manager] second purchase executed -> order {order}");

    println!(
        "\nfinal stock: {} widgets, {} completed orders, {} live promises",
        merchant.on_hand("pink-widgets").unwrap(),
        merchant.order_count().unwrap(),
        merchant.manager().live_count()
    );
    let m = merchant.manager().metrics();
    println!(
        "manager metrics: granted={} rejected={} executions={} violations={}",
        m.granted, m.rejected, m.executions, m.violations_rolled_back
    );
    assert_eq!(merchant.on_hand("pink-widgets").unwrap(), 0);
    assert_eq!(merchant.manager().live_count(), 0);
}
