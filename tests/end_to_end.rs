//! Cross-crate integration tests: full scenarios spanning the resource
//! manager, promise core, wire protocol, and the example services.

use std::sync::Arc;

use promises::core::{
    ActionError, Catalog, Environment, ManualClock, PoolSchema, Predicate, PromiseManager,
    PromiseRequestSpec, PropExpr, SystemClock,
};
use promises::rm::ResourceManager;
use promises::services::{standalone_carrier, Airline, Bank, Hotel, Merchant, RoomSpec, Shipping};
use promises::wire::{Envelope, InMemoryBus, PromiseGateway, PromiseRequestHeader, PromiseResult};

fn new_pm() -> Arc<PromiseManager> {
    Arc::new(PromiseManager::new(
        Arc::new(ResourceManager::new()),
        Arc::new(SystemClock::new()),
    ))
}

#[test]
fn merchant_and_bank_share_one_manager() {
    // One promise manager fronting two services: an order that needs both
    // stock AND funds is granted atomically across both pools.
    let pm = new_pm();
    let merchant = Merchant::new(Arc::clone(&pm));
    merchant.stock_sku("widgets", 10).unwrap();
    let bank = Bank::new(Arc::clone(&pm));
    bank.open_account("alice", 100).unwrap();

    let mut spec = PromiseRequestSpec::new("combined", "checkout");
    spec.predicates = vec![
        Predicate::qty_at_least("widgets", 4),
        Predicate::qty_at_least("acct:alice", 40),
    ];
    let combined = pm.request(spec).unwrap().decision.granted_id().unwrap();

    // Settle both sides in one protected action, releasing the promise.
    pm.execute(&Environment::none().releasing(combined), |rm, txn| {
        rm.update(txn, Catalog::QTY_TABLE, "widgets", |r| {
            let q = r.int("qty").unwrap();
            r.set("qty", q - 4);
        })?;
        rm.update(txn, Catalog::QTY_TABLE, "acct:alice", |r| {
            let q = r.int("qty").unwrap();
            r.set("qty", q - 40);
        })
        .map_err(ActionError::from)
    })
    .unwrap();

    assert_eq!(merchant.on_hand("widgets").unwrap(), 6);
    assert_eq!(bank.balance("alice").unwrap(), 60);
    assert_eq!(pm.live_count(), 0);
}

#[test]
fn hotel_over_the_wire_with_predicate_language() {
    // Drive the hotel through the gateway using the text predicate syntax.
    let pm = new_pm();
    let hotel = Hotel::new(Arc::clone(&pm));
    hotel
        .add_room(RoomSpec::new("512", 5, true, false, 2, "standard"))
        .unwrap();
    hotel
        .add_room(RoomSpec::new("610", 6, true, false, 2, "deluxe"))
        .unwrap();

    let gateway = Arc::new(PromiseGateway::new(Arc::clone(&pm)));
    let bus = InMemoryBus::new();
    bus.register("hotel", gateway);

    let env = Envelope::new().with_promise_request(PromiseRequestHeader {
        request_id: "want-view".into(),
        client: "alice".into(),
        predicates: vec!["prop('rooms'): view == true && floor >= 5".into()],
        duration_ms: 60_000,
        exchange: vec![],
        negotiate: false,
        prepare: false,
    });
    let reply = bus.send("hotel", &env).unwrap();
    let resp = reply.response_for("want-view").unwrap();
    assert!(matches!(resp.result, PromiseResult::Accepted));
    assert_eq!(pm.live_count(), 1);

    // A second identical request also fits (two such rooms exist)...
    let env2 = Envelope::new().with_promise_request(PromiseRequestHeader {
        request_id: "want-view-2".into(),
        client: "bob".into(),
        predicates: vec!["prop('rooms'): view == true && floor >= 5".into()],
        duration_ms: 60_000,
        exchange: vec![],
        negotiate: false,
        prepare: false,
    });
    let reply = bus.send("hotel", &env2).unwrap();
    assert!(matches!(
        reply.response_for("want-view-2").unwrap().result,
        PromiseResult::Accepted
    ));
    // ...but a third does not.
    let env3 = Envelope::new().with_promise_request(PromiseRequestHeader {
        request_id: "want-view-3".into(),
        client: "carol".into(),
        predicates: vec!["prop('rooms'): view == true".into()],
        duration_ms: 60_000,
        exchange: vec![],
        negotiate: false,
        prepare: false,
    });
    let reply = bus.send("hotel", &env3).unwrap();
    assert!(matches!(
        reply.response_for("want-view-3").unwrap().result,
        PromiseResult::Rejected(_)
    ));
}

#[test]
fn promise_exchange_over_the_wire() {
    // §6: "an optional set of promise identifiers that refer to existing
    // promises that can be released if this new promise request is
    // successfully granted."
    let pm = new_pm();
    pm.register_pool(PoolSchema::quantity("balance"));
    pm.seed_quantity("balance", 200).unwrap();
    let gateway = Arc::new(PromiseGateway::new(Arc::clone(&pm)));
    let bus = InMemoryBus::new();
    bus.register("bank", gateway);

    let grant = |req: &str, amount: u64, exchange: Vec<u64>| {
        let env = Envelope::new().with_promise_request(PromiseRequestHeader {
            request_id: req.into(),
            client: "shop".into(),
            predicates: vec![format!("qty('balance') >= {amount}")],
            duration_ms: 60_000,
            exchange,
            negotiate: false,
            prepare: false,
        });
        let reply = bus.send("bank", &env).unwrap();
        reply.response_for(req).unwrap().clone()
    };

    let first = grant("hold-100", 100, vec![]);
    let id100 = first.promise_id.expect("granted");
    // Upgrade to 200 atomically: only possible because the exchange
    // releases the 100 hold in the same atomic step.
    let upgraded = grant("hold-200", 200, vec![id100]);
    assert!(matches!(upgraded.result, PromiseResult::Accepted));
    assert_eq!(pm.live_count(), 1);
    // Exchanging an id that no longer exists is rejected.
    let stale = grant("hold-50", 50, vec![id100]);
    assert!(matches!(stale.result, PromiseResult::Rejected(_)));
}

#[test]
fn airline_full_lifecycle_with_upgrades() {
    let pm = new_pm();
    let airline = Airline::new(Arc::clone(&pm));
    airline
        .add_flight(
            "QF1",
            &[
                ("24A", "economy", true),
                ("24B", "economy", false),
                ("12A", "business", true),
                ("1A", "first", true),
            ],
        )
        .unwrap();

    // Named + class promises interleaved.
    let named = airline
        .promise_seat("a", "QF1", "24A", 60_000)
        .unwrap()
        .unwrap();
    let economy = airline
        .promise_class("b", "QF1", "economy", 2, 60_000)
        .unwrap()
        .unwrap();
    // 24B + one upgrade cover the class promise; nothing remains.
    assert!(airline
        .promise_class("c", "QF1", "economy", 2, 60_000)
        .unwrap()
        .is_err());

    let seats = airline.ticket("QF1", economy).unwrap();
    assert_eq!(seats.len(), 2);
    let named_seats = airline.ticket("QF1", named).unwrap();
    assert_eq!(named_seats, vec!["24A".to_owned()]);
    assert_eq!(pm.live_count(), 0);
}

#[test]
fn shipping_delegation_end_to_end() {
    let carrier = standalone_carrier(2);
    let shipping = Shipping::new(new_pm(), 10)
        .unwrap()
        .with_carrier(Arc::clone(&carrier));

    let p1 = shipping
        .promise_next_day("order-1", 60_000)
        .unwrap()
        .unwrap();
    let p2 = shipping
        .promise_next_day("order-2", 60_000)
        .unwrap()
        .unwrap();
    assert_eq!(carrier.live_count(), 2);
    assert!(shipping
        .promise_next_day("order-3", 60_000)
        .unwrap()
        .is_err());

    shipping.ship(p1).unwrap();
    assert_eq!(carrier.live_count(), 1);
    shipping.manager().release(p2).unwrap();
    assert_eq!(carrier.live_count(), 0, "cascaded release");
}

#[test]
fn expiry_cascades_to_upstream_promises() {
    // The front manager runs on a manual clock; when its promise expires,
    // the delegated upstream promise must be released too.
    let carrier = standalone_carrier(1);
    let clock = Arc::new(ManualClock::new());
    let front = Arc::new(PromiseManager::new(
        Arc::new(ResourceManager::new()),
        Arc::clone(&clock) as Arc<dyn promises::core::Clock>,
    ));
    front.delegate_pool("carrier-capacity", Arc::clone(&carrier));

    let resp = front
        .request(
            PromiseRequestSpec::new("d", "client")
                .predicate(Predicate::qty_at_least("carrier-capacity", 1))
                .duration_ms(1_000),
        )
        .unwrap();
    assert!(resp.decision.is_granted());
    assert_eq!(carrier.live_count(), 1);

    clock.advance(5_000);
    front.prune_expired().unwrap();
    assert_eq!(front.live_count(), 0);
    assert_eq!(carrier.live_count(), 0, "upstream released on expiry");
}

#[test]
fn concurrent_mixed_services_keep_invariants() {
    // Hammer one manager from many threads across two services and verify
    // conservation invariants at the end.
    let pm = new_pm();
    let merchant = Arc::new(Merchant::new(Arc::clone(&pm)));
    merchant.stock_sku("gadgets", 400).unwrap();
    let bank = Arc::new(Bank::new(Arc::clone(&pm)));
    bank.open_account("shared", 400).unwrap();

    let threads = 8;
    let per = 20;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let merchant = Arc::clone(&merchant);
            let bank = Arc::clone(&bank);
            scope.spawn(move || {
                for i in 0..per {
                    if (t + i) % 2 == 0 {
                        if let Ok(p) = merchant.reserve_stock("c", "gadgets", 2, 60_000).unwrap() {
                            if i % 3 == 0 {
                                merchant.abandon(p).unwrap();
                            } else {
                                merchant.purchase(p, "c", "gadgets", 2).unwrap();
                            }
                        }
                    } else if let Ok(p) = bank.promise_funds("c", "shared", 3, 60_000).unwrap() {
                        if i % 3 == 0 {
                            bank.release(p).unwrap();
                        } else {
                            bank.withdraw(p, "shared", 3).unwrap();
                        }
                    }
                }
            });
        }
    });

    // Conservation: stock spent == 2 * completed orders.
    let orders = merchant.order_count().unwrap() as u64;
    assert_eq!(merchant.on_hand("gadgets").unwrap(), 400 - 2 * orders);
    assert_eq!(pm.live_count(), 0, "all promises settled");
    let m = pm.metrics();
    assert_eq!(m.violations_rolled_back, 0, "no protected action violated");
    assert!(bank.balance("shared").unwrap() <= 400);
}

#[test]
fn negotiated_promise_over_mixed_essential_desirable() {
    let pm = new_pm();
    let hotel = Hotel::new(Arc::clone(&pm));
    hotel
        .add_room(RoomSpec::new("101", 1, false, true, 2, "standard"))
        .unwrap();

    let mut spec = PromiseRequestSpec::new("fussy", "alice");
    spec.predicates = vec![Predicate::property(
        "rooms",
        PropExpr::all([
            PropExpr::eq("beds", 2i64),
            PropExpr::eq("smoking", false).desirable(),
            PropExpr::eq("view", true).desirable(),
        ]),
        1,
    )];
    let out = pm.request_negotiated(spec).unwrap();
    assert!(out.response.decision.is_granted());
    assert_eq!(out.total_dropped(), 2, "only the smoking room exists");
    assert_eq!(
        hotel
            .book(out.response.decision.granted_id().unwrap())
            .unwrap(),
        "101"
    );
}
