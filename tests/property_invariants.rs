//! Property-based tests of the system's core invariants.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use promises::core::{
    parse_predicate, ActionError, Catalog, Clock, CmpOp, Environment, ManualClock, PoolSchema,
    Predicate, PromiseId, PromiseManager, PromiseRequestSpec, PropExpr,
};
use promises::matching::{hopcroft_karp, BipartiteGraph, DynamicMatching};
use promises::rm::{Record, ResourceManager, Value};

// ---------------------------------------------------------------------
// Matching: incremental == batch
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental augmenting-path structure accepts a left vertex
    /// exactly when the batch maximum matching over the same graph is
    /// left-perfect.
    #[test]
    fn incremental_matching_equals_batch(
        n_left in 1usize..12,
        n_right in 1usize..12,
        edge_bits in proptest::collection::vec(any::<bool>(), 144),
    ) {
        let mut graph = BipartiteGraph::new(n_left, n_right);
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n_left];
        for l in 0..n_left {
            for r in 0..n_right {
                if edge_bits[l * 12 + r] {
                    graph.add_edge(l, r);
                    adj[l].push(r);
                }
            }
        }

        let mut dynamic: DynamicMatching<usize, usize> = DynamicMatching::new();
        for r in 0..n_right {
            dynamic.add_right(r);
        }
        let mut accepted = 0usize;
        let mut all_accepted = true;
        for (l, neighbours) in adj.iter().enumerate() {
            if dynamic.try_add_left(l, neighbours.clone()) {
                accepted += 1;
            } else {
                all_accepted = false;
            }
            prop_assert!(dynamic.check_invariants());
        }

        let batch = hopcroft_karp(&graph);
        // Greedy-with-augmentation achieves the maximum matching size.
        prop_assert_eq!(accepted, batch.size);
        prop_assert_eq!(all_accepted, batch.is_left_perfect());
    }
}

// ---------------------------------------------------------------------
// Predicate language: display/parse round trip
// ---------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        "[a-z][a-z0-9 ]{0,8}".prop_map(Value::Str),
    ]
}

fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_expr() -> impl Strategy<Value = PropExpr> {
    let leaf = prop_oneof![
        Just(PropExpr::True),
        ("[a-z][a-z0-9_]{0,6}", arb_cmp_op(), arb_value())
            .prop_map(|(prop, op, value)| PropExpr::Cmp { prop, op, value }),
        ("[a-z][a-z0-9_]{0,6}", "[a-z]{1,6}").prop_map(|(prop, v)| PropExpr::AtLeastRank {
            prop,
            value: Value::Str(v),
        }),
    ];
    // And/Or with 2+ children only: a 1-element conjunction displays as a
    // parenthesised inner expression, which parses back to the inner node
    // (semantically identical, structurally different).
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(PropExpr::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(PropExpr::Or),
            inner.clone().prop_map(|e| PropExpr::Not(Box::new(e))),
            inner.prop_map(|e| PropExpr::Desirable(Box::new(e))),
        ]
    })
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        ("[a-z][a-z0-9 -]{0,10}", 0u64..10_000)
            .prop_map(|(pool, amount)| Predicate::qty_at_least(pool.as_str(), amount)),
        ("[a-z][a-z0-9 -]{0,10}", "[a-z0-9-]{1,10}")
            .prop_map(|(pool, inst)| Predicate::named(pool.as_str(), inst.as_str())),
        ("[a-z][a-z0-9 -]{0,10}", arb_expr(), 1u32..5)
            .prop_map(|(pool, expr, count)| Predicate::property(pool.as_str(), expr, count)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `parse(display(p)) == p` for every generated predicate.
    #[test]
    fn predicate_display_parse_roundtrip(pred in arb_predicate()) {
        let text = pred.to_string();
        let parsed = parse_predicate(&text)
            .map_err(|e| TestCaseError::fail(format!("{text:?}: {e}")))?;
        prop_assert_eq!(parsed, pred, "text was {}", text);
    }

    /// Weakening only ever removes desirable obligations: any record that
    /// satisfies the original (desirables-included) expression satisfies
    /// every weakened form, provided desirables appear in positive
    /// positions (conjunctions).
    #[test]
    fn weakening_is_monotone_for_positive_desirables(
        floors in proptest::collection::vec(0i64..6, 1..6),
        drop in 0usize..5,
    ) {
        // Build And(floor == f0, desirable(floor >= f1), ...).
        let mut clauses = vec![PropExpr::eq("floor", floors[0])];
        for f in &floors[1..] {
            clauses.push(PropExpr::cmp("floor", CmpOp::Ge, *f).desirable());
        }
        let expr = PropExpr::all(clauses);
        let schema = PoolSchema::instances("p", vec![]);
        for floor in 0..6i64 {
            let rec = Record::new().with("floor", floor);
            if expr.eval(&rec, &schema) {
                prop_assert!(
                    expr.weakened(drop).eval(&rec, &schema),
                    "weakened form rejected a record the original accepted"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// RM: transactional semantics vs a sequential model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum RmOp {
    Put(u8, i64),
    Delete(u8),
    Get(u8),
}

fn arb_rm_ops() -> impl Strategy<Value = Vec<(bool, Vec<RmOp>)>> {
    let op = prop_oneof![
        (any::<u8>(), any::<i64>()).prop_map(|(k, v)| RmOp::Put(k % 16, v)),
        any::<u8>().prop_map(|k| RmOp::Delete(k % 16)),
        any::<u8>().prop_map(|k| RmOp::Get(k % 16)),
    ];
    proptest::collection::vec((any::<bool>(), proptest::collection::vec(op, 1..8)), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A sequence of transactions — some committed, some aborted — leaves
    /// the store exactly as a sequential model that only applies the
    /// committed ones.
    #[test]
    fn rm_matches_sequential_model(txns in arb_rm_ops()) {
        let rm = ResourceManager::new();
        rm.create_table("t");
        let mut model: BTreeMap<String, i64> = BTreeMap::new();

        for (commit, ops) in txns {
            let txn = rm.begin();
            let mut local = model.clone();
            for op in ops {
                match op {
                    RmOp::Put(k, v) => {
                        let key = format!("k{k}");
                        rm.put(&txn, "t", &key, Record::new().with("v", v)).unwrap();
                        local.insert(key, v);
                    }
                    RmOp::Delete(k) => {
                        let key = format!("k{k}");
                        let res = rm.delete(&txn, "t", &key);
                        prop_assert_eq!(res.is_ok(), local.remove(&key).is_some());
                    }
                    RmOp::Get(k) => {
                        let key = format!("k{k}");
                        let got = rm.get(&txn, "t", &key).unwrap().and_then(|r| r.int("v"));
                        prop_assert_eq!(got, local.get(&key).copied());
                    }
                }
            }
            if commit {
                rm.commit(txn).unwrap();
                model = local;
            } else {
                rm.abort(txn).unwrap();
            }
        }

        let txn = rm.begin();
        let rows = rm.scan(&txn, "t").unwrap();
        rm.commit(txn).unwrap();
        let actual: BTreeMap<String, i64> = rows
            .into_iter()
            .map(|(k, r)| (k, r.int("v").unwrap()))
            .collect();
        prop_assert_eq!(actual, model);
    }
}

// ---------------------------------------------------------------------
// Promise manager: the anonymous-view safety invariant
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PmOp {
    Request(u8),
    Release(usize),
    Consume(usize),
    Advance(u16),
}

fn arb_pm_ops() -> impl Strategy<Value = Vec<PmOp>> {
    let op = prop_oneof![
        (1u8..6).prop_map(PmOp::Request),
        any::<usize>().prop_map(PmOp::Release),
        any::<usize>().prop_map(PmOp::Consume),
        (1u16..2_000).prop_map(PmOp::Advance),
    ];
    proptest::collection::vec(op, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any sequence of grants, releases, consumptions and clock
    /// advances: (a) quantity on hand never goes negative, (b) the sum of
    /// live promised quantities never exceeds quantity on hand, and (c)
    /// protected consumption never fails for lack of stock.
    #[test]
    fn anonymous_promises_never_oversubscribe(ops in arb_pm_ops()) {
        const INITIAL: u64 = 20;
        let clock = Arc::new(ManualClock::new());
        let pm = PromiseManager::new(
            Arc::new(ResourceManager::new()),
            Arc::clone(&clock) as Arc<dyn promises::core::Clock>,
        );
        pm.register_pool(PoolSchema::quantity("w"));
        pm.seed_quantity("w", INITIAL).unwrap();

        let mut live: Vec<(PromiseId, u64)> = Vec::new();
        let mut n = 0u64;
        for op in ops {
            match op {
                PmOp::Request(amount) => {
                    n += 1;
                    let resp = pm.request(
                        PromiseRequestSpec::new(
                            promises::core::RequestId(format!("r{n}")),
                            promises::core::ClientId("prop".into()),
                        )
                        .predicate(Predicate::qty_at_least("w", amount as u64))
                        .duration_ms(1_000),
                    ).unwrap();
                    if let Some(id) = resp.decision.granted_id() {
                        live.push((id, amount as u64));
                    }
                }
                PmOp::Release(i) if !live.is_empty() => {
                    let (id, _) = live.remove(i % live.len());
                    // May already be expired+pruned: both outcomes legal.
                    let _ = pm.release(id);
                }
                PmOp::Consume(i) if !live.is_empty() => {
                    let (id, amount) = live.remove(i % live.len());
                    let result = pm.execute(
                        &Environment::none().releasing(id),
                        |rm, txn| {
                            let mut enough = false;
                            rm.update(txn, Catalog::QTY_TABLE, "w", |r| {
                                let q = r.int("qty").unwrap_or(0);
                                if q >= amount as i64 {
                                    enough = true;
                                    r.set("qty", q - amount as i64);
                                }
                            }).map_err(ActionError::from)?;
                            if enough { Ok(()) } else { Err("stock vanished".into()) }
                        },
                    );
                    match result {
                        Ok(()) => {}
                        Err(promises::core::PromiseError::PromiseExpired(_)) => {}
                        Err(promises::core::PromiseError::UnknownPromise(_)) => {}
                        // (c): a live promise must never see missing stock.
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                PmOp::Advance(ms) => {
                    clock.advance(ms as u64);
                    // Drop handles we know are expired so later ops use
                    // mostly-live promises.
                    let now = clock.now_ms();
                    live.retain(|(id, _)| {
                        pm.promise(*id).map(|r| r.is_live(now)).unwrap_or(false)
                    });
                }
                _ => {}
            }

            // Invariants after every step.
            let rm = pm.rm();
            let txn = rm.begin();
            let on_hand = rm
                .get(&txn, Catalog::QTY_TABLE, "w").unwrap()
                .and_then(|r| r.int("qty"))
                .unwrap_or(0);
            rm.commit(txn).unwrap();
            prop_assert!(on_hand >= 0, "stock went negative");
            let now = clock.now_ms();
            let demand: u64 = live
                .iter()
                .filter_map(|(id, amt)| {
                    pm.promise(*id).filter(|r| r.is_live(now)).map(|_| *amt)
                })
                .sum();
            prop_assert!(
                demand as i64 <= on_hand,
                "live demand {demand} exceeds on-hand {on_hand}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Promise manager: overlapping multi-pool footprints
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum MpOp {
    /// Request `(amount on "w", amount on "x")`; 0 skips that pool, so
    /// promises cover w-only, x-only, or overlap both.
    Request(u8, u8),
    Release(usize),
    Consume(usize),
    Advance(u16),
}

fn arb_mp_ops() -> impl Strategy<Value = Vec<MpOp>> {
    let op = prop_oneof![
        (0u8..5, 0u8..5).prop_map(|(w, x)| MpOp::Request(w, x)),
        any::<usize>().prop_map(MpOp::Release),
        any::<usize>().prop_map(MpOp::Consume),
        (1u16..2_000).prop_map(MpOp::Advance),
    ];
    proptest::collection::vec(op, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The single-pool invariants hold per pool when promises overlap two
    /// pools under footprint-scoped locking, and — in debug builds — the
    /// table's cached quantity aggregate and the checker's demand hints
    /// are re-derived and asserted against full recomputation inside
    /// every operation, so any drift fails this property immediately.
    #[test]
    fn overlapping_multi_pool_promises_never_oversubscribe(ops in arb_mp_ops()) {
        const INITIAL: u64 = 20;
        let clock = Arc::new(ManualClock::new());
        let pm = PromiseManager::new(
            Arc::new(ResourceManager::new()),
            Arc::clone(&clock) as Arc<dyn promises::core::Clock>,
        );
        for pool in ["w", "x"] {
            pm.register_pool(PoolSchema::quantity(pool));
            pm.seed_quantity(pool, INITIAL).unwrap();
        }

        let mut live: Vec<(PromiseId, u64, u64)> = Vec::new();
        let mut n = 0u64;
        for op in ops {
            match op {
                MpOp::Request(w, x) if w + x > 0 => {
                    n += 1;
                    let mut spec = PromiseRequestSpec::new(
                        promises::core::RequestId(format!("m{n}")),
                        promises::core::ClientId("prop".into()),
                    )
                    .duration_ms(1_000);
                    if w > 0 {
                        spec = spec.predicate(Predicate::qty_at_least("w", w as u64));
                    }
                    if x > 0 {
                        spec = spec.predicate(Predicate::qty_at_least("x", x as u64));
                    }
                    let resp = pm.request(spec).unwrap();
                    if let Some(id) = resp.decision.granted_id() {
                        live.push((id, w as u64, x as u64));
                    }
                }
                MpOp::Release(i) if !live.is_empty() => {
                    let (id, _, _) = live.remove(i % live.len());
                    let _ = pm.release(id);
                }
                MpOp::Consume(i) if !live.is_empty() => {
                    let (id, w, x) = live.remove(i % live.len());
                    let result = pm.execute(
                        &Environment::none().releasing(id),
                        move |rm, txn| {
                            for (pool, amt) in [("w", w), ("x", x)] {
                                if amt == 0 {
                                    continue;
                                }
                                let mut enough = false;
                                rm.update(txn, Catalog::QTY_TABLE, pool, |r| {
                                    let q = r.int("qty").unwrap_or(0);
                                    if q >= amt as i64 {
                                        enough = true;
                                        r.set("qty", q - amt as i64);
                                    }
                                }).map_err(ActionError::from)?;
                                if !enough {
                                    return Err("stock vanished".into());
                                }
                            }
                            Ok(())
                        },
                    );
                    match result {
                        Ok(()) => {}
                        Err(promises::core::PromiseError::PromiseExpired(_)) => {}
                        Err(promises::core::PromiseError::UnknownPromise(_)) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                MpOp::Advance(ms) => {
                    clock.advance(ms as u64);
                    let now = clock.now_ms();
                    live.retain(|(id, _, _)| {
                        pm.promise(*id).map(|r| r.is_live(now)).unwrap_or(false)
                    });
                }
                _ => {}
            }

            // Per-pool invariants after every step.
            let now = clock.now_ms();
            for (pool, pick) in [
                ("w", (|t: &(PromiseId, u64, u64)| (t.0, t.1)) as fn(&(PromiseId, u64, u64)) -> (PromiseId, u64)),
                ("x", |t| (t.0, t.2)),
            ] {
                let rm = pm.rm();
                let txn = rm.begin();
                let on_hand = rm
                    .get(&txn, Catalog::QTY_TABLE, pool).unwrap()
                    .and_then(|r| r.int("qty"))
                    .unwrap_or(0);
                rm.commit(txn).unwrap();
                prop_assert!(on_hand >= 0, "{pool} stock went negative");
                let demand: u64 = live
                    .iter()
                    .map(pick)
                    .filter_map(|(id, amt)| {
                        pm.promise(id).filter(|r| r.is_live(now)).map(|_| amt)
                    })
                    .sum();
                prop_assert!(
                    demand as i64 <= on_hand,
                    "{pool}: live demand {demand} exceeds on-hand {on_hand}"
                );
            }
        }
    }
}
