#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test -q --workspace

# Fault suite under three fixed seeds: sweep + crash-restart audits
# (violations, double grants, leaks must all be zero; see DESIGN.md §11).
echo "==> fault smoke (seeds 3 1117 90210)"
cargo run --release -q -p promises-bench --bin experiments -- --faults 3 1117 90210

# Telemetry unit tests plus the E12 observability smoke: an instrumented
# fault sweep that fails if any required stage histogram (bus.deliver,
# pm.grant, pm.check, rm.txn) is empty or the trace-replay lifecycle
# audit finds an ordering violation (see DESIGN.md §12).
echo "==> telemetry tests"
cargo test -q -p promises-telemetry
echo "==> observability smoke (seeds 2007 4711)"
cargo run --release -q -p promises-bench --bin experiments -- --obs 2007 4711

# Cluster suite + E13 fault/crash sweep under three fixed seeds: the
# scaling gate (>=2.5x at 4 shards vs 1) and the cross-shard guarantee
# audits (partial grants, double grants, oversells, leaks must all be
# zero; see DESIGN.md §13).
echo "==> cluster tests"
cargo test -q -p promises-cluster
echo "==> cluster smoke (seeds 2007 31337 90210)"
cargo run --release -q -p promises-bench --bin experiments -- --cluster 2007 31337 90210

# Threaded-runtime suite: the race-pin tests (restart-under-load,
# kill-between-flush-and-ship, bounded semi-sync), the group-commit
# interleaving model, the sim-level stress matrix, then the E19 gate
# under three fixed seeds: wall-clock scaling on real shard threads
# (>=4x at 8 shards vs 1, near-linear trend reported), group-commit
# amortization, and per-seed threaded stress sweeps at 0/10/20% fault
# rates with the lifecycle auditor at zero violations (see DESIGN.md
# §19). Merges the wall-clock `threads` section into BENCH_cluster.json
# next to the modeled-time E13 results and fails on any gate miss.
echo "==> threaded-runtime tests"
cargo test -q -p promises-cluster --test executor --test group_commit_model
cargo test -q -p promises-sim --test thread_stress
echo "==> threads smoke (seeds 2007 31337 90210)"
cargo run --release -q -p promises-bench --bin experiments -- --threads 2007 31337 90210

# Recovery suite: the E14 checkpoint/compaction benchmark (compacted
# recovery must be >=5x faster than full-history replay, with
# byte-identical state digests) and the crash/compact sweep under three
# fixed seeds (compaction killed before/after the journal swap must
# still recover the uncompacted reference digest; see DESIGN.md §14).
# Writes BENCH_recovery.json and fails on any digest mismatch or
# recovery-time regression.
echo "==> recovery smoke (seeds 2007 31337 90210)"
cargo run --release -q -p promises-bench --bin experiments -- --recovery 2007 31337 90210

# Lease suite: the E15 Zipf-skew benchmark (>=90% of hot-pool grants
# must be served coordinator-free from per-shard leases, with >=1.2x
# throughput uplift over ownership routing at 8 shards) plus the lease
# sweep under three fixed seeds (zero oversells, zero lease-sum
# violations, zero leaks, crash mid-rebalance must heal with matching
# state digests, and >=50% of grants must stay local; see DESIGN.md
# §15). Writes BENCH_leases.json and fails on any gate miss.
echo "==> lease smoke (seeds 2007 31337 90210)"
cargo run --release -q -p promises-bench --bin experiments -- --leases 2007 31337 90210

# Fail-over suite: the E16 replication sweep under three fixed seeds ×
# replication-fault rates 0/10/20%. Every shard leader is killed once
# mid-2PC and once mid-lease-rebalance and its warm follower promoted;
# the promoted replica must be byte-identical to the dead leader (and to
# a clean replay of its journal), with zero partial grants, double
# grants, oversells, lease violations, and leaks, lease sums healed back
# to the registered totals, and promotion MTTR bounded (see DESIGN.md
# §16). Writes BENCH_replication.json and fails on any gate miss.
echo "==> failover smoke (seeds 2007 31337 90210)"
cargo run --release -q -p promises-bench --bin experiments -- --failover 2007 31337 90210

# Doctor suite: the E17 health-plane confusion matrix under three fixed
# seeds × fault rates 0/10/20%. Each doctor sweep injects one known
# fault class with the anomaly watchdogs armed: delay faults must trip
# the SLO burn-rate monitor, a stranded mid-rebalance crash the
# lease-sum probe, a wedged follower and aging in-doubt holds their
# watchdogs — and every rate-0 run must be silent (zero false
# positives). Every trip must cut a JSON-parseable flight-recorder
# incident report (see DESIGN.md §17). Writes BENCH_doctor.json and
# fails on any missed detection, false positive, or invalid incident.
echo "==> doctor smoke (seeds 2007 31337 90210)"
cargo run --release -q -p promises-bench --bin experiments -- --doctor 2007 31337 90210

# Workload suite: the E18 production workload plane under three fixed
# seeds. The flash-sale scenario must meet its p99 SLO at the gated
# offered rate with degraded mode both engaging under overload and
# clearing after it; the travel-booking scenario must complete >=95% of
# three-leg bookings at 0/10/20% wire-fault rates with zero partial
# grants, double grants, oversells, and leaks; and the 6-failure-class x
# 2-scenario error-path matrix must have zero failing cells (see
# DESIGN.md §18). Writes BENCH_workloads.json and fails on any gate miss.
echo "==> workloads smoke (seeds 2007 31337 90210)"
cargo run --release -q -p promises-bench --bin experiments -- --workloads 2007 31337 90210

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "All checks passed."
