#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test -q --workspace

# Fault suite under three fixed seeds: sweep + crash-restart audits
# (violations, double grants, leaks must all be zero; see DESIGN.md §11).
echo "==> fault smoke (seeds 3 1117 90210)"
cargo run --release -q -p promises-bench --bin experiments -- --faults 3 1117 90210

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "All checks passed."
