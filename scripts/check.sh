#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "All checks passed."
