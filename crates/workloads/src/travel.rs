//! The travel-booking scenario: §4's flight + hotel + car bookings run as
//! a production workload across a three-shard cluster, under wire faults.
//!
//! Each booking is one atomic multi-predicate promise whose resources
//! deliberately live on *different* shards — flight seats on one, rental
//! cars on another, the room instance pool on a third — so every booking
//! exercises the coordinator's cross-shard two-phase grant. The room leg
//! carries an essential-vs-desirable predicate (`beds == 2`, desirably
//! with a view); when view rooms run out the coordinator walks the §3.3
//! weakening ladder ([`Coordinator::grant_negotiated`]) and the customer
//! gets a cleanly negotiated-down booking instead of a refusal.
//!
//! Two routes share the cluster:
//!
//! * **route A (direct)** — bookings go through the coordinator over the
//!   wire, where the fault injector drops, duplicates and delays
//!   messages; callers retry transport failures with the *same* request
//!   id, leaning on end-to-end deduplication;
//! * **route B (delegated)** — bookings go through a [`BookingDesk`]: an
//!   edge promise manager with only a local voucher pool, §5-delegating
//!   the flight and car pools to the shard managers that own them, so the
//!   delegation chain (acquire upstream, compensate on failure, cascade
//!   on release) runs under the same cluster load.
//!
//! After the run the scenario audits the invariants the paper stakes out:
//! no partial grants (every granted part is a live committed hold, no
//! rejected booking left one), no double grants (journal scan), no
//! oversells (promised ≤ on-hand per shard), no leaks (expiry reclaims
//! everything), and bounded state (dedup + tombstones drain).

use std::collections::BTreeMap;
use std::sync::Arc;

use promises_cluster::{ClusterDecision, CoordError, GrantPart, PromiseCluster};
use promises_core::{ClientId, JournalOp, PoolSchema, PromiseManager, PropertyDef, RequestId};
use promises_faults::{FaultInjector, FaultScenario};
use promises_rm::{Record, ResourceManager};
use promises_services::BookingDesk;
use rand::{rngs::StdRng, RngCore, SeedableRng};

use crate::{run_open_loop, OpStatus, OpenLoopConfig, OpenLoopReport};

const FLIGHT_POOL: &str = "flight-seats";
const CAR_POOL: &str = "rental-cars";
const ROOM_POOL: &str = "travel-rooms";

/// Shape of one travel-booking run (one fault rate).
#[derive(Debug, Clone)]
pub struct TravelConfig {
    /// Master seed.
    pub seed: u64,
    /// Uniform wire-fault rate (drop/duplicate/delay), 0.0..1.0.
    pub fault_rate: f64,
    /// Bookings to offer.
    pub ops: usize,
    /// Fraction routed through the delegated booking desk (route B).
    pub desk_fraction: f64,
    /// Probability a granted direct booking is *kept* (held to expiry)
    /// rather than travelled-and-released; kept bookings consume view
    /// rooms and force later bookings down the negotiation ladder.
    pub keep_probability: f64,
    /// Rooms seeded (all twin-bed; a small minority with a view).
    pub rooms: usize,
    /// How many of the rooms have a view.
    pub view_rooms: usize,
    /// Workload-level retries for coordinator transport failures (same
    /// request id each time).
    pub transport_retries: usize,
    /// Offered arrival rate for the generator, ops/s of virtual time.
    pub offered_rate: f64,
    /// Bounded in-flight concurrency for the generator.
    pub max_in_flight: usize,
}

impl Default for TravelConfig {
    fn default() -> Self {
        Self {
            seed: 2007,
            fault_rate: 0.0,
            ops: 240,
            desk_fraction: 0.3,
            keep_probability: 0.08,
            rooms: 48,
            view_rooms: 3,
            transport_retries: 3,
            offered_rate: 1_500.0,
            max_in_flight: 8,
        }
    }
}

/// Outcome of one travel-booking run.
#[derive(Debug, Clone)]
pub struct TravelReport {
    /// The open-loop report (completed = granted or negotiated-down).
    pub open_loop: OpenLoopReport,
    /// Bookings granted exactly as asked (view room and all).
    pub granted_full: u64,
    /// Bookings granted after dropping the desirable view clause.
    pub negotiated_down: u64,
    /// Route-B bookings completed through the delegation chain.
    pub desk_completed: u64,
    /// Bookings cleanly rejected (essential clauses could not hold).
    pub rejected: u64,
    /// Bookings lost to transport failures after retries.
    pub transport_failures: u64,
    /// Partial-grant audit violations (must be 0).
    pub partial_grants: u64,
    /// Double-grant audit violations (must be 0).
    pub double_grants: u64,
    /// Oversell audit violations (must be 0).
    pub oversells: u64,
    /// Live promises after the expiry reap (must be 0).
    pub live_after_reap: usize,
    /// Dedup entries + expiry tombstones after the grace reap (must be 0).
    pub state_after_reap: usize,
}

impl TravelReport {
    /// Completed bookings: granted as asked or cleanly negotiated down.
    pub fn completed(&self) -> u64 {
        self.granted_full + self.negotiated_down + self.desk_completed
    }

    /// Completed fraction of offered bookings.
    pub fn completion_ratio(&self) -> f64 {
        if self.open_loop.offered == 0 {
            return 0.0;
        }
        self.completed() as f64 / self.open_loop.offered as f64
    }

    /// Every isolation audit came back clean.
    pub fn audits_clean(&self) -> bool {
        self.partial_grants == 0
            && self.double_grants == 0
            && self.oversells == 0
            && self.live_after_reap == 0
            && self.state_after_reap == 0
    }
}

/// What one direct booking left behind, for the post-run audit.
enum BookingOutcome {
    Granted {
        rung_rid: String,
        parts: Vec<GrantPart>,
        released: bool,
    },
    Rejected {
        /// Every rung id the ladder tried (all must be hold-free).
        rungs: Vec<String>,
    },
}

/// Runs one travel-booking workload at the configured fault rate and
/// audits the cluster afterwards.
pub fn run_travel_booking(cfg: &TravelConfig) -> TravelReport {
    let cluster = PromiseCluster::build(3, cfg.seed);

    // Flight seats and rental cars are quantity pools on shards 0 and 1;
    // the room instance pool is hosted manually on the next round-robin
    // shard (2), giving every booking three cross-shard legs.
    let flight_shard = cluster.register_quantity_pool(FLIGHT_POOL, 100_000);
    let car_shard = cluster.register_quantity_pool(CAR_POOL, 100_000);
    let room_shard = cluster.map.assign_round_robin(ROOM_POOL);
    let room_pm = &cluster.nodes[room_shard].pm;
    room_pm.register_pool(PoolSchema::instances(
        ROOM_POOL,
        vec![PropertyDef::plain("beds"), PropertyDef::plain("view")],
    ));
    for i in 0..cfg.rooms {
        room_pm
            .seed_instance(
                ROOM_POOL,
                format!("room-{i}").as_str(),
                Record::new()
                    .with("beds", 2i64)
                    .with("view", i < cfg.view_rooms),
            )
            .expect("seed room");
    }

    // Route B: an edge desk whose flight and car legs are §5 delegations
    // straight at the owning shard managers.
    let desk_pm = Arc::new(PromiseManager::new(
        Arc::new(ResourceManager::new()),
        Arc::clone(&cluster.clock) as Arc<dyn promises_core::Clock>,
    ));
    let desk = BookingDesk::new(desk_pm, 1_000_000).expect("desk");
    desk.delegate(FLIGHT_POOL, Arc::clone(&cluster.nodes[flight_shard].pm));
    desk.delegate(CAR_POOL, Arc::clone(&cluster.nodes[car_shard].pm));

    if cfg.fault_rate > 0.0 {
        cluster
            .bus
            .set_fault_injector(Some(Arc::new(FaultInjector::new(FaultScenario::uniform(
                cfg.seed,
                cfg.fault_rate,
            )))));
    }

    let predicates = [
        format!("qty('{FLIGHT_POOL}') >= 1"),
        format!("qty('{CAR_POOL}') >= 1"),
        format!("prop('{ROOM_POOL}'): beds == 2 && desirable(view == true)"),
    ];
    let legs = vec![(FLIGHT_POOL.to_owned(), 1), (CAR_POOL.to_owned(), 1)];

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7AB1);
    let mut outcomes: Vec<(String, BookingOutcome)> = Vec::new();
    let mut granted_full = 0u64;
    let mut negotiated_down = 0u64;
    let mut desk_completed = 0u64;
    let mut rejected = 0u64;
    let mut transport_failures = 0u64;

    let gen_cfg = OpenLoopConfig {
        offered_rate: cfg.offered_rate,
        ops: cfg.ops,
        max_in_flight: cfg.max_in_flight,
        seed: cfg.seed,
    };
    let open_loop = run_open_loop(&gen_cfg, |i| {
        let unit = |rng: &mut StdRng| (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let client = format!("traveller-{}", i % 48);
        if unit(&mut rng) < cfg.desk_fraction {
            // Route B: delegated desk booking, travelled and released so
            // the desk's own books stay clean (its promises never expire
            // with the cluster clock advance).
            match desk.book(&client, &format!("trip-desk-{i}"), &legs, 600_000) {
                Ok(Ok(booking)) => {
                    desk.cancel(booking).expect("cancel desk booking");
                    desk_completed += 1;
                    OpStatus::Ok
                }
                Ok(Err(_)) => {
                    rejected += 1;
                    OpStatus::Rejected
                }
                Err(_) => OpStatus::Failed,
            }
        } else {
            // Route A: direct cross-shard booking over the faulty wire;
            // transport failures retry under the same request id.
            let rid = format!("trip-{i}");
            let mut attempts = 0;
            loop {
                match cluster
                    .coordinator
                    .grant_negotiated(&client, &rid, &predicates, 600_000)
                {
                    Ok(grant) => {
                        let rung_rid = if grant.dropped == 0 {
                            rid.clone()
                        } else {
                            format!("{rid}~d{}", grant.dropped)
                        };
                        match grant.decision {
                            ClusterDecision::Granted { parts } => {
                                let keep = unit(&mut rng) < cfg.keep_probability;
                                if !keep {
                                    cluster.coordinator.release(&parts);
                                }
                                if grant.dropped == 0 {
                                    granted_full += 1;
                                } else {
                                    negotiated_down += 1;
                                }
                                outcomes.push((
                                    client,
                                    BookingOutcome::Granted {
                                        rung_rid,
                                        parts,
                                        released: !keep,
                                    },
                                ));
                                break OpStatus::Ok;
                            }
                            ClusterDecision::Rejected { .. } => {
                                rejected += 1;
                                let rungs = (0..=1usize)
                                    .map(|d| {
                                        if d == 0 {
                                            rid.clone()
                                        } else {
                                            format!("{rid}~d{d}")
                                        }
                                    })
                                    .collect();
                                outcomes.push((client, BookingOutcome::Rejected { rungs }));
                                break OpStatus::Rejected;
                            }
                        }
                    }
                    Err(CoordError::Transport(_)) if attempts < cfg.transport_retries => {
                        attempts += 1;
                    }
                    Err(_) => {
                        transport_failures += 1;
                        break OpStatus::Failed;
                    }
                }
            }
        }
    });

    let (partial_grants, double_grants, oversells, live_after_reap, state_after_reap) =
        audit(&cluster, &outcomes);

    TravelReport {
        open_loop,
        granted_full,
        negotiated_down,
        desk_completed,
        rejected,
        transport_failures,
        partial_grants,
        double_grants,
        oversells,
        live_after_reap,
        state_after_reap,
    }
}

/// The live committed hold for one sub-request, if any.
fn committed_hold(cluster: &PromiseCluster, shard: usize, client: &str, rid: &str) -> Option<u64> {
    let pm = &cluster.nodes[shard].pm;
    let id = pm.promise_for_request(&ClientId(client.to_owned()), &RequestId(rid.to_owned()))?;
    (!pm.is_prepared(id)).then_some(id.0)
}

/// Post-run isolation audits, mirroring the sim crate's cluster sweep:
/// partial grants judged on observable holds, double grants from the
/// journals, oversells per shard, then the leak and bounded-state reaps.
fn audit(
    cluster: &PromiseCluster,
    outcomes: &[(String, BookingOutcome)],
) -> (u64, u64, u64, usize, usize) {
    let mut partial = 0u64;
    for (client, outcome) in outcomes {
        let bad = match outcome {
            BookingOutcome::Granted { released: true, .. } => false, // leak reap covers
            BookingOutcome::Granted {
                rung_rid,
                parts,
                released: false,
            } => !parts.iter().all(|part| {
                let key = if parts.len() > 1 {
                    format!("{rung_rid}@s{}", part.shard)
                } else {
                    rung_rid.clone()
                };
                committed_hold(cluster, part.shard, client, &key) == Some(part.promise_id)
            }),
            BookingOutcome::Rejected { rungs } => rungs.iter().any(|rung| {
                (0..cluster.shard_count()).any(|shard| {
                    committed_hold(cluster, shard, client, &format!("{rung}@s{shard}")).is_some()
                        || committed_hold(cluster, shard, client, rung).is_some()
                })
            }),
        };
        if bad {
            partial += 1;
        }
    }

    let mut double = 0u64;
    let mut oversells = 0u64;
    for node in &cluster.nodes {
        let mut grant_counts: BTreeMap<(String, String), u32> = BTreeMap::new();
        if let Ok(entries) = node.journal.entries() {
            for entry in entries {
                if let JournalOp::Grant(rec) | JournalOp::Prepared(rec) = entry.op {
                    *grant_counts
                        .entry((rec.client.0.clone(), rec.request.0.clone()))
                        .or_insert(0) += 1;
                }
            }
        }
        double += grant_counts.values().filter(|&&n| n > 1).count() as u64;
        for (pool, demanded) in node.pm.promised_quantities() {
            let on_hand = node.pm.quantity_on_hand(pool.clone()).unwrap_or(0);
            if demanded > on_hand {
                oversells += 1;
            }
        }
    }

    // Leak reap: past every booking duration, expiry must reclaim every
    // kept hold; then one grace tick drains dedup + tombstones.
    cluster.advance_and_prune(4_000_000);
    let live_after_reap = cluster.live_count();
    cluster.advance_and_prune(400_000);
    let state_after_reap = cluster.coordinator.dedup_len()
        + cluster
            .nodes
            .iter()
            .map(|n| n.pm.tombstone_count())
            .sum::<usize>();

    (
        partial,
        double,
        oversells,
        live_after_reap,
        state_after_reap,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_run_completes_and_negotiates_down() {
        let report = run_travel_booking(&TravelConfig::default());
        assert!(
            report.completion_ratio() >= 0.95,
            "completion {:.3} (full {} negotiated {} desk {} rejected {} transport {})",
            report.completion_ratio(),
            report.granted_full,
            report.negotiated_down,
            report.desk_completed,
            report.rejected,
            report.transport_failures,
        );
        assert!(
            report.negotiated_down > 0,
            "kept bookings must exhaust view rooms and force the ladder"
        );
        assert!(report.desk_completed > 0, "route B must carry traffic");
        assert!(report.audits_clean(), "{report:?}");
    }

    #[test]
    fn faulty_runs_stay_atomic() {
        for rate in [0.10, 0.20] {
            let report = run_travel_booking(&TravelConfig {
                fault_rate: rate,
                ..TravelConfig::default()
            });
            assert!(
                report.completion_ratio() >= 0.95,
                "rate {rate}: completion {:.3} ({report:?})",
                report.completion_ratio()
            );
            assert!(report.audits_clean(), "rate {rate}: {report:?}");
        }
    }
}
