//! `promises-workloads` — the production workload plane.
//!
//! The earlier experiment crates measure the promise machinery with
//! closed-loop micro-benchmarks; this crate asks the production question
//! instead: *does a sharded promise cluster hold its service-level
//! objectives under realistic, adversarial load?* It contributes four
//! pieces:
//!
//! * [`run_open_loop`] — a seeded **open-loop generator**: Poisson
//!   arrivals at a configured offered rate in virtual time, bounded
//!   in-flight concurrency, and latency anchored at intended arrival
//!   times so queueing delay is measured rather than omitted
//!   (no coordinated omission);
//! * two end-to-end scenarios over a full [`promises_cluster`] deployment:
//!   [`run_flash_sale`] (Zipf-skewed contention on a hot pool, driving the
//!   overload fail-fast cap and the SLO burn-rate degraded mode through a
//!   normal → overload → recovery arc) and [`run_travel_booking`]
//!   (atomic flight + hotel + car promises spanning three shards, with
//!   essential-vs-desirable negotiation and §5 delegation chains, swept
//!   across fault rates);
//! * [`SloGate`] — explicit pass/fail service-level objectives judged on
//!   per-stage p99 latency and goodput, so "fast enough" is a gate in CI
//!   rather than a number in a table;
//! * [`run_error_path_matrix`] — every failure class crossed with every
//!   scenario, each cell auditing the invariants (no partial grants, no
//!   double grants, no oversells, no leaks) and reporting an explicit
//!   pass/skip/fail status.

#![warn(missing_docs)]

mod flash_sale;
mod matrix;
mod openloop;
mod slo;
mod travel;

pub use flash_sale::{run_flash_sale, FlashSaleConfig, FlashSaleReport};
pub use matrix::{
    run_error_path_matrix, CellStatus, FailureClass, MatrixCell, MatrixReport, Scenario,
};
pub use openloop::{
    run_open_loop, run_open_loop_threaded, OpStatus, OpenLoopConfig, OpenLoopReport,
};
pub use slo::{SloGate, SloVerdict};
pub use travel::{run_travel_booking, TravelConfig, TravelReport};
