//! The flash-sale scenario: Zipf-skewed contention against a sharded
//! cluster, driven through a normal → overload → recovery arc.
//!
//! A flash sale is the workload the paper's §7 merchant dreads: almost
//! every request wants the same hot item, the front end offers load at a
//! rate the backing store did not choose, and the operator's question is
//! not "how fast is a grant" but "what breaks first, and does it come
//! back". The scenario drives the real production machinery end to end:
//!
//! * **admission fail-fast** — every shard runs with a live-promise cap
//!   ([`PromiseManager::set_overload_limit`]); shoppers keep most grants
//!   open for a while (only some release immediately), so the live count
//!   climbs under pressure and the cap starts refusing new grants with an
//!   explicit retryable rejection rather than queueing into collapse;
//! * **SLO burn-rate degraded mode** — during the overload phase each
//!   shard's service time is inflated past the `client.send` latency SLO;
//!   periodic [`PromiseCluster::health_tick`]s feed the burn-rate monitor,
//!   and when the `slo-burn-rate` watchdog trips the scenario flips every
//!   shard into degraded mode (grants refused, releases still honoured) —
//!   the real load-shedding response, doing real work against real
//!   traffic. In recovery the service time drops back, trip-free ticks
//!   drain the burn windows, and degraded mode is lifted;
//! * **honest accounting** — arrivals come from the open-loop generator,
//!   so queueing delay during the overload phase lands in the latency
//!   histogram instead of being omitted, and every rejection is
//!   classified by cause (overload shed vs. capacity vs. other).
//!
//! The SLO gate judges the *normal* phase — the overload phase exists to
//! prove the degraded mode engages, the recovery phase to prove it clears.

use std::collections::BTreeMap;

use promises_cluster::PromiseCluster;
use promises_sim::{sample_zipf, zipf_cdf};
use promises_telemetry::{HealthState, Watchdog, WatchdogConfig};
use rand::{rngs::StdRng, RngCore, SeedableRng};

use crate::{run_open_loop, OpStatus, OpenLoopConfig, OpenLoopReport, SloGate, SloVerdict};

/// Shape of a flash-sale run.
#[derive(Debug, Clone)]
pub struct FlashSaleConfig {
    /// Master seed (cluster retry jitter, Zipf sampling, arrivals).
    pub seed: u64,
    /// Shards in the cluster.
    pub shards: usize,
    /// Item pools; pool 0 is the Zipf head ("the" sale item).
    pub pools: usize,
    /// Zipf skew exponent (1.2 ≈ strongly contended head).
    pub zipf_s: f64,
    /// Units seeded into every pool — ample, so capacity is not the
    /// bottleneck and rejections are attributable to overload shedding.
    pub qty_per_pool: u64,
    /// Live-promise cap per shard (admission fail-fast threshold).
    pub overload_limit: usize,
    /// Probability a granted shopper releases immediately; the rest hold,
    /// building live count against the cap.
    pub release_probability: f64,
    /// Arrivals in the gated normal phase.
    pub ops_normal: usize,
    /// Arrivals in the overload phase.
    pub ops_overload: usize,
    /// Arrivals in the recovery phase.
    pub ops_recovery: usize,
    /// Per-message shard service inflation during overload, µs. Must sit
    /// above the `client.send` SLO to make the burn monitor trip.
    pub overload_service_us: u64,
    /// Health-tick cadence, in arrivals.
    pub tick_every: usize,
    /// Offered arrival rate for the generator, ops/s of virtual time.
    pub offered_rate: f64,
    /// Bounded in-flight concurrency for the generator.
    pub max_in_flight: usize,
    /// p99 ceiling for the normal-phase `client.send` stage, ns.
    pub slo_p99_ns: u64,
    /// Goodput floor for the normal phase.
    pub min_goodput_ratio: f64,
}

impl Default for FlashSaleConfig {
    fn default() -> Self {
        Self {
            seed: 2007,
            shards: 2,
            pools: 8,
            zipf_s: 1.2,
            qty_per_pool: 1_000_000,
            overload_limit: 256,
            release_probability: 0.2,
            ops_normal: 160,
            ops_overload: 140,
            ops_recovery: 120,
            overload_service_us: 2_500,
            tick_every: 20,
            offered_rate: 2_000.0,
            max_in_flight: 8,
            // The burn-rate monitor's default stage SLO (2^21 ns); the
            // normal phase must clear the same bar the watchdog enforces.
            slo_p99_ns: 1 << 21,
            min_goodput_ratio: 0.95,
        }
    }
}

/// Outcome of a flash-sale run.
#[derive(Debug, Clone)]
pub struct FlashSaleReport {
    /// Open-loop report for the gated normal phase.
    pub normal: OpenLoopReport,
    /// SLO verdict over the normal phase (`client.send` p99 + goodput).
    pub verdict: SloVerdict,
    /// Open-loop report for the overload phase.
    pub overload: OpenLoopReport,
    /// Open-loop report for the recovery phase.
    pub recovery: OpenLoopReport,
    /// The `slo-burn-rate` watchdog tripped during overload and the
    /// cluster was flipped into degraded mode.
    pub degraded_engaged: bool,
    /// Degraded mode was lifted again during recovery (trip-free ticks).
    pub degraded_cleared: bool,
    /// Grants refused by overload shedding (cap or degraded mode).
    pub shed_rejections: u64,
    /// Rejection counts by cause substring, across all phases.
    pub reject_causes: BTreeMap<String, u64>,
}

impl FlashSaleReport {
    /// The run held its gates: normal-phase SLO passed, load shedding
    /// engaged under overload, and the cluster came back.
    pub fn passed(&self) -> bool {
        self.verdict.passed && self.degraded_engaged && self.degraded_cleared
    }
}

fn classify(reason: &str) -> &'static str {
    if reason.contains("overloaded") {
        "overloaded"
    } else if reason.contains("insufficient") || reason.contains("quantity") {
        "capacity"
    } else {
        "other"
    }
}

/// Runs the three-phase flash sale against a fresh cluster.
pub fn run_flash_sale(cfg: &FlashSaleConfig) -> FlashSaleReport {
    let cluster = PromiseCluster::build(cfg.shards, cfg.seed);
    let pools: Vec<String> = (0..cfg.pools).map(|i| format!("sale-item-{i}")).collect();
    for pool in &pools {
        cluster.register_quantity_pool(pool, cfg.qty_per_pool);
    }
    for node in &cluster.nodes {
        node.pm.set_overload_limit(cfg.overload_limit);
    }

    let cdf = zipf_cdf(cfg.pools, cfg.zipf_s);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut reject_causes: BTreeMap<String, u64> = BTreeMap::new();
    let mut shed_rejections = 0u64;
    let mut op_serial = 0usize;

    // One op: a shopper asks for one unit of a Zipf-sampled item through
    // the coordinator; a minority of grants release immediately, the rest
    // hold (and are reclaimed by expiry pruning at the end).
    let shop = |rng: &mut StdRng,
                serial: usize,
                reject_causes: &mut BTreeMap<String, u64>,
                shed: &mut u64|
     -> OpStatus {
        let pool = &pools[sample_zipf(&cdf, rng)];
        let client = format!("shopper-{}", serial % 64);
        let rid = format!("fs-{serial}");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        match cluster
            .coordinator
            .grant(&client, &rid, &[format!("qty('{pool}') >= 1")], 600_000)
        {
            Ok(decision) => match decision {
                promises_cluster::ClusterDecision::Granted { parts } => {
                    if unit < cfg.release_probability {
                        cluster.coordinator.release(&parts);
                    }
                    OpStatus::Ok
                }
                promises_cluster::ClusterDecision::Rejected { reason } => {
                    let cause = classify(&reason);
                    if cause == "overloaded" {
                        *shed += 1;
                    }
                    *reject_causes.entry(cause.to_owned()).or_insert(0) += 1;
                    OpStatus::Rejected
                }
            },
            Err(_) => OpStatus::Failed,
        }
    };

    let gen_cfg = |phase: u64, ops: usize| OpenLoopConfig {
        offered_rate: cfg.offered_rate,
        ops,
        max_in_flight: cfg.max_in_flight,
        seed: cfg.seed.wrapping_add(phase),
    };

    // Phase 1 — normal. Judge the SLO on this phase's client.send p99:
    // snapshot the histogram before overload pollutes it.
    let normal = run_open_loop(&gen_cfg(1, cfg.ops_normal), |_| {
        op_serial += 1;
        shop(
            &mut rng,
            op_serial,
            &mut reject_causes,
            &mut shed_rejections,
        )
    });
    let send_p99 = cluster.snapshot();
    let gate = SloGate::new("client.send", cfg.slo_p99_ns, cfg.min_goodput_ratio);
    let verdict = gate.judge_parts(
        send_p99
            .histogram("client.send")
            .unwrap_or(&promises_telemetry::HistogramSnapshot::default()),
        normal.goodput_ratio(),
    );

    // Phase 2 — overload: inflate shard service time past the stage SLO
    // and health-tick on a cadence; the first slo-burn-rate trip flips
    // every shard into degraded mode.
    cluster.set_service_time_us(cfg.overload_service_us);
    let mut health = HealthState::new(WatchdogConfig::default());
    let mut degraded_engaged = false;
    let overload = run_open_loop(&gen_cfg(2, cfg.ops_overload), |i| {
        op_serial += 1;
        let status = shop(
            &mut rng,
            op_serial,
            &mut reject_causes,
            &mut shed_rejections,
        );
        if (i + 1) % cfg.tick_every == 0 {
            let trips = cluster.health_tick(&mut health);
            let slo_tripped = trips
                .iter()
                .any(|(t, _)| matches!(t.watchdog, Watchdog::SloBurnRate));
            if slo_tripped && !degraded_engaged {
                degraded_engaged = true;
                for node in &cluster.nodes {
                    node.pm.set_degraded(true);
                }
            }
        }
        status
    });

    // Phase 3 — recovery: service time back to normal; two consecutive
    // trip-free ticks lift degraded mode.
    cluster.set_service_time_us(0);
    let mut clean_ticks = 0u32;
    let mut degraded_cleared = false;
    let recovery = run_open_loop(&gen_cfg(3, cfg.ops_recovery), |i| {
        op_serial += 1;
        let status = shop(
            &mut rng,
            op_serial,
            &mut reject_causes,
            &mut shed_rejections,
        );
        if (i + 1) % cfg.tick_every == 0 && !degraded_cleared {
            let trips = cluster.health_tick(&mut health);
            let slo_tripped = trips
                .iter()
                .any(|(t, _)| matches!(t.watchdog, Watchdog::SloBurnRate));
            clean_ticks = if slo_tripped { 0 } else { clean_ticks + 1 };
            if clean_ticks >= 2 && degraded_engaged {
                degraded_cleared = true;
                for node in &cluster.nodes {
                    node.pm.set_degraded(false);
                }
            }
        }
        status
    });

    // Expiry reclaims everything the shoppers held on to.
    cluster.advance_and_prune(4_000_000);

    FlashSaleReport {
        normal,
        verdict,
        overload,
        recovery,
        degraded_engaged,
        degraded_cleared,
        shed_rejections,
        reject_causes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_sale_arc_sheds_then_recovers() {
        // The strict default p99 ceiling (the watchdog's own 2^21 ns SLO)
        // is for the serial release-mode benchmark; under a parallel
        // debug test runner wall-clock service times are at the mercy of
        // sibling tests, so the in-crate arc test loosens the ceiling and
        // judges the behavioural gates (shed, engage, clear) strictly.
        let report = run_flash_sale(&FlashSaleConfig {
            slo_p99_ns: 1 << 24,
            ..FlashSaleConfig::default()
        });
        assert!(
            report.verdict.passed,
            "normal phase must meet the SLO: {}",
            report.verdict.summary()
        );
        assert!(
            report.degraded_engaged,
            "overload must trip the burn-rate watchdog into degraded mode"
        );
        assert!(
            report.degraded_cleared,
            "recovery must lift degraded mode after trip-free ticks"
        );
        assert!(
            report.shed_rejections > 0,
            "degraded mode must have refused real traffic"
        );
        // After degraded mode cleared, grants flow again.
        assert!(
            report.recovery.completed > 0,
            "recovery phase must complete grants after the clear"
        );
    }

    #[test]
    fn rejections_are_classified_by_cause() {
        let report = run_flash_sale(&FlashSaleConfig::default());
        let total: u64 = report.reject_causes.values().sum();
        assert_eq!(
            total,
            report.normal.rejected + report.overload.rejected + report.recovery.rejected,
            "every rejection carries a cause"
        );
        assert!(report.reject_causes.contains_key("overloaded"));
    }
}
