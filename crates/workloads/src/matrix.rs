//! The error-path matrix: every failure class crossed with every
//! scenario, each cell an explicit pass/skip/fail verdict.
//!
//! Fault coverage tends to rot silently — a fault class gets exercised in
//! whichever test someone happened to write, the rest are assumed. The
//! matrix makes the coverage claim inspectable: each cell actually runs a
//! compact version of its scenario under exactly one failure class and
//! audits the isolation invariants (no double grants, no oversells, no
//! leaks, bounded state). A cell is `Pass` when the audits come back
//! clean, `Fail` with the evidence when they do not, and `Skip` with the
//! reason when the combination is not applicable — never silently absent.

use std::sync::Arc;

use promises_cluster::{ClusterDecision, PromiseCluster};
use promises_core::JournalOp;
use promises_faults::{FaultInjector, FaultScenario};
use promises_rm::Record;

/// Failure classes injected one per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// Requests and replies dropped in flight.
    Drops,
    /// Requests delivered twice.
    Duplicates,
    /// Sub-millisecond delivery delays (reordering).
    Delays,
    /// RM storage faults inside shard transactions.
    StorageErrors,
    /// A pool-owning leader killed mid-run, warm follower promoted.
    LeaderKill,
    /// Admission cap plus degraded mode engaged mid-run.
    Overload,
}

impl FailureClass {
    /// All classes, matrix row order.
    pub const ALL: [FailureClass; 6] = [
        FailureClass::Drops,
        FailureClass::Duplicates,
        FailureClass::Delays,
        FailureClass::StorageErrors,
        FailureClass::LeaderKill,
        FailureClass::Overload,
    ];

    /// Row label.
    pub fn name(self) -> &'static str {
        match self {
            FailureClass::Drops => "drops",
            FailureClass::Duplicates => "duplicates",
            FailureClass::Delays => "delays",
            FailureClass::StorageErrors => "storage-errors",
            FailureClass::LeaderKill => "leader-kill",
            FailureClass::Overload => "overload",
        }
    }
}

/// Matrix columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Zipf-contended single-leg grants on a two-shard cluster.
    FlashSale,
    /// Cross-shard three-leg bookings on a three-shard cluster.
    TravelBooking,
}

impl Scenario {
    /// All scenarios, matrix column order.
    pub const ALL: [Scenario; 2] = [Scenario::FlashSale, Scenario::TravelBooking];

    /// Column label.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::FlashSale => "flash-sale",
            Scenario::TravelBooking => "travel-booking",
        }
    }
}

/// One cell's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellStatus {
    /// Ran; all audits clean.
    Pass,
    /// Not applicable; the reason is recorded, never implied.
    Skip(String),
    /// Ran; at least one audit failed.
    Fail(String),
}

impl CellStatus {
    /// Checklist legend: `[x]` pass, `[-]` skipped, `[!]` failed.
    pub fn legend(&self) -> &'static str {
        match self {
            CellStatus::Pass => "[x]",
            CellStatus::Skip(_) => "[-]",
            CellStatus::Fail(_) => "[!]",
        }
    }
}

/// One (failure class, scenario) cell.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// The injected failure class.
    pub failure: FailureClass,
    /// The scenario it was injected into.
    pub scenario: Scenario,
    /// The verdict.
    pub status: CellStatus,
    /// Audit evidence: grants/rejects/failures and the audit counters.
    pub detail: String,
}

/// The full matrix.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// All cells, row-major (failure class outer, scenario inner).
    pub cells: Vec<MatrixCell>,
}

impl MatrixReport {
    /// Cells that ran and failed their audits.
    pub fn failures(&self) -> Vec<&MatrixCell> {
        self.cells
            .iter()
            .filter(|c| matches!(c.status, CellStatus::Fail(_)))
            .collect()
    }

    /// No cell failed (skips are allowed — they are explicit).
    pub fn all_clean(&self) -> bool {
        self.failures().is_empty()
    }
}

/// Audit counters shared by every cell.
#[derive(Debug, Default)]
struct CellAudit {
    double_grants: u64,
    oversells: u64,
    live_after_reap: usize,
    state_after_reap: usize,
    granted: u64,
    rejected: u64,
    failed: u64,
}

impl CellAudit {
    fn verdict(&self) -> CellStatus {
        if self.granted == 0 {
            return CellStatus::Fail("no grant ever succeeded — cell exercised nothing".into());
        }
        if self.double_grants == 0
            && self.oversells == 0
            && self.live_after_reap == 0
            && self.state_after_reap == 0
        {
            CellStatus::Pass
        } else {
            CellStatus::Fail(self.detail())
        }
    }

    fn detail(&self) -> String {
        format!(
            "granted {} rejected {} failed {}; double {} oversell {} live {} state {}",
            self.granted,
            self.rejected,
            self.failed,
            self.double_grants,
            self.oversells,
            self.live_after_reap,
            self.state_after_reap
        )
    }
}

/// Scans the shard journals and quantity books, then reaps, filling the
/// invariant counters.
fn audit_cluster(cluster: &PromiseCluster, audit: &mut CellAudit) {
    for node in &cluster.nodes {
        let mut grant_counts: std::collections::BTreeMap<(String, String), u32> =
            std::collections::BTreeMap::new();
        if let Ok(entries) = node.journal.entries() {
            for entry in entries {
                if let JournalOp::Grant(rec) | JournalOp::Prepared(rec) = entry.op {
                    *grant_counts
                        .entry((rec.client.0.clone(), rec.request.0.clone()))
                        .or_insert(0) += 1;
                }
            }
        }
        audit.double_grants += grant_counts.values().filter(|&&n| n > 1).count() as u64;
        for (pool, demanded) in node.pm.promised_quantities() {
            let on_hand = node.pm.quantity_on_hand(pool.clone()).unwrap_or(0);
            if demanded > on_hand {
                audit.oversells += 1;
            }
        }
    }
    cluster.advance_and_prune(4_000_000);
    audit.live_after_reap = cluster.live_count();
    cluster.advance_and_prune(400_000);
    audit.state_after_reap = cluster.coordinator.dedup_len()
        + cluster
            .nodes
            .iter()
            .map(|n| n.pm.tombstone_count())
            .sum::<usize>();
}

/// Wire-fault scenario for the message-level failure classes.
fn wire_faults(class: FailureClass, seed: u64) -> Option<FaultScenario> {
    let quiet = FaultScenario::quiet(seed);
    match class {
        FailureClass::Drops => Some(FaultScenario {
            drop_request: 0.15,
            drop_reply: 0.15,
            ..quiet
        }),
        FailureClass::Duplicates => Some(FaultScenario {
            duplicate: 0.30,
            ..quiet
        }),
        FailureClass::Delays => Some(FaultScenario {
            delay_probability: 0.30,
            max_delay: std::time::Duration::from_micros(200),
            ..quiet
        }),
        FailureClass::StorageErrors => Some(FaultScenario::quiet(seed).with_storage_errors(0.03)),
        FailureClass::LeaderKill | FailureClass::Overload => None,
    }
}

/// Applies `class`'s injector to the cluster (wire and, for storage
/// faults, every shard RM).
fn install_faults(cluster: &PromiseCluster, class: FailureClass, seed: u64) {
    if let Some(scenario) = wire_faults(class, seed) {
        let storage = matches!(class, FailureClass::StorageErrors);
        let injector = Arc::new(FaultInjector::new(scenario));
        if storage {
            for node in &cluster.nodes {
                node.rm.set_storage_fault_hook(Some(injector.rm_hook()));
            }
        } else {
            cluster.bus.set_fault_injector(Some(Arc::clone(&injector)));
        }
    }
}

const CELL_OPS: usize = 48;

/// One flash-sale cell: single-leg Zipf-free grants on the hot pool of a
/// two-shard cluster, half released immediately, under `class`.
fn flash_cell(class: FailureClass, seed: u64) -> MatrixCell {
    let mut cluster = PromiseCluster::build(2, seed);
    cluster.register_quantity_pool("sale-hot", 10_000);
    cluster.register_quantity_pool("sale-cold", 10_000);
    if class == FailureClass::LeaderKill {
        cluster.enable_replication();
    }
    install_faults(&cluster, class, seed);
    if class == FailureClass::Overload {
        for node in &cluster.nodes {
            node.pm.set_overload_limit(8);
        }
    }

    let mut audit = CellAudit::default();
    for i in 0..CELL_OPS {
        if class == FailureClass::LeaderKill && i == CELL_OPS / 2 {
            // Kill the cold pool's owner mid-run and promote its warm
            // follower; the hot pool's shard keeps serving throughout.
            cluster.kill_shard(1);
            cluster.promote_follower(1);
        }
        if class == FailureClass::Overload && i == CELL_OPS / 2 {
            for node in &cluster.nodes {
                node.pm.set_degraded(true);
            }
        }
        let pool = if i % 4 == 0 { "sale-cold" } else { "sale-hot" };
        match cluster.coordinator.grant(
            &format!("shopper-{}", i % 8),
            &format!("cell-{i}"),
            &[format!("qty('{pool}') >= 1")],
            600_000,
        ) {
            Ok(ClusterDecision::Granted { parts }) => {
                audit.granted += 1;
                if i % 2 == 0 {
                    cluster.coordinator.release(&parts);
                }
            }
            Ok(ClusterDecision::Rejected { .. }) => audit.rejected += 1,
            Err(_) => audit.failed += 1,
        }
    }
    if class == FailureClass::Overload {
        for node in &cluster.nodes {
            node.pm.set_degraded(false);
        }
    }

    audit_cluster(&cluster, &mut audit);
    MatrixCell {
        failure: class,
        scenario: Scenario::FlashSale,
        status: audit.verdict(),
        detail: audit.detail(),
    }
}

/// One travel-booking cell: three-leg cross-shard negotiated bookings
/// (flight + car + twin-bed room, view desirable) under `class`.
fn travel_cell(class: FailureClass, seed: u64) -> MatrixCell {
    let mut cluster = PromiseCluster::build(3, seed);
    let flight_shard = cluster.register_quantity_pool("flight-seats", 10_000);
    cluster.register_quantity_pool("rental-cars", 10_000);
    let room_shard = cluster.map.assign_round_robin("travel-rooms");
    {
        let room_pm = &cluster.nodes[room_shard].pm;
        room_pm.register_pool(promises_core::PoolSchema::instances(
            "travel-rooms",
            vec![
                promises_core::PropertyDef::plain("beds"),
                promises_core::PropertyDef::plain("view"),
            ],
        ));
        for i in 0..12 {
            room_pm
                .seed_instance(
                    "travel-rooms",
                    format!("room-{i}").as_str(),
                    Record::new().with("beds", 2i64).with("view", i < 2),
                )
                .expect("seed room");
        }
    }
    if class == FailureClass::LeaderKill {
        cluster.enable_replication();
    }
    install_faults(&cluster, class, seed);
    if class == FailureClass::Overload {
        for node in &cluster.nodes {
            node.pm.set_overload_limit(8);
        }
    }

    let predicates = [
        "qty('flight-seats') >= 1".to_owned(),
        "qty('rental-cars') >= 1".to_owned(),
        "prop('travel-rooms'): beds == 2 && desirable(view == true)".to_owned(),
    ];
    let mut audit = CellAudit::default();
    for i in 0..CELL_OPS {
        if class == FailureClass::LeaderKill && i == CELL_OPS / 2 {
            // Kill the flight shard (quantity pools only — the room
            // instance pool's shard must keep its schema) and promote.
            cluster.kill_shard(flight_shard);
            cluster.promote_follower(flight_shard);
        }
        if class == FailureClass::Overload && i == CELL_OPS / 2 {
            for node in &cluster.nodes {
                node.pm.set_degraded(true);
            }
        }
        match cluster.coordinator.grant_negotiated(
            &format!("traveller-{}", i % 8),
            &format!("cell-{i}"),
            &predicates,
            600_000,
        ) {
            Ok(grant) => match grant.decision {
                ClusterDecision::Granted { parts } => {
                    audit.granted += 1;
                    if i % 2 == 0 {
                        cluster.coordinator.release(&parts);
                    }
                }
                ClusterDecision::Rejected { .. } => audit.rejected += 1,
            },
            Err(_) => audit.failed += 1,
        }
    }
    if class == FailureClass::Overload {
        for node in &cluster.nodes {
            node.pm.set_degraded(false);
        }
    }

    audit_cluster(&cluster, &mut audit);
    MatrixCell {
        failure: class,
        scenario: Scenario::TravelBooking,
        status: audit.verdict(),
        detail: audit.detail(),
    }
}

/// Runs every (failure class × scenario) cell and returns the matrix.
pub fn run_error_path_matrix(seed: u64) -> MatrixReport {
    let mut cells = Vec::with_capacity(FailureClass::ALL.len() * Scenario::ALL.len());
    for class in FailureClass::ALL {
        for scenario in Scenario::ALL {
            let cell_seed = seed ^ ((cells.len() as u64 + 1) << 8);
            cells.push(match scenario {
                Scenario::FlashSale => flash_cell(class, cell_seed),
                Scenario::TravelBooking => travel_cell(class, cell_seed),
            });
        }
    }
    MatrixReport { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_cell_and_passes() {
        let report = run_error_path_matrix(2007);
        assert_eq!(report.cells.len(), 12, "6 failure classes x 2 scenarios");
        for cell in &report.cells {
            assert!(
                !matches!(cell.status, CellStatus::Fail(_)),
                "{} x {}: {:?} ({})",
                cell.failure.name(),
                cell.scenario.name(),
                cell.status,
                cell.detail
            );
        }
        // Nothing is silently skipped either: every cell currently runs.
        assert!(report
            .cells
            .iter()
            .all(|c| matches!(c.status, CellStatus::Pass)));
    }
}
