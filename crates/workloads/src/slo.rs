//! Service-level objective gates.
//!
//! A benchmark number without a judgment invites drift: the table gets a
//! little worse each quarter and nobody's build breaks. An [`SloGate`]
//! makes the judgment explicit — p99 below a stated ceiling *and* goodput
//! above a stated floor, or the run fails — so the workload benchmarks in
//! `experiments --workloads` gate CI the same way correctness tests do.

use promises_telemetry::HistogramSnapshot;

use crate::OpenLoopReport;

/// A pass/fail service-level objective for one workload stage.
#[derive(Debug, Clone)]
pub struct SloGate {
    /// Human-readable stage this gate judges (e.g. `"client.send"` or
    /// `"flash-sale end-to-end"`).
    pub stage: String,
    /// Ceiling on p99 latency, nanoseconds.
    pub p99_ns_max: u64,
    /// Floor on completed/offered, 0.0..=1.0.
    pub min_goodput_ratio: f64,
}

/// The judgment an [`SloGate`] renders over a run.
#[derive(Debug, Clone)]
pub struct SloVerdict {
    /// Stage judged, copied from the gate.
    pub stage: String,
    /// Observed p99, ns (0 when nothing was recorded).
    pub p99_ns: u64,
    /// The gate's p99 ceiling.
    pub p99_ns_max: u64,
    /// Observed completed/offered ratio.
    pub goodput_ratio: f64,
    /// The gate's goodput floor.
    pub min_goodput_ratio: f64,
    /// Both bounds held.
    pub passed: bool,
}

impl SloVerdict {
    /// One-line rendering for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "{}: p99 {:.3}ms (max {:.3}ms), goodput {:.1}% (min {:.1}%) => {}",
            self.stage,
            self.p99_ns as f64 / 1e6,
            self.p99_ns_max as f64 / 1e6,
            self.goodput_ratio * 100.0,
            self.min_goodput_ratio * 100.0,
            if self.passed { "pass" } else { "FAIL" }
        )
    }
}

impl SloGate {
    /// Builds a gate over the named stage.
    pub fn new(stage: impl Into<String>, p99_ns_max: u64, min_goodput_ratio: f64) -> Self {
        Self {
            stage: stage.into(),
            p99_ns_max,
            min_goodput_ratio,
        }
    }

    /// Judges an open-loop run: its coordinated-omission-free latency
    /// histogram against the p99 ceiling and its completed/offered ratio
    /// against the goodput floor.
    pub fn judge(&self, report: &OpenLoopReport) -> SloVerdict {
        self.judge_parts(&report.latency, report.goodput_ratio())
    }

    /// Judges an arbitrary latency snapshot + goodput ratio — used when
    /// the latency of interest is a per-stage histogram from the cluster's
    /// telemetry rather than the generator's end-to-end histogram.
    pub fn judge_parts(&self, latency: &HistogramSnapshot, goodput_ratio: f64) -> SloVerdict {
        // An empty histogram means the stage never ran; that is a failure
        // of the run, not a vacuous pass.
        let passed = match latency.p99() {
            Some(p99) => p99 <= self.p99_ns_max && goodput_ratio >= self.min_goodput_ratio,
            None => false,
        };
        SloVerdict {
            stage: self.stage.clone(),
            p99_ns: latency.p99().unwrap_or(0),
            p99_ns_max: self.p99_ns_max,
            goodput_ratio,
            min_goodput_ratio: self.min_goodput_ratio,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_open_loop, OpStatus, OpenLoopConfig};

    #[test]
    fn gate_passes_fast_runs_and_fails_slow_ones() {
        let report = run_open_loop(&OpenLoopConfig::default(), |_| OpStatus::Ok);
        let lenient = SloGate::new("e2e", u64::MAX, 0.99);
        assert!(lenient.judge(&report).passed);
        let impossible = SloGate::new("e2e", 0, 0.99);
        assert!(!impossible.judge(&report).passed);
    }

    #[test]
    fn goodput_floor_is_enforced() {
        let report = run_open_loop(&OpenLoopConfig::default(), |i| {
            if i % 2 == 0 {
                OpStatus::Ok
            } else {
                OpStatus::Rejected
            }
        });
        let gate = SloGate::new("e2e", u64::MAX, 0.9);
        let verdict = gate.judge(&report);
        assert!(!verdict.passed, "{}", verdict.summary());
    }

    #[test]
    fn empty_histogram_fails_not_passes() {
        let gate = SloGate::new("never-ran", u64::MAX, 0.0);
        let verdict = gate.judge_parts(&HistogramSnapshot::default(), 1.0);
        assert!(!verdict.passed, "empty stage must not vacuously pass");
    }
}
