//! The open-loop load generator.
//!
//! Every benchmark before this crate was *closed-loop*: N client threads
//! each issue an op, wait for it, think, repeat — so when the system slows
//! down the clients slow down with it, the offered load collapses to
//! whatever the system can absorb, and the latency a user would actually
//! have seen (queueing included) is silently edited out of the histogram.
//! That editing is *coordinated omission*.
//!
//! This generator is **open-loop**: arrivals are a seeded Poisson process
//! at a configured offered rate, fixed in advance, indifferent to how the
//! system is doing. It runs in *virtual time* — no thread sleeps, no
//! timers — as a deterministic G/G/c queue simulation:
//!
//! * arrival `i` happens at virtual nanosecond `A_i` (cumulative
//!   exponential gaps, `-ln(1-u)/rate`);
//! * `max_in_flight` virtual servers model the bounded concurrency a real
//!   front end would run; op `i` *starts* at
//!   `S_i = max(A_i, earliest server free time)` — if every server is
//!   busy, the op queues;
//! * the op itself is executed synchronously and its measured wall-clock
//!   becomes the virtual *service time* `X_i` (the system under test is
//!   real; only the arrival clock is simulated);
//! * recorded latency is `S_i + X_i - A_i` — queueing delay **included**,
//!   anchored at the intended arrival, never at the convenient moment the
//!   driver got around to sending. No coordinated omission.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use promises_telemetry::{Histogram, HistogramSnapshot};
use rand::{rngs::StdRng, RngCore, SeedableRng};

/// Shape of one open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Offered arrival rate, ops per second of virtual time.
    pub offered_rate: f64,
    /// Total arrivals to generate.
    pub ops: usize,
    /// Bounded in-flight concurrency (virtual servers); arrivals beyond
    /// it queue, and their queueing delay lands in the latency.
    pub max_in_flight: usize,
    /// PRNG seed for the arrival process.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            offered_rate: 2_000.0,
            ops: 200,
            max_in_flight: 8,
            seed: 2007,
        }
    }
}

/// How one op ended, as classified by the scenario closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpStatus {
    /// The op did its useful work (goodput).
    Ok,
    /// The system said no cleanly (admission rejection, negotiation
    /// exhausted, capacity) — accounted, not goodput.
    Rejected,
    /// Transport or storage failure surfaced to the caller.
    Failed,
}

/// Outcome of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Arrivals generated.
    pub offered: usize,
    /// Ops that completed useful work.
    pub completed: u64,
    /// Clean rejections.
    pub rejected: u64,
    /// Failures.
    pub failed: u64,
    /// End-to-end latency (queueing delay included), anchored at intended
    /// arrival times.
    pub latency: HistogramSnapshot,
    /// Virtual makespan: last completion minus first arrival, ns.
    pub makespan_ns: u64,
}

impl OpenLoopReport {
    /// Achieved goodput in ops per second of virtual time.
    pub fn goodput_per_sec(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.completed as f64 * 1e9 / self.makespan_ns as f64
    }

    /// Completed fraction of the offered load.
    pub fn goodput_ratio(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.completed as f64 / self.offered as f64
    }
}

/// A uniform draw in [0, 1) with 53 bits of entropy.
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Drives `op` once per generated arrival and returns the
/// coordinated-omission-free report. `op` receives the arrival index and
/// performs the scenario's synchronous work against the real system; its
/// measured wall-clock is the op's virtual service time.
pub fn run_open_loop<F>(cfg: &OpenLoopConfig, mut op: F) -> OpenLoopReport
where
    F: FnMut(usize) -> OpStatus,
{
    assert!(cfg.offered_rate > 0.0, "offered rate must be positive");
    assert!(cfg.max_in_flight > 0, "need at least one virtual server");
    // Salted so scenario seeds and arrival seeds draw distinct streams.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
    let gap_ns = |rng: &mut StdRng| {
        let u = unit(rng);
        (-(1.0 - u).ln() / cfg.offered_rate * 1e9) as u64
    };

    // Virtual server free times; the earliest-free server takes each op.
    let mut servers: BinaryHeap<Reverse<u64>> =
        (0..cfg.max_in_flight).map(|_| Reverse(0u64)).collect();
    let latency = Histogram::default();
    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut failed = 0u64;
    let mut arrival_ns = 0u64;
    let mut makespan_ns = 0u64;

    for i in 0..cfg.ops {
        arrival_ns = arrival_ns.saturating_add(gap_ns(&mut rng));
        let Reverse(free_at) = servers.pop().expect("non-empty server heap");
        let start = arrival_ns.max(free_at);
        let wall = Instant::now();
        let status = op(i);
        let service_ns = wall.elapsed().as_nanos() as u64;
        let done = start.saturating_add(service_ns);
        servers.push(Reverse(done));
        latency.record(done - arrival_ns);
        makespan_ns = makespan_ns.max(done);
        match status {
            OpStatus::Ok => completed += 1,
            OpStatus::Rejected => rejected += 1,
            OpStatus::Failed => failed += 1,
        }
    }

    OpenLoopReport {
        offered: cfg.ops,
        completed,
        rejected,
        failed,
        latency: latency.snapshot(),
        makespan_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        let cfg = OpenLoopConfig {
            ops: 50,
            ..OpenLoopConfig::default()
        };
        let a = run_open_loop(&cfg, |_| OpStatus::Ok);
        let b = run_open_loop(&cfg, |_| OpStatus::Ok);
        assert_eq!(a.completed, 50);
        // Same seed, same arrival process; only the measured service
        // jitter differs, so makespans agree to within service noise.
        assert_eq!(a.offered, b.offered);
    }

    #[test]
    fn queueing_delay_lands_in_latency() {
        // One server, arrivals far faster than service: op k waits behind
        // k-1 slow predecessors, so p99 latency must dwarf one service
        // time — the signature coordinated omission erases.
        let cfg = OpenLoopConfig {
            offered_rate: 1_000_000.0,
            ops: 40,
            max_in_flight: 1,
            seed: 7,
        };
        let service = Duration::from_millis(1);
        let report = run_open_loop(&cfg, |_| {
            std::thread::sleep(service);
            OpStatus::Ok
        });
        let p99 = report.latency.p99().expect("recorded") as u128;
        assert!(
            p99 > 20 * service.as_nanos(),
            "p99 {p99}ns must include queueing behind ~39 predecessors"
        );
    }

    #[test]
    fn status_classification_is_counted() {
        let cfg = OpenLoopConfig {
            ops: 30,
            ..OpenLoopConfig::default()
        };
        let report = run_open_loop(&cfg, |i| match i % 3 {
            0 => OpStatus::Ok,
            1 => OpStatus::Rejected,
            _ => OpStatus::Failed,
        });
        assert_eq!(report.completed, 10);
        assert_eq!(report.rejected, 10);
        assert_eq!(report.failed, 10);
        assert!(report.goodput_ratio() > 0.3 && report.goodput_ratio() < 0.35);
    }
}
