//! The open-loop load generator.
//!
//! Every benchmark before this crate was *closed-loop*: N client threads
//! each issue an op, wait for it, think, repeat — so when the system slows
//! down the clients slow down with it, the offered load collapses to
//! whatever the system can absorb, and the latency a user would actually
//! have seen (queueing included) is silently edited out of the histogram.
//! That editing is *coordinated omission*.
//!
//! This generator is **open-loop**: arrivals are a seeded Poisson process
//! at a configured offered rate, fixed in advance, indifferent to how the
//! system is doing. It runs in *virtual time* — no thread sleeps, no
//! timers — as a deterministic G/G/c queue simulation:
//!
//! * arrival `i` happens at virtual nanosecond `A_i` (cumulative
//!   exponential gaps, `-ln(1-u)/rate`);
//! * `max_in_flight` virtual servers model the bounded concurrency a real
//!   front end would run; op `i` *starts* at
//!   `S_i = max(A_i, earliest server free time)` — if every server is
//!   busy, the op queues;
//! * the op itself is executed synchronously and its measured wall-clock
//!   becomes the virtual *service time* `X_i` (the system under test is
//!   real; only the arrival clock is simulated);
//! * recorded latency is `S_i + X_i - A_i` — queueing delay **included**,
//!   anchored at the intended arrival, never at the convenient moment the
//!   driver got around to sending. No coordinated omission.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use promises_telemetry::{Histogram, HistogramSnapshot};
use rand::{rngs::StdRng, RngCore, SeedableRng};

/// Shape of one open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Offered arrival rate, ops per second of virtual time.
    pub offered_rate: f64,
    /// Total arrivals to generate.
    pub ops: usize,
    /// Bounded in-flight concurrency (virtual servers); arrivals beyond
    /// it queue, and their queueing delay lands in the latency.
    pub max_in_flight: usize,
    /// PRNG seed for the arrival process.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            offered_rate: 2_000.0,
            ops: 200,
            max_in_flight: 8,
            seed: 2007,
        }
    }
}

/// How one op ended, as classified by the scenario closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpStatus {
    /// The op did its useful work (goodput).
    Ok,
    /// The system said no cleanly (admission rejection, negotiation
    /// exhausted, capacity) — accounted, not goodput.
    Rejected,
    /// Transport or storage failure surfaced to the caller.
    Failed,
}

/// Outcome of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Arrivals generated.
    pub offered: usize,
    /// Ops that completed useful work.
    pub completed: u64,
    /// Clean rejections.
    pub rejected: u64,
    /// Failures.
    pub failed: u64,
    /// End-to-end latency (queueing delay included), anchored at intended
    /// arrival times.
    pub latency: HistogramSnapshot,
    /// Virtual makespan: last completion minus first arrival, ns.
    pub makespan_ns: u64,
}

impl OpenLoopReport {
    /// Achieved goodput in ops per second of virtual time.
    pub fn goodput_per_sec(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.completed as f64 * 1e9 / self.makespan_ns as f64
    }

    /// Completed fraction of the offered load.
    pub fn goodput_ratio(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.completed as f64 / self.offered as f64
    }
}

/// A uniform draw in [0, 1) with 53 bits of entropy.
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Drives `op` once per generated arrival and returns the
/// coordinated-omission-free report. `op` receives the arrival index and
/// performs the scenario's synchronous work against the real system; its
/// measured wall-clock is the op's virtual service time.
pub fn run_open_loop<F>(cfg: &OpenLoopConfig, mut op: F) -> OpenLoopReport
where
    F: FnMut(usize) -> OpStatus,
{
    assert!(cfg.offered_rate > 0.0, "offered rate must be positive");
    assert!(cfg.max_in_flight > 0, "need at least one virtual server");
    // Salted so scenario seeds and arrival seeds draw distinct streams.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
    let gap_ns = |rng: &mut StdRng| {
        let u = unit(rng);
        (-(1.0 - u).ln() / cfg.offered_rate * 1e9) as u64
    };

    // Virtual server free times; the earliest-free server takes each op.
    let mut servers: BinaryHeap<Reverse<u64>> =
        (0..cfg.max_in_flight).map(|_| Reverse(0u64)).collect();
    let latency = Histogram::default();
    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut failed = 0u64;
    let mut arrival_ns = 0u64;
    let mut makespan_ns = 0u64;

    for i in 0..cfg.ops {
        arrival_ns = arrival_ns.saturating_add(gap_ns(&mut rng));
        let Reverse(free_at) = servers.pop().expect("non-empty server heap");
        let start = arrival_ns.max(free_at);
        let wall = Instant::now();
        let status = op(i);
        let service_ns = wall.elapsed().as_nanos() as u64;
        let done = start.saturating_add(service_ns);
        servers.push(Reverse(done));
        latency.record(done - arrival_ns);
        makespan_ns = makespan_ns.max(done);
        match status {
            OpStatus::Ok => completed += 1,
            OpStatus::Rejected => rejected += 1,
            OpStatus::Failed => failed += 1,
        }
    }

    OpenLoopReport {
        offered: cfg.ops,
        completed,
        rejected,
        failed,
        latency: latency.snapshot(),
        makespan_ns,
    }
}

/// The concurrent-arrivals variant: the same seeded Poisson arrival
/// schedule, but dispatched by **real threads against the wall clock**.
/// `max_in_flight` worker threads claim arrivals in order; each sleeps
/// until its arrival's scheduled instant, runs the op, and records
/// completion-minus-scheduled-arrival — so when every worker is busy the
/// claim happens late and the queueing delay lands in the latency, same
/// coordinated-omission discipline as the virtual-time generator.
///
/// Use this mode when the system under test is itself threaded (the
/// thread-per-shard runtime): the virtual-time generator executes ops one
/// at a time, so the server never sees concurrent requests and its queue,
/// lock, and group-commit behavior goes unmeasured. Here up to
/// `max_in_flight` ops are genuinely in flight at once. The cost is that
/// latencies inherit scheduler noise, so runs are reproducible in
/// *structure* (the arrival schedule is seed-fixed) but not in exact
/// nanoseconds — gate on invariants and coarse ratios, not exact values.
pub fn run_open_loop_threaded<F>(cfg: &OpenLoopConfig, op: F) -> OpenLoopReport
where
    F: Fn(usize) -> OpStatus + Sync,
{
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    assert!(cfg.offered_rate > 0.0, "offered rate must be positive");
    assert!(cfg.max_in_flight > 0, "need at least one dispatch thread");
    // Identical arrival stream to the virtual-time mode: same seed, same
    // salt, same exponential gaps.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut arrivals = Vec::with_capacity(cfg.ops);
    let mut arrival_ns = 0u64;
    for _ in 0..cfg.ops {
        let u = unit(&mut rng);
        arrival_ns = arrival_ns.saturating_add((-(1.0 - u).ln() / cfg.offered_rate * 1e9) as u64);
        arrivals.push(arrival_ns);
    }

    let start = Instant::now();
    let next = AtomicUsize::new(0);
    let latency = Histogram::default();
    let completed = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let makespan = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..cfg.max_in_flight {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cfg.ops {
                    return;
                }
                let scheduled = arrivals[i];
                let now = start.elapsed().as_nanos() as u64;
                if scheduled > now {
                    std::thread::sleep(std::time::Duration::from_nanos(scheduled - now));
                }
                let status = op(i);
                let done = start.elapsed().as_nanos() as u64;
                latency.record(done.saturating_sub(scheduled));
                makespan.fetch_max(done, Ordering::Relaxed);
                match status {
                    OpStatus::Ok => &completed,
                    OpStatus::Rejected => &rejected,
                    OpStatus::Failed => &failed,
                }
                .fetch_add(1, Ordering::Relaxed);
            });
        }
    });

    OpenLoopReport {
        offered: cfg.ops,
        completed: completed.into_inner(),
        rejected: rejected.into_inner(),
        failed: failed.into_inner(),
        latency: latency.snapshot(),
        makespan_ns: makespan.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        let cfg = OpenLoopConfig {
            ops: 50,
            ..OpenLoopConfig::default()
        };
        let a = run_open_loop(&cfg, |_| OpStatus::Ok);
        let b = run_open_loop(&cfg, |_| OpStatus::Ok);
        assert_eq!(a.completed, 50);
        // Same seed, same arrival process; only the measured service
        // jitter differs, so makespans agree to within service noise.
        assert_eq!(a.offered, b.offered);
    }

    #[test]
    fn queueing_delay_lands_in_latency() {
        // One server, arrivals far faster than service: op k waits behind
        // k-1 slow predecessors, so p99 latency must dwarf one service
        // time — the signature coordinated omission erases.
        let cfg = OpenLoopConfig {
            offered_rate: 1_000_000.0,
            ops: 40,
            max_in_flight: 1,
            seed: 7,
        };
        let service = Duration::from_millis(1);
        let report = run_open_loop(&cfg, |_| {
            std::thread::sleep(service);
            OpStatus::Ok
        });
        let p99 = report.latency.p99().expect("recorded") as u128;
        assert!(
            p99 > 20 * service.as_nanos(),
            "p99 {p99}ns must include queueing behind ~39 predecessors"
        );
    }

    #[test]
    fn threaded_mode_overlaps_ops_and_keeps_queueing_in_latency() {
        // Burst arrivals (rate far above service capacity), 4 dispatch
        // threads, 1ms service: 8 ops run as two waves of 4, so the wall
        // clock must come in well under the 8ms a serial run would take,
        // while second-wave ops must carry their ~1ms queueing delay.
        let cfg = OpenLoopConfig {
            offered_rate: 1_000_000.0,
            ops: 8,
            max_in_flight: 4,
            seed: 11,
        };
        let service = Duration::from_millis(1);
        let wall = Instant::now();
        let report = run_open_loop_threaded(&cfg, |_| {
            std::thread::sleep(service);
            OpStatus::Ok
        });
        let elapsed = wall.elapsed();
        assert_eq!(report.completed, 8);
        assert!(
            elapsed < Duration::from_millis(7),
            "8 x 1ms ops on 4 threads took {elapsed:?} — arrivals are not concurrent"
        );
        let p99 = report.latency.p99().expect("recorded") as u128;
        assert!(
            p99 > (service.as_nanos() * 3) / 2,
            "p99 {p99}ns must include the second wave's queueing delay"
        );
    }

    #[test]
    fn threaded_mode_counts_statuses_like_the_virtual_mode() {
        let cfg = OpenLoopConfig {
            ops: 30,
            ..OpenLoopConfig::default()
        };
        let report = run_open_loop_threaded(&cfg, |i| match i % 3 {
            0 => OpStatus::Ok,
            1 => OpStatus::Rejected,
            _ => OpStatus::Failed,
        });
        assert_eq!(report.completed + report.rejected + report.failed, 30);
        assert_eq!(report.completed, 10);
        assert_eq!(report.rejected, 10);
        assert_eq!(report.failed, 10);
    }

    #[test]
    fn status_classification_is_counted() {
        let cfg = OpenLoopConfig {
            ops: 30,
            ..OpenLoopConfig::default()
        };
        let report = run_open_loop(&cfg, |i| match i % 3 {
            0 => OpStatus::Ok,
            1 => OpStatus::Rejected,
            _ => OpStatus::Failed,
        });
        assert_eq!(report.completed, 10);
        assert_eq!(report.rejected, 10);
        assert_eq!(report.failed, 10);
        assert!(report.goodput_ratio() > 0.3 && report.goodput_ratio() < 0.35);
    }
}
