//! E7 — property-view strategies: cost of the adversarial grant sequence
//! per strategy and pool size (grant/reject *counts* are in
//! `bin/experiments e7`), plus the raw Hopcroft–Karp matching kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use promises_bench::exp::e7_strategy;
use promises_core::CheckStrategy;
use promises_matching::{hopcroft_karp, BipartiteGraph};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_matching");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(200));
    for rooms in [100usize, 400] {
        for (name, strategy) in [
            ("allocated-tags", CheckStrategy::AllocatedTags),
            ("tentative", CheckStrategy::TentativeAllocation),
            ("satisfiability", CheckStrategy::Satisfiability),
        ] {
            g.bench_with_input(BenchmarkId::new(name, rooms), &rooms, |b, &rooms| {
                b.iter(|| e7_strategy(rooms, strategy));
            });
        }
    }
    for n in [100usize, 1_000] {
        g.bench_with_input(BenchmarkId::new("hopcroft-karp", n), &n, |b, &n| {
            // Band graph: each left accepts 8 nearby rights.
            let mut graph = BipartiteGraph::new(n, n);
            for l in 0..n {
                for d in 0..8 {
                    graph.add_edge(l, (l + d) % n);
                }
            }
            b.iter(|| {
                let m = hopcroft_karp(&graph);
                assert_eq!(m.size, n);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
