//! E9 — expiry machinery cost: pruning a table with many expired
//! promises, and the per-operation overhead of the lazy expiry check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

use promises_core::{ManualClock, PoolSchema, Predicate, PromiseManager, PromiseRequestSpec};
use promises_rm::ResourceManager;

fn pm_with_expired(n: usize) -> (PromiseManager, Arc<ManualClock>) {
    let clock = Arc::new(ManualClock::new());
    let pm = PromiseManager::new(
        Arc::new(ResourceManager::new()),
        Arc::clone(&clock) as Arc<dyn promises_core::Clock>,
    );
    pm.register_pool(PoolSchema::quantity("p"));
    pm.seed_quantity("p", n as u64 + 1).expect("seed");
    for i in 0..n {
        pm.request(
            PromiseRequestSpec::new(
                promises_core::RequestId(format!("e-{i}")),
                promises_core::ClientId("bench".into()),
            )
            .predicate(Predicate::qty_at_least("p", 1))
            .duration_ms(10),
        )
        .expect("rm ok");
    }
    clock.advance(1_000); // all expired
    (pm, clock)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_expiry");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(200));
    for n in [100usize, 1_000] {
        g.bench_with_input(BenchmarkId::new("prune_expired", n), &n, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let (pm, _clock) = pm_with_expired(n);
                    let start = std::time::Instant::now();
                    let reaped = pm.prune_expired().expect("prune");
                    total += start.elapsed();
                    assert_eq!(reaped, n);
                }
                total
            });
        });
    }
    g.bench_function("lazy check with nothing expired", |b| {
        let (pm, _clock) = pm_with_expired(0);
        b.iter(|| pm.prune_expired().expect("prune"));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
