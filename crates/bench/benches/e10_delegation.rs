//! E10 — delegation: grant+release latency through chains of upstream
//! promise managers (the §5 merchant → distributor pattern).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use promises_bench::setup::delegation_chain;
use promises_core::{Predicate, PromiseRequestSpec};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_delegation");
    g.sample_size(30);
    for depth in [0usize, 1, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("grant+release", depth),
            &depth,
            |b, &depth| {
                let front = delegation_chain("stock", depth, u64::MAX / 4);
                let mut n = 0u64;
                b.iter(|| {
                    n += 1;
                    let id = front
                        .request(
                            PromiseRequestSpec::new(
                                promises_core::RequestId(format!("d-{n}")),
                                promises_core::ClientId("bench".into()),
                            )
                            .predicate(Predicate::qty_at_least("stock", 1)),
                        )
                        .expect("rm ok")
                        .decision
                        .granted_id()
                        .expect("ample");
                    front.release(id).expect("release");
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
