//! E4 — hotspot contention: wall time of the same workload under each
//! isolation mechanism. Lock-based reservations serialise the hotspot
//! (flat throughput); promises/escrow/optimistic overlap think time.
//!
//! The run ends with E4b: the promise manager's footprint-scoped locking
//! against its global-sync-point baseline on a perfectly disjoint
//! workload (each client pinned to its own pool, zero think time). The
//! comparison is written to `BENCH_contention.json` at the repo root.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use promises_bench::exp::{e4_config, e4_disjoint_compare, run_system, ModeReport, System};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_contention");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(200));
    let cfg = e4_config(8, 10);
    for sys in System::ALL {
        g.bench_with_input(BenchmarkId::new("workload", sys.name()), &sys, |b, &sys| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += run_system(sys, &cfg, 1_000_000).wall;
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

const CLIENTS: usize = 8;
const OPS_PER_CLIENT: usize = 400;
const POOL_QTY: u64 = 1_000_000;
/// Long-lived promises held against every pool for the whole run — the
/// paper's long-running operations. The global baseline re-checks all of
/// them after every action; footprint scoping re-checks one pool's worth.
const STANDING_PER_POOL: usize = 50;
const SAMPLES: usize = 5;

fn mode_json(r: &ModeReport) -> String {
    format!(
        concat!(
            "{{\"mode\": \"{}\", \"wall_s\": {:.6}, \"throughput_ops_per_s\": {:.1}, ",
            "\"completed\": {}, \"deadlocks\": {}, \"deadlock_retries\": {}}}"
        ),
        r.mode,
        r.report.wall.as_secs_f64(),
        r.report.throughput,
        r.report.completed,
        r.report.deadlocks,
        r.deadlock_retries,
    )
}

/// Runs the E4b disjoint-pool comparison and writes BENCH_contention.json.
fn emit_contention_json() {
    // Median-of-N to damp scheduler noise; each sample runs both modes on
    // identical (deterministic) operation streams.
    let mut samples: Vec<(ModeReport, ModeReport)> = (0..SAMPLES)
        .map(|_| e4_disjoint_compare(CLIENTS, OPS_PER_CLIENT, POOL_QTY, STANDING_PER_POOL))
        .collect();
    samples.sort_by(|a, b| {
        let ra = a.1.report.throughput / a.0.report.throughput.max(f64::MIN_POSITIVE);
        let rb = b.1.report.throughput / b.0.report.throughput.max(f64::MIN_POSITIVE);
        ra.total_cmp(&rb)
    });
    let (global, footprint) = samples[SAMPLES / 2];
    let speedup = footprint.report.throughput / global.report.throughput.max(f64::MIN_POSITIVE);

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e4b_disjoint_pool_contention\",\n",
            "  \"description\": \"promise-manager throughput on disjoint pools: ",
            "footprint-scoped locking vs global sync point (median of {} runs)\",\n",
            "  \"clients\": {},\n",
            "  \"pools\": {},\n",
            "  \"ops_per_client\": {},\n",
            "  \"standing_promises_per_pool\": {},\n",
            "  \"think_ms\": 0,\n",
            "  \"global\": {},\n",
            "  \"footprint\": {},\n",
            "  \"speedup\": {:.2}\n",
            "}}\n"
        ),
        SAMPLES,
        CLIENTS,
        CLIENTS,
        OPS_PER_CLIENT,
        STANDING_PER_POOL,
        mode_json(&global),
        mode_json(&footprint),
        speedup,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_contention.json");
    std::fs::write(path, &json).expect("write BENCH_contention.json");
    println!("e4_contention/disjoint: global {:.0} ops/s, footprint {:.0} ops/s, speedup {speedup:.2}x -> {path}",
        global.report.throughput, footprint.report.throughput);
}

fn main() {
    benches();
    emit_contention_json();
}
