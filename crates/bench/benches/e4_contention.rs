//! E4 — hotspot contention: wall time of the same workload under each
//! isolation mechanism. Lock-based reservations serialise the hotspot
//! (flat throughput); promises/escrow/optimistic overlap think time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use promises_bench::exp::{e4_config, run_system, System};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_contention");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(200));
    let cfg = e4_config(8, 10);
    for sys in System::ALL {
        g.bench_with_input(
            BenchmarkId::new("workload", sys.name()),
            &sys,
            |b, &sys| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += run_system(sys, &cfg, 1_000_000).wall;
                    }
                    total
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
