//! E1 / Figure 1 — latency of the promise-protected ordering process:
//! promise 5 widgets, purchase under the promise, release atomically.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use promises_bench::exp::figure1_once;
use promises_bench::setup::merchant_with_stock;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure1_ordering");
    g.sample_size(30);
    g.bench_function("promise+purchase+release", |b| {
        let merchant = merchant_with_stock("widgets", u64::MAX / 2);
        b.iter(|| figure1_once(black_box(&merchant)));
    });
    // Baseline for comparison: the same flow without any promise.
    g.bench_function("unprotected purchase only", |b| {
        let merchant = merchant_with_stock("widgets", u64::MAX / 2);
        let pm = merchant.manager();
        b.iter(|| {
            pm.execute(&promises_core::Environment::none(), |rm, txn| {
                rm.update(txn, promises_core::Catalog::QTY_TABLE, "widgets", |r| {
                    let q = r.int("qty").unwrap();
                    r.set("qty", q - 5);
                })
                .map_err(promises_core::ActionError::from)
            })
            .unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
