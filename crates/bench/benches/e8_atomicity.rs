//! E8 — cost of the atomic release+action unit vs the naive two-step
//! (release, then act) on an uncontended manager. The *correctness* race
//! (what the naive form loses under contention) is shown by
//! `bin/experiments e8`.

use criterion::{criterion_group, criterion_main, Criterion};

use promises_bench::setup::pm_with_qty_pool;
use promises_core::{ActionError, Catalog, Environment, Predicate, PromiseRequestSpec};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_atomicity");
    g.sample_size(30);
    let take = |pm: &promises_core::PromiseManager, env: &Environment| {
        pm.execute(env, |rm, txn| {
            rm.update(txn, Catalog::QTY_TABLE, "unit", |r| {
                let q = r.int("qty").unwrap_or(0);
                r.set("qty", q - 1);
            })
            .map_err(ActionError::from)
        })
        .expect("uncontended");
    };
    g.bench_function("atomic release+action", |b| {
        let pm = pm_with_qty_pool("unit", u64::MAX / 4);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let p = pm
                .request(
                    PromiseRequestSpec::new(
                        promises_core::RequestId(format!("a-{n}")),
                        promises_core::ClientId("bench".into()),
                    )
                    .predicate(Predicate::qty_at_least("unit", 1)),
                )
                .expect("rm ok")
                .decision
                .granted_id()
                .expect("ample");
            take(&pm, &Environment::none().releasing(p));
        });
    });
    g.bench_function("naive release then action", |b| {
        let pm = pm_with_qty_pool("unit", u64::MAX / 4);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let p = pm
                .request(
                    PromiseRequestSpec::new(
                        promises_core::RequestId(format!("n-{n}")),
                        promises_core::ClientId("bench".into()),
                    )
                    .predicate(Predicate::qty_at_least("unit", 1)),
                )
                .expect("rm ok")
                .decision
                .granted_id()
                .expect("ample");
            pm.release(p).expect("release");
            take(&pm, &Environment::none());
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
