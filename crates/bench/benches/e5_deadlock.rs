//! E5 — multi-resource operations with opposite acquisition orders:
//! wall time of the deadlock-prone lock workload vs the non-blocking
//! promise workload (deadlock *counts* are in `bin/experiments e5`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use promises_bench::exp::{e5_config, run_system, System};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_deadlock");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(200));
    let cfg = e5_config(8, 10);
    for sys in [System::Locks, System::Promises] {
        g.bench_with_input(
            BenchmarkId::new("multi-pool", sys.name()),
            &sys,
            |b, &sys| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += run_system(sys, &cfg, 1_000_000).wall;
                    }
                    total
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
