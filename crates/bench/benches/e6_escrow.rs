//! E6 — escrow vs promises on anonymous quantities: per-operation cost of
//! the reserve+consume cycle for the specialised escrow counter and the
//! general promise manager (admission equivalence is shown by
//! `bin/experiments e6`).

use criterion::{criterion_group, criterion_main, Criterion};

use promises_baselines::{EscrowReserver, QtyReserver};
use promises_rm::ResourceManager;
use promises_sim::{promise_reserver, seed_pools};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_escrow");
    g.sample_size(30);
    g.bench_function("escrow reserve+consume", |b| {
        let rm = Arc::new(ResourceManager::new());
        seed_pools(&rm, 1, u64::MAX / 4);
        let r = EscrowReserver::new(rm);
        b.iter(|| {
            let t = r.reserve("pool-0", 3).expect("ample");
            r.consume(t).expect("consume");
        });
    });
    g.bench_function("promise reserve+consume", |b| {
        let r = promise_reserver(1, u64::MAX / 4);
        b.iter(|| {
            let t = r.reserve("pool-0", 3).expect("ample");
            r.consume(t).expect("consume");
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
