//! E3 — promise-check cost per grant+release cycle, as a function of the
//! number of live promises in the table and the resource view used
//! (anonymous quantity sum / named uniqueness / property matching).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use promises_bench::exp::{e3_check_cost, View};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_check_cost");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    // The large-table sweep lives in `bin/experiments e3`; the bench
    // keeps sizes small so `cargo bench --workspace` stays fast.
    for live in [10usize, 100] {
        for (name, view, inner) in [
            ("anonymous", View::Anonymous, 50usize),
            ("named", View::Named, 20),
            ("property", View::Property, 5),
        ] {
            g.bench_with_input(BenchmarkId::new(name, live), &live, |b, &live| {
                // e3_check_cost builds the table then times `inner` cycles;
                // Criterion wraps the whole preparation+measurement, so use
                // iter_custom to report only the measured mean.
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let us = e3_check_cost(view, live, inner);
                        total += Duration::from_nanos((us * 1_000.0) as u64);
                    }
                    total
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
