//! E2 / Figure 2 — one full wire round trip through the prototype
//! pipeline: XML envelope → bus → gateway → promise manager →
//! application → RM → reply envelope. The §6 combined form (promise
//! request + action under it + release) is exercised per iteration.

use criterion::{criterion_group, criterion_main, Criterion};

use promises_bench::exp::{build_pipeline, pipeline_roundtrip};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure2_pipeline");
    g.sample_size(30);
    g.bench_function("combined envelope roundtrip", |b| {
        let (bus, _pm) = build_pipeline(u64::MAX / 2);
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            assert!(pipeline_roundtrip(&bus, id));
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
