//! E13 — cluster throughput scaling vs shard count.
//!
//! Each shard node is modeled as a single-threaded server with a fixed
//! per-message service time, so cluster throughput scales with node count
//! the way adding machines would. The full scaling table and the fault /
//! crash-restart gates live in the experiments binary (`--cluster`),
//! which writes `BENCH_cluster.json`; this bench tracks the two anchor
//! points of the curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use promises_bench::exp::e13_cluster_scaling;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_cluster");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(200));
    for shards in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("grant_release", format!("shards-{shards}")),
            &shards,
            |b, &shards| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let row = e13_cluster_scaling(shards, 8, 50);
                        total += Duration::from_secs_f64(400.0 / row.throughput.max(1.0));
                    }
                    total
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
