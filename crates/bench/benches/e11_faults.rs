//! E11 — fault sweep: goodput and guarantee audits vs injected fault rate.
//!
//! Drives the full wire pipeline (retrying client → faulty bus → gateway →
//! journalled promise manager → fault-hooked RM) at increasing fault rates
//! and writes `BENCH_faults.json` at the repo root: goodput, retry
//! amplification, and — the point of the experiment — the violation and
//! double-grant audits, which must be exactly zero at every rate.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use promises_bench::exp::{e11_fault_sweep, E11Row};

const CLIENTS: usize = 4;
const OPS_PER_CLIENT: usize = 50;
const RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_faults");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(200));
    for rate in [0.0, 0.10] {
        g.bench_with_input(
            BenchmarkId::new("sweep", format!("rate-{rate}")),
            &rate,
            |b, &rate| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += e11_fault_sweep(&[rate], CLIENTS, 20)[0].report.elapsed;
                    }
                    total
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);

fn row_json(row: &E11Row) -> String {
    let r = &row.report;
    format!(
        concat!(
            "{{\"fault_rate\": {:.2}, \"goodput_ops_per_s\": {:.1}, ",
            "\"granted\": {}, \"purchased\": {}, \"already_applied\": {}, ",
            "\"gave_up\": {}, \"killed\": {}, \"retries\": {}, \"deduped\": {}, ",
            "\"requests_dropped\": {}, \"replies_dropped\": {}, \"duplicates\": {}, ",
            "\"storage_faults\": {}, ",
            "\"violations\": {}, \"double_grants\": {}, \"leaked_after_reap\": {}}}"
        ),
        row.rate,
        row.goodput,
        r.granted,
        r.purchased_ops,
        r.already_applied,
        r.gave_up,
        r.killed,
        r.retries,
        r.deduped,
        r.faults.requests_dropped,
        r.faults.replies_dropped,
        r.faults.duplicates,
        r.faults.storage_faults,
        r.violations,
        r.double_grants,
        r.live_after_reap,
    )
}

/// Runs the full sweep and writes BENCH_faults.json.
fn emit_faults_json() {
    let rows = e11_fault_sweep(&RATES, CLIENTS, OPS_PER_CLIENT);
    let violations: u64 = rows.iter().map(|r| r.report.violations).sum();
    let double_grants: u64 = rows.iter().map(|r| r.report.double_grants).sum();
    assert_eq!(violations, 0, "promise violations under faults");
    assert_eq!(double_grants, 0, "double-granted retried requests");

    let body: Vec<String> = rows
        .iter()
        .map(|r| format!("    {}", row_json(r)))
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e11_fault_sweep\",\n",
            "  \"description\": \"grant->purchase goodput and guarantee audits vs injected ",
            "fault rate (message drop/duplicate/delay and RM storage errors, all at the row rate)\",\n",
            "  \"clients\": {},\n",
            "  \"ops_per_client\": {},\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"total_violations\": {},\n",
            "  \"total_double_grants\": {}\n",
            "}}\n"
        ),
        CLIENTS,
        OPS_PER_CLIENT,
        body.join(",\n"),
        violations,
        double_grants,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(path, &json).expect("write BENCH_faults.json");
    let top = rows.last().expect("rates non-empty");
    println!(
        "e11_faults: {} rates, worst-case goodput {:.0} ops/s at rate {:.2}, violations {violations}, double grants {double_grants} -> {path}",
        rows.len(),
        top.goodput,
        top.rate,
    );
}

fn main() {
    benches();
    emit_faults_json();
}
