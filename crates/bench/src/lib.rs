//! `promises-bench` — experiment implementations for the evaluation in
//! DESIGN.md / EXPERIMENTS.md.
//!
//! Each experiment is a plain function returning result rows so that the
//! Criterion benches (`benches/`) and the table generator
//! (`src/bin/experiments.rs`) share one implementation. See DESIGN.md §4
//! for the experiment index (E1/Figure 1 … E10).

#![warn(missing_docs)]

pub mod exp;
pub mod setup;
pub mod table;
