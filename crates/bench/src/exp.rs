//! Experiment implementations (E1/Figure 1 … E10). See DESIGN.md §4.

use std::sync::Arc;
use std::time::{Duration, Instant};

use promises_baselines::{EscrowReserver, LockReserver, OptimisticReserver};
use promises_core::{
    ActionError, Catalog, CheckStrategy, Environment, LockingMode, ManualClock, PoolSchema,
    Predicate, PromiseJournal, PromiseManager, PromiseRequestSpec, PropExpr,
};
use promises_faults::FaultScenario;
use promises_rm::ResourceManager;
use promises_services::Merchant;
use promises_sim::{
    pool_name, promise_reserver, promise_reserver_with_mode, run_fault_sweep_with, run_obs_sweep,
    run_qty_workload, seed_pools, FaultRunReport, FaultSweepConfig, ObsReport, RunReport,
    WorkloadConfig,
};
use promises_telemetry::Telemetry;
use promises_wire::{
    ActionRequest, EnvEntry, EnvRef, Envelope, EnvironmentHeader, InMemoryBus, PromiseGateway,
    PromiseRequestHeader,
};

/// Measures mean wall time per iteration of `f`, in microseconds.
pub fn mean_us(iters: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_micros() as f64 / iters.max(1) as f64
}

// ======================================================================
// E1 / Figure 1 — the ordering process
// ======================================================================

/// One full Figure 1 cycle: promise 5 widgets, purchase them, release.
pub fn figure1_once(merchant: &Merchant) {
    let p = merchant
        .reserve_stock("bench", "widgets", 5, 60_000)
        .expect("rm ok")
        .expect("stock ample");
    merchant
        .purchase(p, "bench", "widgets", 5)
        .expect("purchase ok");
}

/// Figure 1 latency: mean microseconds per promise+purchase cycle.
pub fn e1_figure1(iters: usize) -> f64 {
    let merchant = crate::setup::merchant_with_stock("widgets", (iters as u64 + 1) * 5);
    mean_us(iters, || figure1_once(&merchant))
}

// ======================================================================
// E2 / Figure 2 — wire pipeline throughput
// ======================================================================

/// Builds the Figure 2 pipeline (gateway + bus) over one widget pool.
pub fn build_pipeline(stock: u64) -> (Arc<InMemoryBus>, Arc<PromiseManager>) {
    let pm = crate::setup::pm_with_qty_pool("widgets", stock);
    let gateway = Arc::new(PromiseGateway::new(Arc::clone(&pm)));
    gateway.register_handler(
        "merchant",
        "purchase",
        Arc::new(|rm, txn, action| {
            let qty: i64 = action
                .get("qty")
                .and_then(|v| v.parse().ok())
                .ok_or(ActionError::App("missing qty".into()))?;
            rm.update(txn, Catalog::QTY_TABLE, "widgets", |r| {
                let q = r.int("qty").unwrap_or(0);
                r.set("qty", q - qty);
            })?;
            Ok(vec![])
        }),
    );
    let bus = Arc::new(InMemoryBus::new());
    bus.register("gateway", gateway);
    (bus, pm)
}

/// One §6 combined envelope: promise + purchase-under-it + release.
pub fn pipeline_roundtrip(bus: &InMemoryBus, id: u64) -> bool {
    let envelope = Envelope::new()
        .with_promise_request(PromiseRequestHeader {
            request_id: format!("r{id}"),
            client: "bench".into(),
            predicates: vec!["qty('widgets') >= 1".into()],
            duration_ms: 60_000,
            exchange: vec![],
            negotiate: false,
            prepare: false,
        })
        .with_environment(EnvironmentHeader {
            entries: vec![EnvEntry {
                reference: EnvRef::Correlation(format!("r{id}")),
                release_after: true,
            }],
        })
        .with_action(ActionRequest::new("merchant", "purchase").param("qty", 1));
    let reply = bus.send("gateway", &envelope).expect("bus delivery");
    reply.action_response.map(|a| a.ok).unwrap_or(false)
}

/// E2 row: `clients` concurrent clients each sending `ops` combined
/// envelopes; returns (throughput ops/s, ok-fraction).
pub fn e2_pipeline(clients: usize, ops: usize) -> (f64, f64) {
    let (bus, _pm) = build_pipeline((clients * ops) as u64 + 10);
    let start = Instant::now();
    let ok: u64 = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let bus = Arc::clone(&bus);
            handles.push(scope.spawn(move || {
                let mut ok = 0u64;
                for i in 0..ops {
                    if pipeline_roundtrip(&bus, (c * ops + i) as u64) {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    let wall = start.elapsed().as_secs_f64();
    let total = (clients * ops) as f64;
    (total / wall, ok as f64 / total)
}

// ======================================================================
// E3 — promise-check cost by resource view and table size
// ======================================================================

/// Resource view under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum View {
    /// Quantity pool (anonymous).
    Anonymous,
    /// Named instances.
    Named,
    /// Property expressions (matching).
    Property,
}

/// Prepares a manager holding `live` promises of the given view, then
/// returns mean microseconds per additional grant+release cycle.
pub fn e3_check_cost(view: View, live: usize, iters: usize) -> f64 {
    match view {
        View::Anonymous => {
            let pm = crate::setup::pm_with_qty_pool("p", (live + 2) as u64);
            for i in 0..live {
                let r = pm
                    .request(
                        PromiseRequestSpec::new(
                            promises_core::RequestId(format!("pre-{i}")),
                            promises_core::ClientId("bench".into()),
                        )
                        .predicate(Predicate::qty_at_least("p", 1)),
                    )
                    .expect("rm ok");
                assert!(r.decision.is_granted());
            }
            grant_release_us(&pm, Predicate::qty_at_least("p", 1), iters)
        }
        View::Named => {
            let pm = crate::setup::pm_with_rooms("p", live + 2, CheckStrategy::TentativeAllocation);
            for i in 0..live {
                let r = pm
                    .request(
                        PromiseRequestSpec::new(
                            promises_core::RequestId(format!("pre-{i}")),
                            promises_core::ClientId("bench".into()),
                        )
                        .predicate(Predicate::named("p", format!("room-{i:05}").as_str())),
                    )
                    .expect("rm ok");
                assert!(r.decision.is_granted());
            }
            grant_release_us(
                &pm,
                Predicate::named("p", format!("room-{live:05}").as_str()),
                iters,
            )
        }
        View::Property => {
            // 2x headroom so the extra grant always succeeds.
            let pm =
                crate::setup::pm_with_rooms("p", live * 2 + 4, CheckStrategy::TentativeAllocation);
            for i in 0..live {
                let r = pm
                    .request(
                        PromiseRequestSpec::new(
                            promises_core::RequestId(format!("pre-{i}")),
                            promises_core::ClientId("bench".into()),
                        )
                        .predicate(Predicate::property(
                            "p",
                            PropExpr::eq("floor", ((i / 2) % ((live * 2 + 4) / 20).max(1)) as i64),
                            1,
                        )),
                    )
                    .expect("rm ok");
                assert!(r.decision.is_granted(), "precondition grant {i}");
            }
            grant_release_us(
                &pm,
                Predicate::property("p", PropExpr::eq("view", true), 1),
                iters,
            )
        }
    }
}

fn grant_release_us(pm: &PromiseManager, predicate: Predicate, iters: usize) -> f64 {
    let mut n = 0u64;
    mean_us(iters, || {
        n += 1;
        let resp = pm
            .request(
                PromiseRequestSpec::new(
                    promises_core::RequestId(format!("bench-{n}")),
                    promises_core::ClientId("bench".into()),
                )
                .predicate(predicate.clone()),
            )
            .expect("rm ok");
        let id = resp
            .decision
            .granted_id()
            .expect("headroom guarantees grant");
        pm.release(id).expect("release");
    })
}

// ======================================================================
// E4 — contention comparison (promises vs 2PL vs optimistic vs escrow)
// ======================================================================

/// Systems compared by E4/E5/E6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Long-held 2PL locks.
    Locks,
    /// Unprotected check-then-act.
    Optimistic,
    /// Escrow counters.
    Escrow,
    /// The promise manager.
    Promises,
}

impl System {
    /// All four systems.
    pub const ALL: [System; 4] = [
        System::Locks,
        System::Optimistic,
        System::Escrow,
        System::Promises,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            System::Locks => "locks-2pl",
            System::Optimistic => "optimistic",
            System::Escrow => "escrow",
            System::Promises => "promises",
        }
    }
}

/// Runs `cfg` over the chosen system with `qty` units per pool.
pub fn run_system(system: System, cfg: &WorkloadConfig, qty: u64) -> RunReport {
    match system {
        System::Locks => {
            let rm = Arc::new(ResourceManager::new());
            seed_pools(&rm, cfg.pools, qty);
            run_qty_workload(Arc::new(LockReserver::new(rm)), cfg)
        }
        System::Optimistic => {
            let rm = Arc::new(ResourceManager::new());
            seed_pools(&rm, cfg.pools, qty);
            run_qty_workload(Arc::new(OptimisticReserver::new(rm)), cfg)
        }
        System::Escrow => {
            let rm = Arc::new(ResourceManager::new());
            seed_pools(&rm, cfg.pools, qty);
            run_qty_workload(Arc::new(EscrowReserver::new(rm)), cfg)
        }
        System::Promises => run_qty_workload(Arc::new(promise_reserver(cfg.pools, qty)), cfg),
    }
}

/// E4 workload: hotspot contention with think time.
pub fn e4_config(clients: usize, ops: usize) -> WorkloadConfig {
    WorkloadConfig {
        clients,
        ops_per_client: ops,
        pools: 4,
        hotspot_probability: 0.7,
        zipf_exponent: 0.0,
        amount_max: 3,
        think: Duration::from_millis(2),
        real_time_think: true,
        abandon_probability: 0.1,
        multi_pool: false,
        pinned_pools: false,
        seed: 2007,
    }
}

/// E4b workload: each client pinned to its own pool, zero think time —
/// the all-parallelisable shape where a global promise-manager sync
/// point is pure overhead and footprint scoping should win outright.
pub fn e4_disjoint_config(clients: usize, ops: usize) -> WorkloadConfig {
    WorkloadConfig {
        clients,
        ops_per_client: ops,
        pools: clients,
        hotspot_probability: 0.0,
        zipf_exponent: 0.0,
        amount_max: 2,
        think: Duration::ZERO,
        real_time_think: true,
        abandon_probability: 0.0,
        multi_pool: false,
        pinned_pools: true,
        seed: 2007,
    }
}

/// One locking mode's result on the E4b disjoint workload.
#[derive(Debug, Clone, Copy)]
pub struct ModeReport {
    /// `LockingMode` name as it should appear in reports.
    pub mode: &'static str,
    /// Full workload run.
    pub report: RunReport,
    /// Deadlock retries absorbed inside the promise manager.
    pub deadlock_retries: u64,
}

/// Runs the promise system on `cfg` under an explicit locking mode.
///
/// `standing_per_pool` long-lived promises are granted against every pool
/// before the clocks start — the paper's long-running operations holding
/// guarantees while short operations stream past. Every one of them must
/// survive each post-action re-check, so the standing set is what the
/// incremental checker avoids re-scanning.
pub fn run_promises_with_mode(
    cfg: &WorkloadConfig,
    qty: u64,
    standing_per_pool: usize,
    mode: LockingMode,
) -> ModeReport {
    run_promises_with_mode_telemetry(cfg, qty, standing_per_pool, mode, None)
}

/// [`run_promises_with_mode`] with an optional telemetry registry attached
/// to the manager and its RM — the E12 overhead probe runs the same
/// workload twice, differing only in this argument.
pub fn run_promises_with_mode_telemetry(
    cfg: &WorkloadConfig,
    qty: u64,
    standing_per_pool: usize,
    mode: LockingMode,
    telemetry: Option<Arc<Telemetry>>,
) -> ModeReport {
    let reserver = Arc::new(promise_reserver_with_mode(cfg.pools, qty, mode));
    let pm = Arc::clone(reserver.manager());
    if let Some(tel) = telemetry {
        pm.rm().set_telemetry(Some(Arc::clone(&tel)));
        pm.set_telemetry(Some(tel));
    }
    for pool in 0..cfg.pools {
        for k in 0..standing_per_pool {
            pm.request(
                PromiseRequestSpec::new(format!("standing-{pool}-{k}").as_str(), "bench")
                    .predicate(Predicate::qty_at_least(pool_name(pool).as_str(), 1))
                    .duration_ms(3_600_000),
            )
            .expect("standing grant")
            .decision
            .granted_id()
            .expect("ample stock");
        }
    }
    let report = run_qty_workload(reserver, cfg);
    ModeReport {
        mode: match mode {
            LockingMode::Global => "global",
            LockingMode::Footprint => "footprint",
        },
        report,
        deadlock_retries: pm.metrics().deadlock_retries,
    }
}

/// E4b: footprint-scoped vs global locking on the disjoint workload,
/// with `standing_per_pool` long-lived promises held against every pool.
/// Returns `(global, footprint)`.
pub fn e4_disjoint_compare(
    clients: usize,
    ops: usize,
    qty: u64,
    standing_per_pool: usize,
) -> (ModeReport, ModeReport) {
    let cfg = e4_disjoint_config(clients, ops);
    let global = run_promises_with_mode(&cfg, qty, standing_per_pool, LockingMode::Global);
    let footprint = run_promises_with_mode(&cfg, qty, standing_per_pool, LockingMode::Footprint);
    (global, footprint)
}

/// E5 workload: multi-pool operations with opposite acquisition orders.
pub fn e5_config(clients: usize, ops: usize) -> WorkloadConfig {
    WorkloadConfig {
        clients,
        ops_per_client: ops,
        pools: 3,
        hotspot_probability: 0.3,
        zipf_exponent: 0.0,
        amount_max: 2,
        think: Duration::from_millis(1),
        real_time_think: true,
        abandon_probability: 0.0,
        multi_pool: true,
        pinned_pools: false,
        seed: 2007,
    }
}

/// E6 workload: scarce stock so admission control is the discriminator.
pub fn e6_config(clients: usize, ops: usize) -> WorkloadConfig {
    WorkloadConfig {
        clients,
        ops_per_client: ops,
        pools: 1,
        hotspot_probability: 1.0,
        zipf_exponent: 0.0,
        amount_max: 4,
        think: Duration::from_millis(2),
        real_time_think: true,
        abandon_probability: 0.0,
        multi_pool: false,
        pinned_pools: false,
        seed: 2007,
    }
}

// ======================================================================
// E7 — property-view strategies: acceptance and cost
// ======================================================================

/// Result of the E7 adversarial grant sequence.
#[derive(Debug, Clone, Copy)]
pub struct E7Outcome {
    /// Requests granted.
    pub granted: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Mean microseconds per request.
    pub mean_us: f64,
}

/// Runs the adversarial sequence against a pool of `rooms` rooms using
/// `strategy`: alternating broad ("view") and narrow ("floor == f")
/// requests. Every request in the sequence is jointly satisfiable, so a
/// perfect strategy grants all of them; allocate-on-grant-without-
/// re-arrangement does not.
pub fn e7_strategy(rooms: usize, strategy: CheckStrategy) -> E7Outcome {
    let pm = crate::setup::pm_with_rooms("p", rooms, strategy);
    // Per 20-room floor there are 6-7 view rooms (i % 3 == 0). Request
    // one view room then the whole remainder of the same floor; the view
    // request must be steered off that floor for everything to fit.
    let floors = rooms / 20;
    let mut granted = 0usize;
    let mut rejected = 0usize;
    let mut n = 0u64;
    let start = Instant::now();
    // Only even floors are demanded wholesale, so steering every broad
    // "view" grant onto an odd floor keeps the entire sequence jointly
    // satisfiable at any pool size.
    for floor in (0..floors.saturating_sub(1)).step_by(2) {
        let mut ask = |pred: Predicate| {
            n += 1;
            let resp = pm
                .request(
                    PromiseRequestSpec::new(
                        promises_core::RequestId(format!("e7-{n}")),
                        promises_core::ClientId("bench".into()),
                    )
                    .predicate(pred),
                )
                .expect("rm ok");
            if resp.decision.is_granted() {
                granted += 1;
            } else {
                rejected += 1;
            }
        };
        // Broad request first: any view room anywhere.
        ask(Predicate::property("p", PropExpr::eq("view", true), 1));
        // Then demand EVERY room on this floor (20 of them): feasible only
        // if earlier broad grants were not pinned to this floor.
        ask(Predicate::property(
            "p",
            PropExpr::eq("floor", floor as i64),
            20,
        ));
    }
    let total = granted + rejected;
    E7Outcome {
        granted,
        rejected,
        mean_us: start.elapsed().as_micros() as f64 / total.max(1) as f64,
    }
}

// ======================================================================
// E8 — atomic release+action vs naive two-step
// ======================================================================

/// Outcome counts of the E8 race trials.
#[derive(Debug, Clone, Copy, Default)]
pub struct E8Outcome {
    /// Protected client completed its purchase.
    pub protected_ok: u64,
    /// Protected client lost its resource to the competitor.
    pub protected_lost: u64,
    /// Competitor acquisitions.
    pub competitor_got: u64,
}

/// Runs `trials` races on a 1-unit pool. The protected client holds a
/// promise for the unit and then consumes it either atomically
/// (release-with-action, §4) or naively (release, *then* act). A
/// competitor thread hammers promise requests for the same unit. With the
/// atomic form the protected client can never lose; with the naive form
/// the competitor can steal the unit between release and action.
pub fn e8_race(trials: usize, atomic: bool) -> E8Outcome {
    let mut out = E8Outcome::default();
    for trial in 0..trials {
        let pm = crate::setup::pm_with_qty_pool("unit", 1);
        let p = pm
            .request(
                PromiseRequestSpec::new(
                    promises_core::RequestId(format!("hold-{trial}")),
                    promises_core::ClientId("protected".into()),
                )
                .predicate(Predicate::qty_at_least("unit", 1)),
            )
            .expect("rm ok")
            .decision
            .granted_id()
            .expect("unit free");

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let competitor = {
            let pm = Arc::clone(&pm);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut got = 0u64;
                let mut n = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    n += 1;
                    let resp = pm
                        .request(
                            PromiseRequestSpec::new(
                                promises_core::RequestId(format!("steal-{n}")),
                                promises_core::ClientId("competitor".into()),
                            )
                            .predicate(Predicate::qty_at_least("unit", 1)),
                        )
                        .expect("rm ok");
                    if let Some(id) = resp.decision.granted_id() {
                        got += 1;
                        // Competitor immediately consumes the unit.
                        let _ = pm.execute(&Environment::none().releasing(id), |rm, txn| {
                            rm.update(txn, Catalog::QTY_TABLE, "unit", |r| {
                                let q = r.int("qty").unwrap_or(0);
                                r.set("qty", q - 1);
                            })
                            .map_err(ActionError::from)
                        });
                    }
                }
                got
            })
        };

        let take_unit = |env: &Environment| {
            pm.execute(env, |rm, txn| {
                let q = rm
                    .get(txn, Catalog::QTY_TABLE, "unit")
                    .map_err(ActionError::from)?
                    .and_then(|r| r.int("qty"))
                    .unwrap_or(0);
                if q < 1 {
                    return Err(ActionError::App("unit already gone".into()));
                }
                rm.update(txn, Catalog::QTY_TABLE, "unit", |r| {
                    r.set("qty", q - 1);
                })
                .map_err(ActionError::from)
            })
        };

        // Give the competitor a moment to start hammering.
        std::thread::sleep(Duration::from_micros(200));
        let result = if atomic {
            take_unit(&Environment::none().releasing(p))
        } else {
            // Naive two-step: the window between these calls is the race.
            pm.release(p).expect("release");
            std::thread::sleep(Duration::from_micros(200));
            take_unit(&Environment::none())
        };
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let got = competitor.join().expect("competitor");
        out.competitor_got += got;
        match result {
            Ok(()) => out.protected_ok += 1,
            Err(_) => out.protected_lost += 1,
        }
    }
    out
}

// ======================================================================
// E9 — promise duration vs completion and utilisation
// ======================================================================

/// One E9 row: TTL plus outcome fractions.
#[derive(Debug, Clone, Copy)]
pub struct E9Outcome {
    /// Promise TTL (manager-clock ms).
    pub ttl_ms: u64,
    /// Operations that completed under a live promise.
    pub completed: u64,
    /// Operations refused with promise-expired.
    pub expired: u64,
    /// Grants denied to a late second population because capacity was
    /// still promised to abandoned first-population promises.
    pub latecomer_rejections: u64,
}

/// Deterministic TTL study on a manual clock. Population 1: `n` clients
/// obtain a 1-unit promise with the given TTL, work for `think_ms`
/// (clock-advanced), then try to consume; a fraction abandon without
/// releasing. Population 2 arrives afterwards and requests what is left.
pub fn e9_ttl(ttl_ms: u64, n: usize, think_ms: u64, abandon_every: usize) -> E9Outcome {
    let rm = Arc::new(ResourceManager::new());
    let clock = Arc::new(ManualClock::new());
    let pm = PromiseManager::new(rm, Arc::clone(&clock) as _);
    pm.register_pool(PoolSchema::quantity("capacity"));
    pm.seed_quantity("capacity", n as u64).expect("seed");

    let mut out = E9Outcome {
        ttl_ms,
        completed: 0,
        expired: 0,
        latecomer_rejections: 0,
    };

    // Population 1.
    let mut live: Vec<(usize, promises_core::PromiseId)> = Vec::new();
    for i in 0..n {
        let resp = pm
            .request(
                PromiseRequestSpec::new(
                    promises_core::RequestId(format!("p1-{i}")),
                    promises_core::ClientId("pop1".into()),
                )
                .predicate(Predicate::qty_at_least("capacity", 1))
                .duration_ms(ttl_ms),
            )
            .expect("rm ok");
        if let Some(id) = resp.decision.granted_id() {
            live.push((i, id));
        }
    }
    clock.advance(think_ms);
    for (i, id) in live {
        if abandon_every != 0 && i % abandon_every == 0 {
            continue; // walked away without releasing
        }
        let r = pm.execute(&Environment::none().releasing(id), |rm, txn| {
            rm.update(txn, Catalog::QTY_TABLE, "capacity", |rec| {
                let q = rec.int("qty").unwrap_or(0);
                rec.set("qty", q - 1);
            })
            .map_err(ActionError::from)
        });
        match r {
            Ok(()) => out.completed += 1,
            Err(promises_core::PromiseError::PromiseExpired(_)) => out.expired += 1,
            Err(e) => panic!("unexpected: {e}"),
        }
    }

    // Population 2 arrives later (after another 2x think time), when
    // short-TTL abandoned promises have expired but long-TTL ones linger.
    clock.advance(think_ms * 2);
    for i in 0..n / 4 {
        let resp = pm
            .request(
                PromiseRequestSpec::new(
                    promises_core::RequestId(format!("p2-{i}")),
                    promises_core::ClientId("pop2".into()),
                )
                .predicate(Predicate::qty_at_least("capacity", 1))
                .duration_ms(ttl_ms),
            )
            .expect("rm ok");
        if !resp.decision.is_granted() {
            out.latecomer_rejections += 1;
        }
    }
    out
}

// ======================================================================
// E10 — delegation chains
// ======================================================================

/// Mean microseconds per grant+release through a delegation chain of the
/// given depth (0 = local pool only).
pub fn e10_delegation(depth: usize, iters: usize) -> f64 {
    let front = crate::setup::delegation_chain("stock", depth, 1_000_000);
    let mut n = 0u64;
    mean_us(iters, || {
        n += 1;
        let resp = front
            .request(
                PromiseRequestSpec::new(
                    promises_core::RequestId(format!("d-{n}")),
                    promises_core::ClientId("bench".into()),
                )
                .predicate(Predicate::qty_at_least("stock", 1)),
            )
            .expect("rm ok");
        let id = resp.decision.granted_id().expect("ample stock");
        front.release(id).expect("release");
    })
}

// ======================================================================
// E11 — fault sweep: goodput and guarantee audits vs fault rate
// ======================================================================

/// One E11 row: a fault rate and everything measured under it.
#[derive(Debug, Clone, Copy)]
pub struct E11Row {
    /// Message fault rate (drop/duplicate/delay each at this probability)
    /// and RM storage-fault rate.
    pub rate: f64,
    /// The audited run.
    pub report: FaultRunReport,
    /// Confirmed purchases per wall-clock second.
    pub goodput: f64,
    /// Fraction of grant answers served from the manager's
    /// `(client, request-id)` dedup index — rises with the retry rate.
    pub dedup_ratio: Option<f64>,
}

/// Runs the E11 fault sweep: the same grant→purchase workload at each
/// fault rate (messages dropped/duplicated/delayed AND RM storage errors,
/// all at `rate`), auditing promise violations, double grants and leaks
/// after every run. The paper's guarantees require the violation and
/// double-grant columns to be **exactly zero at every rate**.
pub fn e11_fault_sweep(rates: &[f64], clients: usize, ops_per_client: usize) -> Vec<E11Row> {
    rates
        .iter()
        .map(|&rate| {
            let cfg = FaultSweepConfig {
                clients,
                ops_per_client,
                seed: 2007 + (rate * 1000.0) as u64,
                ..FaultSweepConfig::default()
            };
            let scenario = FaultScenario::uniform(cfg.seed, rate).with_storage_errors(rate);
            let (report, harness) = run_fault_sweep_with(scenario, &cfg, None);
            let goodput = report.purchased_ops as f64 / report.elapsed.as_secs_f64().max(1e-9);
            E11Row {
                rate,
                report,
                goodput,
                dedup_ratio: harness.pm.metrics().dedup_ratio(),
            }
        })
        .collect()
}

// ======================================================================
// E12 — observability: instrumented sweep, lifecycle audit, overhead
// ======================================================================

/// Runs the E12 instrumented fault sweep: the E11 workload with one
/// shared telemetry registry attached at every layer (client, bus, PM,
/// RM), audited by the trace-replay lifecycle checker. Message faults
/// fire at `rate`; RM storage faults at a quarter of it.
pub fn e12_obs(seed: u64, rate: f64, clients: usize, ops_per_client: usize) -> ObsReport {
    let cfg = FaultSweepConfig {
        clients,
        ops_per_client,
        seed,
        ..FaultSweepConfig::default()
    };
    let scenario = FaultScenario::uniform(seed, rate).with_storage_errors(rate / 4.0);
    run_obs_sweep(scenario, &cfg)
}

/// E12b result: footprint-mode E4b throughput with and without telemetry.
#[derive(Debug, Clone, Copy)]
pub struct ObsOverhead {
    /// Median round throughput with telemetry disabled (ops/s).
    pub plain: f64,
    /// Median round throughput with a live registry on the PM and RM
    /// (ops/s).
    pub instrumented: f64,
    /// Median of the per-round paired regressions (percent; negative =
    /// the instrumented run of that round happened to be faster).
    pub median_delta_pct: f64,
}

impl ObsOverhead {
    /// Regression of the instrumented runs in percent: the median of the
    /// paired per-round deltas, which cancels machine-load drift that a
    /// single off/on pair (or a best-of comparison) cannot.
    pub fn overhead_pct(&self) -> f64 {
        self.median_delta_pct
    }
}

fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
    xs[xs.len() / 2]
}

/// E12b: telemetry overhead on the E4b disjoint footprint workload — the
/// same config run in interleaved off/on pairs differing only in whether
/// a registry is attached. Each pair yields one paired regression sample;
/// the reported overhead is the median pair, which is robust to the
/// scheduler noise a shared box injects into any single run. The
/// acceptance bar is under 5% regression; the smoke reports rather than
/// gates on this because the noise floor on a loaded box can exceed it.
pub fn e12_overhead(clients: usize, ops: usize, qty: u64, standing_per_pool: usize) -> ObsOverhead {
    let cfg = e4_disjoint_config(clients, ops);
    let run_off = || -> f64 {
        run_promises_with_mode(&cfg, qty, standing_per_pool, LockingMode::Footprint)
            .report
            .throughput
    };
    let run_on = || -> f64 {
        run_promises_with_mode_telemetry(
            &cfg,
            qty,
            standing_per_pool,
            LockingMode::Footprint,
            Some(Telemetry::shared()),
        )
        .report
        .throughput
    };
    // One unmeasured warmup pair: the first run of each variant pays for
    // allocator growth and cache warming that later rounds reuse, which
    // otherwise biases whichever arm happens to run first.
    let _ = run_off();
    let _ = run_on();
    let mut offs = Vec::new();
    let mut ons = Vec::new();
    let mut deltas = Vec::new();
    for round in 0..9 {
        // Alternate which variant runs first so slow drift in machine
        // load (warming caches, background work) cancels out across the
        // pairs instead of biasing one arm.
        let (off, on) = if round % 2 == 0 {
            let off = run_off();
            (off, run_on())
        } else {
            let on = run_on();
            (run_off(), on)
        };
        offs.push(off);
        ons.push(on);
        if off > 0.0 {
            deltas.push((off - on) / off * 100.0);
        }
    }
    ObsOverhead {
        plain: median(&mut offs),
        instrumented: median(&mut ons),
        median_delta_pct: median(&mut deltas),
    }
}

// ======================================================================
// E13 — cluster: shard-count throughput scaling + cross-shard mix
// ======================================================================

/// One E13 row: a shard count and the measured workload outcome.
#[derive(Debug, Clone, Copy)]
pub struct E13Row {
    /// Cluster size.
    pub shards: usize,
    /// Grant+release operations per wall-clock second.
    pub throughput: f64,
    /// Unit grants confirmed.
    pub granted: u64,
    /// Unit rejections.
    pub rejected: u64,
    /// Mean grant latency in microseconds.
    pub mean_grant_us: f64,
}

/// Modeled per-message service time for the E13 scaling runs: each shard
/// node is a single-threaded server costing this much per request, as if
/// it ran on its own machine (see [`promises_cluster::ShardServer`]).
pub const E13_SERVICE_US: u64 = 100;

/// Runs the E13 scaling workload on a `shards`-node cluster: `clients`
/// concurrent clients, each pinned to its own pool (pools spread
/// round-robin, so shard load divides evenly), driving single-shard
/// grant+release cycles through the coordinator's fast path. Every node
/// is modeled as a single-threaded server with a fixed per-message
/// service time, so with one shard the whole offered load funnels
/// through one serialized loop, while N shards serve their pinned
/// clients' requests in parallel — the throughput a real cluster buys by
/// adding machines.
pub fn e13_cluster_scaling(shards: usize, clients: usize, ops_per_client: usize) -> E13Row {
    use promises_cluster::{ClusterDecision, PromiseCluster};
    use std::sync::atomic::{AtomicU64, Ordering};

    let cluster = PromiseCluster::build(shards, 2013);
    cluster.set_service_time_us(E13_SERVICE_US);
    for c in 0..clients {
        cluster.register_quantity_pool(&pool_name(c), 1_000_000);
    }
    let granted = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let cluster = &cluster;
            let granted = &granted;
            let rejected = &rejected;
            scope.spawn(move || {
                let predicates = vec![format!("qty('{}') >= 2", pool_name(c))];
                for op in 0..ops_per_client {
                    let decision = cluster
                        .coordinator
                        .grant(
                            &format!("client-{c}"),
                            &format!("e13-{c}-{op}"),
                            &predicates,
                            3_600_000,
                        )
                        .expect("quiet bus cannot fail");
                    match decision {
                        ClusterDecision::Granted { parts } => {
                            granted.fetch_add(1, Ordering::Relaxed);
                            cluster.coordinator.release(&parts);
                        }
                        ClusterDecision::Rejected { .. } => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let total = (clients * ops_per_client) as f64;
    E13Row {
        shards,
        throughput: total / wall,
        granted: granted.into_inner(),
        rejected: rejected.into_inner(),
        mean_grant_us: wall * 1e6 / total,
    }
}

// ======================================================================
// E14 — recovery time: compacted vs uncompacted journal
// ======================================================================

/// One E14 measurement: the same logical promise state recovered from
/// the full append-only history and from the checkpoint-seeded compacted
/// journal, with the wall time of each replay.
#[derive(Debug, Clone)]
pub struct E14Row {
    /// Grant+release churn cycles driven before measuring.
    pub cycles: usize,
    /// Promises still live (unreleased) when the journal is snapshotted.
    pub live: usize,
    /// Record count of the uncompacted history journal.
    pub history_records: usize,
    /// Record count after `compact()` (checkpoint + nothing else here).
    pub compacted_records: usize,
    /// Mean recovery wall time over the full history, microseconds.
    pub uncompacted_us: f64,
    /// Mean recovery wall time over the compacted journal, microseconds.
    pub compacted_us: f64,
    /// Whether both recoveries reproduce the pre-crash state digest.
    pub digests_match: bool,
}

impl E14Row {
    /// Recovery speedup bought by compaction.
    pub fn speedup(&self) -> f64 {
        self.uncompacted_us / self.compacted_us.max(1e-9)
    }
}

/// A journalled single-pool manager for the E14 churn workload.
fn e14_manager(clock: &Arc<ManualClock>, journal: &Arc<PromiseJournal>) -> Arc<PromiseManager> {
    let rm = Arc::new(ResourceManager::new());
    let pm =
        Arc::new(PromiseManager::new(rm, Arc::clone(clock) as _).with_journal(Arc::clone(journal)));
    pm.register_pool(PoolSchema::quantity("stock"));
    pm.seed_quantity("stock", 1_000_000).expect("seed stock");
    pm
}

/// Mean wall time, in microseconds, to recover a fresh manager from the
/// given journal lines (parse included — that is what restart pays).
fn e14_recovery_us(clock: &Arc<ManualClock>, lines: &[String], iters: usize) -> (f64, String) {
    let mut total_us = 0.0;
    let mut digest = String::new();
    for _ in 0..iters.max(1) {
        let pm = e14_manager(clock, &Arc::new(PromiseJournal::new()));
        let start = Instant::now();
        let journal = Arc::new(PromiseJournal::from_lines(lines).expect("well-formed journal"));
        pm.recover(journal).expect("recovery succeeds");
        total_us += start.elapsed().as_micros() as f64;
        digest = pm.state_digest();
    }
    (total_us / iters.max(1) as f64, digest)
}

/// E14: drives `cycles` grant+release pairs plus `live` retained grants
/// through a journalled manager, then times a cold restart from the full
/// history versus from the compacted journal. History replay is
/// O(cycles); checkpoint replay is O(live) — the bounded-recovery claim
/// of DESIGN.md §14, gated in `--recovery` mode on both the speedup and
/// digest equality.
pub fn e14_recovery(cycles: usize, live: usize, iters: usize) -> E14Row {
    let clock = Arc::new(ManualClock::new());
    let journal = Arc::new(PromiseJournal::new());
    let pm = e14_manager(&clock, &journal);
    let grant = |i: usize, tag: &str| {
        let spec = PromiseRequestSpec::new(format!("e14-{tag}-{i}").as_str(), "bench")
            .predicate(Predicate::qty_at_least("stock", 1))
            .duration_ms(3_600_000);
        pm.request(spec)
            .expect("rm ok")
            .decision
            .granted_id()
            .expect("ample stock")
    };
    for i in 0..cycles {
        let id = grant(i, "churn");
        pm.release(id).expect("release own grant");
    }
    for i in 0..live {
        grant(i, "live");
    }

    let history = journal.lines();
    let reference = pm.state_digest();
    pm.compact()
        .expect("no crash armed")
        .expect("journal attached");
    let compacted = journal.lines();
    drop(pm); // crash

    let (uncompacted_us, history_digest) = e14_recovery_us(&clock, &history, iters);
    let (compacted_us, compacted_digest) = e14_recovery_us(&clock, &compacted, iters);
    E14Row {
        cycles,
        live,
        history_records: history.len(),
        compacted_records: compacted.len(),
        uncompacted_us,
        compacted_us,
        digests_match: history_digest == reference && compacted_digest == reference,
    }
}

// ======================================================================
// E15 — lease locality: hot-pool grants without the coordinator
// ======================================================================

/// One E15 row: the Zipf-skewed workload on a cluster with or without
/// per-shard escrow leases, measured after a rebalance warm-up.
#[derive(Debug, Clone, Copy)]
pub struct E15Row {
    /// Cluster size.
    pub shards: usize,
    /// Whether escrow leases were enabled.
    pub leases: bool,
    /// Grant(+release) operations per wall-clock second, measure phase.
    pub throughput: f64,
    /// Unit grants confirmed in the measure phase.
    pub granted: u64,
    /// Unit rejections in the measure phase.
    pub rejected: u64,
    /// Measure-phase grants served by the client's home-shard lease.
    pub local_grants: u64,
    /// Measure-phase grants that fell back to the ownership path.
    pub coordinator_fallbacks: u64,
    /// Measure-phase fraction of *hot-pool* grants (the top Zipf ranks)
    /// served locally: `local / (local + fallback)` over those pools.
    pub hot_local_ratio: f64,
}

/// Pools in the E15 workload; the top [`E15_HOT_POOLS`] Zipf ranks carry
/// most of the mass (s = 1.1 puts ~45% on the first three ranks).
pub const E15_POOLS: usize = 16;
/// How many head ranks count as "hot" for the locality ratio.
pub const E15_HOT_POOLS: usize = 3;

/// E15: the flash-sale shape E13 can't serve — a Zipf-skewed pool mix
/// where every client hammers the same few hot pools. Without leases
/// every hot-pool grant funnels through the owner shard's single-threaded
/// server loop; with leases each client's home shard serves its slice of
/// the hot pool from a local escrow lease, so the same offered load
/// spreads over all `shards` loops. Clients are pinned home shards
/// round-robin, the first half of each stream is warm-up (two rebalance
/// cycles chase the observed demand), and throughput plus the locality
/// counters are measured over the second half only.
pub fn e15_lease_locality(
    shards: usize,
    clients: usize,
    ops_per_client: usize,
    leases: bool,
) -> E15Row {
    use promises_cluster::{ClusterDecision, PromiseCluster};
    use std::sync::atomic::{AtomicU64, Ordering};

    let cluster = PromiseCluster::build(shards, 2015);
    if leases {
        let dir = cluster.enable_leases();
        for c in 0..clients {
            dir.pin_home(&format!("client-{c}"), c % shards.max(1));
        }
    }
    for p in 0..E15_POOLS {
        cluster.register_quantity_pool(&pool_name(p), 1_000_000);
    }
    cluster.set_service_time_us(E13_SERVICE_US);

    let workload = WorkloadConfig {
        clients,
        ops_per_client,
        pools: E15_POOLS,
        zipf_exponent: 1.1,
        amount_max: 3,
        seed: 2015,
        ..WorkloadConfig::default()
    };
    let streams: Vec<_> = (0..clients).map(|c| workload.ops_for_client(c)).collect();

    // Drives every client through `range` of its op stream concurrently.
    let drive = |range: std::ops::Range<usize>, granted: &AtomicU64, rejected: &AtomicU64| {
        std::thread::scope(|scope| {
            for (c, stream) in streams.iter().enumerate() {
                let cluster = &cluster;
                let range = range.clone();
                scope.spawn(move || {
                    for i in range {
                        let op = &stream[i];
                        let predicates = vec![format!(
                            "qty('{}') >= {}",
                            pool_name(op.pools[0]),
                            op.amount
                        )];
                        let decision = cluster
                            .coordinator
                            .grant(
                                &format!("client-{c}"),
                                &format!("e15-{c}-{i}"),
                                &predicates,
                                3_600_000,
                            )
                            .expect("quiet bus cannot fail");
                        match decision {
                            ClusterDecision::Granted { parts } => {
                                granted.fetch_add(1, Ordering::Relaxed);
                                if !op.abandon {
                                    cluster.coordinator.release(&parts);
                                }
                            }
                            ClusterDecision::Rejected { .. } => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
    };

    // Warm-up: half the stream, with a rebalance cycle after each quarter
    // so lease headroom has chased the Zipf head before we measure.
    let warmup = ops_per_client / 2;
    let sink = (AtomicU64::new(0), AtomicU64::new(0));
    drive(0..warmup / 2, &sink.0, &sink.1);
    cluster.advance_and_prune(10_000);
    drive(warmup / 2..warmup, &sink.0, &sink.1);
    cluster.advance_and_prune(10_000);

    let counter = |name: &str| cluster.telemetry.counter(name).load(Ordering::Relaxed);
    let hot_pools: Vec<String> = (0..E15_HOT_POOLS).map(pool_name).collect();
    let snap_hot = |kind: &str| -> u64 {
        hot_pools
            .iter()
            .map(|p| counter(&format!("cluster.lease.{kind}.{p}")))
            .sum()
    };
    let local_before = counter("cluster.lease.local_grants");
    let fallback_before = counter("cluster.lease.coordinator_fallbacks");
    let hot_local_before = snap_hot("local");
    let hot_fallback_before = snap_hot("fallback");

    // Measure phase.
    let granted = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let start = Instant::now();
    drive(warmup..ops_per_client, &granted, &rejected);
    let wall = start.elapsed().as_secs_f64().max(1e-9);

    let hot_local = snap_hot("local") - hot_local_before;
    let hot_fallback = snap_hot("fallback") - hot_fallback_before;
    let hot_routed = hot_local + hot_fallback;
    E15Row {
        shards,
        leases,
        throughput: (clients * (ops_per_client - warmup)) as f64 / wall,
        granted: granted.into_inner(),
        rejected: rejected.into_inner(),
        local_grants: counter("cluster.lease.local_grants") - local_before,
        coordinator_fallbacks: counter("cluster.lease.coordinator_fallbacks") - fallback_before,
        hot_local_ratio: if hot_routed == 0 {
            0.0
        } else {
            hot_local as f64 / hot_routed as f64
        },
    }
}

// ======================================================================
// E19 — thread-per-shard runtime: wall-clock scaling and group commit
// ======================================================================

/// One E19 row: a shard count and the wall-clock workload outcome on the
/// threaded executor (real shard threads, real concurrent clients — no
/// modeled-time accounting anywhere in the measurement).
#[derive(Debug, Clone, Copy)]
pub struct E19Row {
    /// Cluster size (one dedicated worker thread per shard).
    pub shards: usize,
    /// Grant+release operations per wall-clock second.
    pub throughput: f64,
    /// Unit grants confirmed.
    pub granted: u64,
    /// Unit rejections.
    pub rejected: u64,
    /// Mean wall-clock latency per op, microseconds.
    pub mean_op_us: f64,
    /// Journal flush writes across the cluster (group-commit batches).
    pub flush_writes: u64,
    /// Journal records covered by those writes.
    pub flushed_records: u64,
}

/// Modeled per-message service time for the E19 scaling runs. Larger than
/// E13's so the run is sleep-dominated even on a single-core test box:
/// the scaling the gate checks comes from shard *threads* overlapping
/// their service time, which needs the per-op CPU cost to stay a small
/// fraction of the service time.
pub const E19_SERVICE_US: u64 = 300;

/// Clients driving the E19 runs (two per shard at the widest point, so
/// every shard thread always has a next request queued).
pub const E19_CLIENTS: usize = 16;

/// Modeled latency of one durable batch write in the E19b amortization
/// probe — the "fsync" cost group commit exists to amortize. Half the
/// service time: long enough that concurrent handlers append behind an
/// in-flight flush, short enough that the probe stays quick.
pub const E19_FLUSH_DELAY_US: u64 = 150;

/// Runs the E19 wall-clock scaling workload: `clients` real client
/// threads drive single-shard grant+release cycles against a
/// `shards`-node cluster where each node's dedicated worker thread
/// executes a fixed modeled service time per message. Unlike E13 (which
/// this supersedes as the concurrency gate), every number here is
/// wall-clock: arrival-to-reply time measured across real thread
/// handoffs, the group-commit barrier included.
pub fn e19_thread_scaling(shards: usize, clients: usize, ops_per_client: usize) -> E19Row {
    use promises_cluster::{ClusterDecision, PromiseCluster};
    use std::sync::atomic::{AtomicU64, Ordering};

    let cluster = PromiseCluster::build(shards, 2019);
    cluster.set_service_time_us(E19_SERVICE_US);
    for c in 0..clients {
        cluster.register_quantity_pool(&pool_name(c), 1_000_000);
    }
    let granted = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let cluster = &cluster;
            let granted = &granted;
            let rejected = &rejected;
            scope.spawn(move || {
                let predicates = vec![format!("qty('{}') >= 2", pool_name(c))];
                for op in 0..ops_per_client {
                    let decision = cluster
                        .coordinator
                        .grant(
                            &format!("client-{c}"),
                            &format!("e19-{c}-{op}"),
                            &predicates,
                            3_600_000,
                        )
                        .expect("quiet bus cannot fail");
                    match decision {
                        ClusterDecision::Granted { parts } => {
                            granted.fetch_add(1, Ordering::Relaxed);
                            cluster.coordinator.release(&parts);
                        }
                        ClusterDecision::Rejected { .. } => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let total = (clients * ops_per_client) as f64;
    let (flush_writes, flushed_records) = cluster
        .nodes
        .iter()
        .map(|n| n.journal.flush_stats())
        .fold((0, 0), |(w, r), (nw, nr)| (w + nw, r + nr));
    E19Row {
        shards,
        throughput: total / wall,
        granted: granted.into_inner(),
        rejected: rejected.into_inner(),
        mean_op_us: wall * 1e6 / total,
        flush_writes,
        flushed_records,
    }
}

/// The E19b group-commit amortization probe: one shard grown to a small
/// worker pool, more clients than workers, modeled service time on the
/// handlers and modeled write latency on the journal — so handlers
/// overlap inside the shard and concurrent appends accumulate behind the
/// in-flight flush, riding shared batches. Returns
/// `(flush_writes, flushed_records)` for the shard; `records / writes`
/// is the amortization factor (1.0 means every record paid its own
/// write, i.e. no batching happened).
pub fn e19_group_commit_amortization(
    workers: usize,
    clients: usize,
    ops_per_client: usize,
) -> (u64, u64) {
    use promises_cluster::{ClusterDecision, PromiseCluster};

    let mut cluster = PromiseCluster::build(1, 2019);
    cluster.nodes[0].server.set_workers(workers);
    // Modeled service time plus modeled write latency open the batching
    // window this probe measures: while one worker leads a flush+ship
    // round (sleeping out the "fsync"), the other workers' handlers
    // append behind it, and the next leader's single write covers them
    // all. With both costs at zero the round is nanoseconds long, every
    // handler races straight from append to flush, and each batch
    // degenerates to one record — group commit only amortizes a write
    // cost that exists.
    cluster.set_service_time_us(E19_SERVICE_US);
    cluster.nodes[0]
        .journal
        .set_flush_delay_us(E19_FLUSH_DELAY_US);
    cluster.enable_replication();
    for c in 0..clients {
        cluster.register_quantity_pool(&pool_name(c), 1_000_000);
    }
    std::thread::scope(|scope| {
        for c in 0..clients {
            let cluster = &cluster;
            scope.spawn(move || {
                let predicates = vec![format!("qty('{}') >= 1", pool_name(c))];
                for op in 0..ops_per_client {
                    if let Ok(ClusterDecision::Granted { parts }) = cluster.coordinator.grant(
                        &format!("client-{c}"),
                        &format!("e19b-{c}-{op}"),
                        &predicates,
                        3_600_000,
                    ) {
                        cluster.coordinator.release(&parts);
                    }
                }
            });
        }
    });
    cluster.nodes[0].journal.flush_stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_runs() {
        assert!(e1_figure1(5) > 0.0);
    }

    #[test]
    fn e2_pipeline_small() {
        let (tput, ok) = e2_pipeline(2, 3);
        assert!(tput > 0.0);
        assert!((ok - 1.0).abs() < 1e-9, "all combined ops succeed");
    }

    #[test]
    fn e3_views_all_measure() {
        for view in [View::Anonymous, View::Named, View::Property] {
            assert!(e3_check_cost(view, 10, 3) > 0.0, "{view:?}");
        }
    }

    #[test]
    fn e4_runs_all_systems() {
        let cfg = WorkloadConfig {
            clients: 2,
            ops_per_client: 3,
            think: Duration::from_micros(100),
            ..e4_config(2, 3)
        };
        for sys in System::ALL {
            let r = run_system(sys, &cfg, 10_000);
            assert_eq!(r.attempts, 6, "{}", sys.name());
        }
    }

    #[test]
    fn e4_disjoint_compare_runs_both_modes_cleanly() {
        let (global, footprint) = e4_disjoint_compare(4, 5, 10_000, 8);
        for r in [&global, &footprint] {
            assert_eq!(r.report.attempts, 20, "{}", r.mode);
            assert_eq!(r.report.completed, 20, "{}", r.mode);
            assert_eq!(r.report.deadlocks, 0, "{}", r.mode);
        }
        assert_eq!(
            footprint.deadlock_retries, 0,
            "disjoint footprints never conflict"
        );
    }

    #[test]
    fn e7_tentative_beats_strict_tags() {
        let strict = e7_strategy(100, CheckStrategy::AllocatedTags);
        let tentative = e7_strategy(100, CheckStrategy::TentativeAllocation);
        let satisfiability = e7_strategy(100, CheckStrategy::Satisfiability);
        assert_eq!(
            tentative.rejected, 0,
            "re-arrangement grants the whole feasible sequence"
        );
        assert_eq!(satisfiability.rejected, 0);
        assert!(
            strict.rejected > 0,
            "allocate-on-grant without re-arrangement must reject some"
        );
    }

    #[test]
    fn e8_atomic_never_loses() {
        let atomic = e8_race(5, true);
        assert_eq!(atomic.protected_lost, 0, "atomic release+action is safe");
        assert_eq!(atomic.protected_ok, 5);
    }

    #[test]
    fn e9_short_ttl_expires_long_ttl_starves_latecomers() {
        let short = e9_ttl(5, 20, 10, 4);
        assert!(short.expired > 0, "TTL shorter than think time expires");
        let long = e9_ttl(1_000_000, 20, 10, 4);
        assert_eq!(long.expired, 0);
        assert!(
            long.latecomer_rejections >= short.latecomer_rejections,
            "abandoned long-TTL promises starve the second population"
        );
    }

    #[test]
    fn e10_depth_increases_latency_shape() {
        let d0 = e10_delegation(0, 10);
        let d3 = e10_delegation(3, 10);
        assert!(d0 > 0.0 && d3 > 0.0);
        // Not asserting strict ordering (timing noise), only that both run.
    }

    #[test]
    fn e11_sweep_small_is_clean_at_every_rate() {
        for row in e11_fault_sweep(&[0.0, 0.15], 2, 10) {
            assert_eq!(row.report.violations, 0, "rate {}", row.rate);
            assert_eq!(row.report.double_grants, 0, "rate {}", row.rate);
            assert_eq!(row.report.live_after_reap, 0, "rate {}", row.rate);
            if row.report.granted + row.report.deduped > 0 {
                let ratio = row.dedup_ratio.expect("grants happened");
                assert!((0.0..=1.0).contains(&ratio), "rate {}", row.rate);
            }
        }
    }

    #[test]
    fn e12_obs_small_audits_clean_with_stage_histograms() {
        let obs = e12_obs(2007, 0.1, 3, 10);
        assert!(obs.ok(), "violations: {:?}", obs.lifecycle.violations);
        for stage in ["bus.deliver", "pm.check", "rm.txn"] {
            let h = obs.snapshot.histogram(stage);
            assert!(h.is_some_and(|h| !h.is_empty()), "stage {stage} empty");
        }
    }

    #[test]
    fn e12_overhead_measures_both_modes() {
        let o = e12_overhead(2, 5, 10_000, 2);
        assert!(o.plain > 0.0);
        assert!(o.instrumented > 0.0);
        assert!(o.overhead_pct().is_finite());
    }

    #[test]
    fn e14_compaction_shrinks_the_journal_and_preserves_the_digest() {
        let row = e14_recovery(50, 8, 2);
        assert!(row.digests_match, "both replays must match the reference");
        assert_eq!(row.history_records, 2 * 50 + 8);
        assert!(
            row.compacted_records < row.live + 2,
            "compacted journal is O(live): {} records for {} live",
            row.compacted_records,
            row.live
        );
        assert!(row.uncompacted_us > 0.0 && row.compacted_us > 0.0);
    }

    #[test]
    fn e15_leases_localise_the_hot_pools() {
        let with = e15_lease_locality(4, 4, 48, true);
        assert!(with.granted > 0);
        assert!(with.local_grants > 0, "{with:?}");
        assert!(
            with.hot_local_ratio > 0.8,
            "hot-pool locality after warm-up: {with:?}"
        );
        let without = e15_lease_locality(4, 4, 48, false);
        assert_eq!(without.local_grants, 0, "no lease path without leases");
        assert_eq!(without.hot_local_ratio, 0.0);
    }

    #[test]
    fn e19_scaling_counts_every_op_and_flushes_every_record() {
        let row = e19_thread_scaling(2, 4, 5);
        assert_eq!(row.shards, 2);
        assert_eq!(row.granted + row.rejected, 4 * 5);
        assert!(row.throughput > 0.0);
        assert!(row.flush_writes > 0, "grants must hit the group committer");
        assert!(
            row.flushed_records >= row.flush_writes,
            "a flush write covers at least one record: {row:?}"
        );
    }

    #[test]
    fn e19b_amortizes_writes_across_concurrent_appends() {
        let (writes, records) = e19_group_commit_amortization(4, 6, 20);
        assert!(records > 0);
        assert!(
            writes <= records,
            "group commit never writes more than once per record: {writes} writes, {records} records"
        );
    }
}
