//! Regenerates every experiment table in EXPERIMENTS.md.
//!
//! Run with: `cargo run --release -p promises-bench --bin experiments`
//! (optionally pass experiment ids, e.g. `e4 e5`, to run a subset;
//! `--faults` runs a fast fault-injection smoke check and exits non-zero
//! if any guarantee audit fails; `--obs` runs the E12 instrumented sweep,
//! prints per-stage latency and rejection-cause tables, dumps
//! `BENCH_obs.json`/`BENCH_obs.prom`, and exits non-zero if any required
//! stage histogram is empty or the lifecycle audit finds an ordering
//! violation; `--recovery` runs the E14 checkpoint/compaction recovery
//! benchmark and the crash/compact sweep, dumps `BENCH_recovery.json`,
//! and exits non-zero on a digest mismatch or a recovery-time
//! regression; `--cluster` runs the E13 scaling table plus cluster fault
//! sweeps, dumping `BENCH_cluster.json`; `--leases` runs the E15
//! lease-locality table plus per-seed lease sweeps with a mid-rebalance
//! crash, dumping `BENCH_leases.json`; `--failover` runs the E16
//! fail-over sweep — leader kills mid-2PC and mid-lease-rebalance with
//! warm-follower promotion under replication faults — dumping
//! `BENCH_replication.json`; `--doctor` runs the E17 health-plane
//! confusion matrix — every doctor sweep at 0/10/20% fault rates, gated
//! on zero missed detections, zero false positives, and every incident
//! report parsing as JSON — dumping `BENCH_doctor.json`; `--workloads`
//! runs the E18 production workload plane — the open-loop flash-sale
//! scenario gated on its p99 SLO and on degraded mode both engaging and
//! clearing, the travel-booking scenario at 0/10/20% fault rates gated
//! on ≥95% completion with clean atomicity audits, and the 12-cell
//! error-path matrix gated on zero failing cells — dumping
//! `BENCH_workloads.json` and `BENCH_workloads.prom`; `--threads` runs
//! the E19 thread-per-shard runtime gate — the wall-clock scaling table
//! gated on the 8-vs-1 throughput ratio, the group-commit amortization
//! probe, and per-seed threaded stress sweeps at 0/10/20% fault rates
//! gated on zero lifecycle violations — merging a `threads` section
//! into `BENCH_cluster.json`).

use std::env;
use std::time::Duration;

use promises_bench::exp::{self, System, View};
use promises_bench::table::{f, print_table, us};
use promises_core::CheckStrategy;
use promises_telemetry::export::{to_json, to_prometheus};

/// Formats an optional mean latency; runs with zero successes have none.
fn opt_us(d: Option<Duration>) -> String {
    d.map(|d| us(d.as_micros() as f64))
        .unwrap_or_else(|| "n/a".into())
}

/// Formats optional nanoseconds (histogram quantiles) for table cells.
fn opt_ns(v: Option<u64>) -> String {
    v.map(|ns| us(ns as f64 / 1e3))
        .unwrap_or_else(|| "-".into())
}

/// Fast fault smoke check for CI: a small sweep across several seeds;
/// any promise violation, double grant, or leaked promise is fatal.
fn faults_smoke(seeds: &[u64]) {
    let mut failures = 0usize;
    for &seed in seeds {
        for rate in [0.05, 0.15] {
            let cfg = promises_sim::FaultSweepConfig {
                clients: 3,
                ops_per_client: 12,
                seed,
                ..promises_sim::FaultSweepConfig::default()
            };
            let scenario =
                promises_faults::FaultScenario::uniform(seed, rate).with_storage_errors(rate);
            let r = promises_sim::run_fault_sweep(scenario, &cfg);
            let ok = r.violations == 0 && r.double_grants == 0 && r.live_after_reap == 0;
            println!(
                "faults-smoke seed={seed} rate={rate:.2}: granted={} purchased={} retries={} \
                 deduped={} violations={} double_grants={} leaked={} -> {}",
                r.granted,
                r.purchased_ops,
                r.retries,
                r.deduped,
                r.violations,
                r.double_grants,
                r.live_after_reap,
                if ok { "OK" } else { "FAIL" }
            );
            if !ok {
                failures += 1;
            }
        }
        let crash = promises_sim::run_crash_restart(seed, 12, 3_700_000);
        let ok = crash.state_matches() && crash.pruned_while_down > 0;
        println!(
            "faults-smoke crash-restart seed={seed}: replayed={} recovered={} pruned={} -> {}",
            crash.recovery.replayed,
            crash.recovery.recovered,
            crash.recovery.pruned,
            if ok { "OK" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("faults-smoke: {failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("faults-smoke: all checks passed");
}

/// E13 cluster mode: the shard-count scaling table (gated on the 4-vs-1
/// throughput ratio), then per seed a cluster fault sweep with injected
/// coordinator crashes (gated on zero partial grants, double grants,
/// oversells and leaks), a shard crash–restart with per-shard state
/// digests, and the cross-shard lifecycle audit. Writes
/// `BENCH_cluster.json` and exits non-zero if any gate fails.
fn cluster_mode(seeds: &[u64]) {
    const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
    const MIN_RATIO_4V1: f64 = 2.5;
    let mut failures = 0usize;

    let mut scaling_rows = Vec::new();
    let mut scaling_json = Vec::new();
    let mut by_shards = std::collections::HashMap::new();
    for shards in SHARD_COUNTS {
        let row = exp::e13_cluster_scaling(shards, 8, 250);
        scaling_rows.push(vec![
            shards.to_string(),
            f(row.throughput, 0),
            row.granted.to_string(),
            row.rejected.to_string(),
            us(row.mean_grant_us),
        ]);
        scaling_json.push(format!(
            "{{\"shards\":{},\"ops_per_s\":{:.1},\"granted\":{},\"rejected\":{}}}",
            row.shards, row.throughput, row.granted, row.rejected
        ));
        by_shards.insert(shards, row.throughput);
    }
    print_table(
        &format!(
            "E13 — cluster throughput vs shard count (8 pinned clients, \
             {}us modeled service time per message)",
            exp::E13_SERVICE_US
        ),
        &["shards", "ops/s", "granted", "rejected", "mean/op"],
        &scaling_rows,
    );
    let ratio = by_shards[&4] / by_shards[&1].max(1e-9);
    println!("scaling ratio 4 shards vs 1: {ratio:.2}x (gate: >= {MIN_RATIO_4V1}x)");
    if ratio < MIN_RATIO_4V1 {
        eprintln!("cluster: scaling gate FAILED ({ratio:.2}x < {MIN_RATIO_4V1}x)");
        failures += 1;
    }

    let mut sweep_json = Vec::new();
    for &seed in seeds {
        let cfg = promises_sim::ClusterSweepConfig {
            seed,
            ..promises_sim::ClusterSweepConfig::default()
        };
        let scenario = promises_faults::FaultScenario::uniform(seed, 0.1);
        let (r, cluster) = promises_sim::run_cluster_fault_sweep(scenario, &cfg);
        let life = promises_telemetry::audit_cluster_lifecycles(
            &cluster.telemetry.spans(),
            &cluster.evidence(),
        );
        let ok = r.clean() && life.ok();
        println!(
            "cluster-sweep seed={seed}: granted={} (cross-shard {}) rejected={} crashed={} \
             presumed_aborted={} commits_resent={} | partial={} double={} oversell={} \
             leaked={} lifecycle_violations={} -> {}",
            r.granted,
            r.cross_shard_granted,
            r.rejected,
            r.crashed,
            r.presumed_aborted,
            r.commits_resent,
            r.partial_grants,
            r.double_grants,
            r.oversells,
            r.live_after_reap,
            life.all_violations().len(),
            if ok { "OK" } else { "FAIL" }
        );
        for v in life.all_violations() {
            eprintln!("  LIFECYCLE VIOLATION: {v}");
        }
        if !ok {
            failures += 1;
        }

        let crash =
            promises_sim::run_cluster_crash_restart(seed, 5, promises_sim::RestartTarget::SameNode);
        let crash_ok = crash.digests_match()
            && crash.in_doubt.iter().all(|&n| n == 1)
            && crash.live_after_recovery == crash.committed_before_kill;
        println!(
            "cluster-crash seed={seed}: digests_match={} in_doubt={:?} live_after_recovery={} \
             committed_before_kill={} -> {}",
            crash.digests_match(),
            crash.in_doubt,
            crash.live_after_recovery,
            crash.committed_before_kill,
            if crash_ok { "OK" } else { "FAIL" }
        );
        if !crash_ok {
            failures += 1;
        }

        sweep_json.push(format!(
            "{{\"seed\":{seed},\"fault_rate\":0.1,\"granted\":{},\"cross_shard_granted\":{},\
             \"rejected\":{},\"coordinator_crashes\":{},\"presumed_aborted\":{},\
             \"commits_resent\":{},\"partial_grants\":{},\"double_grants\":{},\
             \"oversells\":{},\"leaked\":{},\"lifecycle_violations\":{},\
             \"crash_restart\":{{\"digests_match\":{},\"live_after_recovery\":{}}}}}",
            r.granted,
            r.cross_shard_granted,
            r.rejected,
            r.crashed,
            r.presumed_aborted,
            r.commits_resent,
            r.partial_grants,
            r.double_grants,
            r.oversells,
            r.live_after_reap,
            life.all_violations().len(),
            crash.digests_match(),
            crash.live_after_recovery,
        ));
    }

    let json = format!(
        "{{\"experiment\":\"e13-cluster\",\"service_time_us\":{},\
         \"scaling\":[{}],\"scaling_ratio_4v1\":{ratio:.3},\"sweeps\":[{}]}}\n",
        exp::E13_SERVICE_US,
        scaling_json.join(","),
        sweep_json.join(","),
    );
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    std::fs::write(json_path, json).expect("write BENCH_cluster.json");
    println!("\nwrote BENCH_cluster.json");

    if failures > 0 {
        eprintln!("cluster: {failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("cluster: all checks passed");
}

/// E19 threads mode: the thread-per-shard runtime gate. First the
/// wall-clock scaling table (real shard worker threads overlapping their
/// service time; gated on the 8-vs-1 throughput ratio), then the
/// group-commit amortization probe, then per seed a threaded
/// concurrency-stress sweep — N client threads × 8 shards × wire-fault
/// rates 0/10/20% — gated on the lifecycle auditor reporting zero
/// oversells, partial grants, double grants, and leaks. Merges a
/// `threads` section (the wall-clock fields) into `BENCH_cluster.json`
/// alongside the modeled-time E13 results and exits non-zero if any gate
/// fails.
fn threads_mode(seeds: &[u64]) {
    const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
    const MIN_RATIO_8V1: f64 = 4.0;
    const STRESS_FAULT_RATES: [f64; 3] = [0.0, 0.1, 0.2];
    let mut failures = 0usize;

    let mut scaling_rows = Vec::new();
    let mut scaling_json = Vec::new();
    let mut by_shards = std::collections::HashMap::new();
    for shards in SHARD_COUNTS {
        let row = exp::e19_thread_scaling(shards, exp::E19_CLIENTS, 120);
        scaling_rows.push(vec![
            shards.to_string(),
            f(row.throughput, 0),
            row.granted.to_string(),
            row.rejected.to_string(),
            us(row.mean_op_us),
            format!("{}/{}", row.flushed_records, row.flush_writes),
        ]);
        scaling_json.push(format!(
            "{{\"shards\":{},\"wall_clock_ops_per_s\":{:.1},\"granted\":{},\"rejected\":{},\
             \"mean_op_us\":{:.1},\"flush_writes\":{},\"flushed_records\":{}}}",
            row.shards,
            row.throughput,
            row.granted,
            row.rejected,
            row.mean_op_us,
            row.flush_writes,
            row.flushed_records
        ));
        by_shards.insert(shards, row.throughput);
    }
    print_table(
        &format!(
            "E19 — wall-clock throughput vs shard count ({} client threads, \
             one worker thread per shard, {}us modeled service time per message)",
            exp::E19_CLIENTS,
            exp::E19_SERVICE_US
        ),
        &[
            "shards",
            "ops/s",
            "granted",
            "rejected",
            "mean/op",
            "recs/flush",
        ],
        &scaling_rows,
    );
    let ratio = by_shards[&8] / by_shards[&1].max(1e-9);
    let trend: Vec<String> = SHARD_COUNTS
        .iter()
        .map(|s| format!("{s}:{:.2}x", by_shards[s] / by_shards[&1].max(1e-9)))
        .collect();
    println!("wall-clock scaling trend vs 1 shard: {}", trend.join(" "));
    println!("scaling ratio 8 shards vs 1: {ratio:.2}x (gate: >= {MIN_RATIO_8V1}x)");
    if ratio < MIN_RATIO_8V1 {
        eprintln!("threads: scaling gate FAILED ({ratio:.2}x < {MIN_RATIO_8V1}x)");
        failures += 1;
    }

    let (amort_writes, amort_records) = exp::e19_group_commit_amortization(4, 8, 150);
    let amortization = amort_records as f64 / (amort_writes.max(1)) as f64;
    println!(
        "group-commit amortization (1 shard, 4 workers, 8 clients): \
         {amort_records} records / {amort_writes} writes = {amortization:.2} records per flush"
    );

    let mut sweep_json = Vec::new();
    for &seed in seeds {
        for rate in STRESS_FAULT_RATES {
            let cfg = promises_sim::ClusterSweepConfig {
                shards: 8,
                clients: 8,
                ops_per_client: 30,
                pools: 8,
                seed,
                ..promises_sim::ClusterSweepConfig::default()
            };
            let scenario = promises_faults::FaultScenario::uniform(seed, rate);
            let (r, cluster) = promises_sim::run_cluster_fault_sweep(scenario, &cfg);
            let life = promises_telemetry::audit_cluster_lifecycles(
                &cluster.telemetry.spans(),
                &cluster.evidence(),
            );
            let ok = r.clean() && life.ok();
            println!(
                "thread-stress seed={seed} rate={rate}: granted={} (cross-shard {}) \
                 rejected={} crashed={} | partial={} double={} oversell={} leaked={} \
                 lifecycle_violations={} -> {}",
                r.granted,
                r.cross_shard_granted,
                r.rejected,
                r.crashed,
                r.partial_grants,
                r.double_grants,
                r.oversells,
                r.live_after_reap,
                life.all_violations().len(),
                if ok { "OK" } else { "FAIL" }
            );
            for v in life.all_violations() {
                eprintln!("  LIFECYCLE VIOLATION: {v}");
            }
            if !ok {
                failures += 1;
            }
            sweep_json.push(format!(
                "{{\"seed\":{seed},\"fault_rate\":{rate},\"granted\":{},\"rejected\":{},\
                 \"partial_grants\":{},\"double_grants\":{},\"oversells\":{},\"leaked\":{},\
                 \"lifecycle_violations\":{}}}",
                r.granted,
                r.rejected,
                r.partial_grants,
                r.double_grants,
                r.oversells,
                r.live_after_reap,
                life.all_violations().len(),
            ));
        }
    }

    // Merge the wall-clock section into BENCH_cluster.json next to the
    // modeled-time E13 results (the cluster step writes that file first;
    // re-runs replace any previous threads section).
    let threads_json = format!(
        "\"threads\":{{\"experiment\":\"e19-threads\",\"service_time_us\":{},\
         \"wall_clock_scaling\":[{}],\"scaling_ratio_8v1\":{ratio:.3},\
         \"group_commit\":{{\"flush_writes\":{amort_writes},\"flushed_records\":{amort_records},\
         \"records_per_flush\":{amortization:.3}}},\"stress\":[{}]}}",
        exp::E19_SERVICE_US,
        scaling_json.join(","),
        sweep_json.join(","),
    );
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    let merged = match std::fs::read_to_string(json_path) {
        Ok(existing) => {
            let base = existing.trim_end();
            let base = match base.find(",\"threads\":") {
                Some(i) => &base[..i],
                None => base.strip_suffix('}').unwrap_or(base),
            };
            format!("{base},{threads_json}}}\n")
        }
        Err(_) => format!("{{{threads_json}}}\n"),
    };
    std::fs::write(json_path, merged).expect("write BENCH_cluster.json");
    println!("\nwrote threads section into BENCH_cluster.json");

    if failures > 0 {
        eprintln!("threads: {failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("threads: all checks passed");
}

/// E15 lease mode: the Zipf-skew locality table with and without
/// per-shard escrow leases (gated at 8 shards on the hot-pool local-grant
/// ratio and the throughput uplift over the lease-less baseline), then a
/// per-seed lease sweep with a mid-rebalance crash and per-shard
/// crash–restart (gated on zero lease oversells, zero lease-sum
/// violations, digest equality across restart, heal back to the pool
/// total, zero leaks, and a minimum local-grant ratio). Writes
/// `BENCH_leases.json` and exits non-zero if any gate fails.
fn leases_mode(seeds: &[u64]) {
    const SHARD_COUNTS: [usize; 3] = [2, 4, 8];
    const MIN_HOT_LOCAL_RATIO: f64 = 0.9;
    const MIN_UPLIFT_8: f64 = 1.2;
    const MIN_SWEEP_LOCAL_RATIO: f64 = 0.5;
    let mut failures = 0usize;

    let mut table_rows = Vec::new();
    let mut row_json = Vec::new();
    let mut by_key = std::collections::HashMap::new();
    for shards in SHARD_COUNTS {
        for leases in [false, true] {
            let row = exp::e15_lease_locality(shards, 8, 240, leases);
            table_rows.push(vec![
                shards.to_string(),
                if leases { "leases" } else { "ownership" }.into(),
                f(row.throughput, 0),
                row.granted.to_string(),
                row.rejected.to_string(),
                row.local_grants.to_string(),
                row.coordinator_fallbacks.to_string(),
                f(row.hot_local_ratio * 100.0, 1),
            ]);
            row_json.push(format!(
                "{{\"shards\":{},\"leases\":{},\"ops_per_s\":{:.1},\"granted\":{},\
                 \"rejected\":{},\"local_grants\":{},\"coordinator_fallbacks\":{},\
                 \"hot_local_ratio\":{:.4}}}",
                row.shards,
                row.leases,
                row.throughput,
                row.granted,
                row.rejected,
                row.local_grants,
                row.coordinator_fallbacks,
                row.hot_local_ratio,
            ));
            by_key.insert((shards, leases), row);
        }
    }
    print_table(
        &format!(
            "E15 — Zipf-skew (s=1.1, {} pools) throughput and hot-pool locality, \
             with vs without escrow leases ({}us modeled service time per message)",
            exp::E15_POOLS,
            exp::E13_SERVICE_US
        ),
        &[
            "shards",
            "routing",
            "ops/s",
            "granted",
            "rejected",
            "local",
            "fallback",
            "hot local %",
        ],
        &table_rows,
    );
    let with = by_key[&(8usize, true)];
    let without = by_key[&(8usize, false)];
    let uplift = with.throughput / without.throughput.max(1e-9);
    println!(
        "8-shard uplift over ownership routing: {uplift:.2}x (gate: >= {MIN_UPLIFT_8}x); \
         hot-pool local ratio: {:.1}% (gate: >= {:.0}%)",
        with.hot_local_ratio * 100.0,
        MIN_HOT_LOCAL_RATIO * 100.0
    );
    if with.hot_local_ratio < MIN_HOT_LOCAL_RATIO {
        eprintln!(
            "leases: hot-pool locality gate FAILED ({:.3} < {MIN_HOT_LOCAL_RATIO})",
            with.hot_local_ratio
        );
        failures += 1;
    }
    if uplift < MIN_UPLIFT_8 {
        eprintln!("leases: throughput uplift gate FAILED ({uplift:.2}x < {MIN_UPLIFT_8}x)");
        failures += 1;
    }

    let mut sweep_json = Vec::new();
    for &seed in seeds {
        let cfg = promises_sim::ClusterSweepConfig {
            shards: 4,
            clients: 8,
            ops_per_client: 48,
            pools: 8,
            cross_shard_probability: 0.25,
            seed,
            ..promises_sim::ClusterSweepConfig::default()
        };
        let (r, _cluster) = promises_sim::run_lease_sweep(&cfg);
        let ok = r.clean() && r.crash_fired && r.local_ratio() >= MIN_SWEEP_LOCAL_RATIO;
        println!(
            "lease-sweep seed={seed}: granted={} rejected={} local={} fallback={} \
             log_skips={} moved={} | oversells={} sum_violations={} crash_fired={} \
             healed={} digests_match={} sum_restored={} leaked={} local_ratio={:.2} -> {}",
            r.granted,
            r.rejected,
            r.local_grants,
            r.coordinator_fallbacks,
            r.coord_log_skips,
            r.rebalance_moved,
            r.lease_oversells,
            r.lease_sum_violations,
            r.crash_fired,
            r.healed_after_crash,
            r.digests_match(),
            r.lease_sum_restored,
            r.live_after_reap,
            r.local_ratio(),
            if ok { "OK" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
        sweep_json.push(format!(
            "{{\"seed\":{seed},\"granted\":{},\"rejected\":{},\"local_grants\":{},\
             \"coordinator_fallbacks\":{},\"coord_log_skips\":{},\"rebalance_moved\":{},\
             \"lease_oversells\":{},\"lease_sum_violations\":{},\"crash_fired\":{},\
             \"healed_after_crash\":{},\"digests_match\":{},\"lease_sum_restored\":{},\
             \"leaked\":{},\"local_ratio\":{:.4}}}",
            r.granted,
            r.rejected,
            r.local_grants,
            r.coordinator_fallbacks,
            r.coord_log_skips,
            r.rebalance_moved,
            r.lease_oversells,
            r.lease_sum_violations,
            r.crash_fired,
            r.healed_after_crash,
            r.digests_match(),
            r.lease_sum_restored,
            r.live_after_reap,
            r.local_ratio(),
        ));
    }

    let json = format!(
        "{{\"experiment\":\"e15-leases\",\"service_time_us\":{},\
         \"rows\":[{}],\"uplift_8_shards\":{uplift:.3},\
         \"hot_local_ratio_8_shards\":{:.4},\
         \"gates\":{{\"min_hot_local_ratio\":{MIN_HOT_LOCAL_RATIO},\
         \"min_uplift\":{MIN_UPLIFT_8},\
         \"min_sweep_local_ratio\":{MIN_SWEEP_LOCAL_RATIO}}},\"sweeps\":[{}]}}\n",
        exp::E13_SERVICE_US,
        row_json.join(","),
        with.hot_local_ratio,
        sweep_json.join(","),
    );
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_leases.json");
    std::fs::write(json_path, json).expect("write BENCH_leases.json");
    println!("\nwrote BENCH_leases.json");

    if failures > 0 {
        eprintln!("leases: {failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("leases: all checks passed");
}

/// E16 failover mode: per seed × replication-fault rate, the fail-over
/// sweep kills every shard leader once mid-2PC and once
/// mid-lease-rebalance and promotes its warm follower. Gates: zero
/// partial grants, double grants, oversells, lease-sum violations, and
/// leaks; every promoted follower byte-identical to the dead leader (and
/// to a clean replay of its journal); every lease sum healed back to the
/// registered total; and promotion MTTR bounded. Writes
/// `BENCH_replication.json` and exits non-zero if any gate fails.
fn failover_mode(seeds: &[u64]) {
    const FAULT_RATES: [f64; 3] = [0.0, 0.1, 0.2];
    const MAX_MTTR_US: u128 = 500_000;
    let mut failures = 0usize;

    let mut rows = Vec::new();
    let mut sweep_json = Vec::new();
    for &seed in seeds {
        for rate in FAULT_RATES {
            let r = promises_sim::run_failover_sweep(seed, rate);
            let mttr_ok = r.mttr_max.as_micros() <= MAX_MTTR_US;
            let ok = r.clean() && mttr_ok;
            println!(
                "failover seed={seed} repl_fault_rate={rate:.2}: granted={} rejected={} \
                 failovers={} in_doubt={} presumed_aborted={} commits_resent={} \
                 rebalance_crashes={} shipped={} dropped={} | partial={} double={} \
                 oversell={} lease_violations={} leaked={} digests_match={} \
                 sums_restored={} mttr_max={}us -> {}",
                r.granted,
                r.rejected,
                r.failovers,
                r.in_doubt_recovered,
                r.presumed_aborted,
                r.commits_resent,
                r.rebalance_crashes_fired,
                r.repl_shipped_lines,
                r.repl_dropped_shipments,
                r.partial_grants,
                r.double_grants,
                r.oversells,
                r.lease_oversells + r.lease_sum_violations,
                r.live_after_reap,
                r.digests_match(),
                r.lease_sums_restored,
                r.mttr_max.as_micros(),
                if ok { "OK" } else { "FAIL" }
            );
            if !mttr_ok {
                eprintln!(
                    "failover: MTTR gate FAILED ({}us > {MAX_MTTR_US}us)",
                    r.mttr_max.as_micros()
                );
            }
            if !ok {
                failures += 1;
            }
            rows.push(vec![
                seed.to_string(),
                f(rate, 2),
                r.failovers.to_string(),
                r.repl_shipped_lines.to_string(),
                r.repl_dropped_shipments.to_string(),
                r.digests_match().to_string(),
                us(r.mttr_mean.as_micros() as f64),
                us(r.mttr_max.as_micros() as f64),
            ]);
            sweep_json.push(format!(
                "{{\"seed\":{seed},\"repl_fault_rate\":{rate:.2},\"granted\":{},\
                 \"rejected\":{},\"failovers\":{},\"in_doubt_recovered\":{},\
                 \"presumed_aborted\":{},\"commits_resent\":{},\
                 \"rebalance_crashes_fired\":{},\"repl_shipped_lines\":{},\
                 \"repl_dropped_shipments\":{},\"partial_grants\":{},\
                 \"double_grants\":{},\"oversells\":{},\"lease_oversells\":{},\
                 \"lease_sum_violations\":{},\"leaked\":{},\"digests_match\":{},\
                 \"lease_sums_restored\":{},\"mttr_mean_us\":{},\"mttr_max_us\":{}}}",
                r.granted,
                r.rejected,
                r.failovers,
                r.in_doubt_recovered,
                r.presumed_aborted,
                r.commits_resent,
                r.rebalance_crashes_fired,
                r.repl_shipped_lines,
                r.repl_dropped_shipments,
                r.partial_grants,
                r.double_grants,
                r.oversells,
                r.lease_oversells,
                r.lease_sum_violations,
                r.live_after_reap,
                r.digests_match(),
                r.lease_sums_restored,
                r.mttr_mean.as_micros(),
                r.mttr_max.as_micros(),
            ));
        }
    }
    print_table(
        "E16 — fail-over sweep: leader kills mid-2PC and mid-rebalance, \
         warm-follower promotion",
        &[
            "seed",
            "fault rate",
            "failovers",
            "shipped",
            "dropped",
            "digests ok",
            "mttr mean",
            "mttr max",
        ],
        &rows,
    );

    let json = format!(
        "{{\"experiment\":\"e16-replication\",\
         \"gates\":{{\"max_mttr_us\":{MAX_MTTR_US}}},\"sweeps\":[{}]}}\n",
        sweep_json.join(","),
    );
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replication.json");
    std::fs::write(json_path, json).expect("write BENCH_replication.json");
    println!("\nwrote BENCH_replication.json");

    if failures > 0 {
        eprintln!("failover: {failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("failover: all checks passed");
}

/// E14 recovery mode: times a cold restart from the full append-only
/// history versus the compacted (checkpoint-seeded) journal, then runs a
/// crash/compact sweep per seed (compaction killed before and after the
/// journal swap, plus the uninterrupted path) gating on digest
/// equivalence. Writes `BENCH_recovery.json` and exits non-zero if the
/// digests diverge or compacted recovery is not at least
/// `MIN_RECOVERY_SPEEDUP`x faster than history replay.
fn recovery_mode(seeds: &[u64]) {
    use promises_core::CompactionCrash;

    const MIN_RECOVERY_SPEEDUP: f64 = 5.0;
    let mut failures = 0usize;

    let row = exp::e14_recovery(5_000, 64, 5);
    print_table(
        "E14 — recovery time: compacted vs uncompacted journal \
         (5000 grant+release cycles, 64 live promises)",
        &["journal", "records", "mean recovery"],
        &[
            vec![
                "uncompacted history".into(),
                row.history_records.to_string(),
                us(row.uncompacted_us),
            ],
            vec![
                "compacted (checkpoint)".into(),
                row.compacted_records.to_string(),
                us(row.compacted_us),
            ],
        ],
    );
    println!(
        "recovery speedup: {:.1}x (gate: >= {MIN_RECOVERY_SPEEDUP}x), digests_match={}",
        row.speedup(),
        row.digests_match
    );
    if !row.digests_match {
        eprintln!("recovery: digest gate FAILED (replay is not byte-equivalent)");
        failures += 1;
    }
    if row.speedup() < MIN_RECOVERY_SPEEDUP {
        eprintln!(
            "recovery: speedup gate FAILED ({:.1}x < {MIN_RECOVERY_SPEEDUP}x)",
            row.speedup()
        );
        failures += 1;
    }

    let mut sweep_json = Vec::new();
    for &seed in seeds {
        for (label, crash) in [
            ("none", None),
            ("before-swap", Some(CompactionCrash::BeforeSwap)),
            ("after-swap", Some(CompactionCrash::AfterSwap)),
        ] {
            let r = promises_sim::run_compaction_crash_restart(seed, 24, crash);
            let ok = r.state_matches() && r.live > 0;
            println!(
                "compaction-crash seed={seed} crash={label}: journal {} -> {} records, \
                 interrupted={} live={} digests_match={} -> {}",
                r.journal_len_before,
                r.journal_len_after,
                r.interrupted,
                r.live,
                r.state_matches(),
                if ok { "OK" } else { "FAIL" }
            );
            if !ok {
                failures += 1;
            }
            sweep_json.push(format!(
                "{{\"seed\":{seed},\"crash\":\"{label}\",\"journal_before\":{},\
                 \"journal_after\":{},\"interrupted\":{},\"live\":{},\"digests_match\":{}}}",
                r.journal_len_before,
                r.journal_len_after,
                r.interrupted,
                r.live,
                r.state_matches(),
            ));
        }
    }

    let json = format!(
        "{{\"experiment\":\"e14-recovery\",\"cycles\":{},\"live\":{},\
         \"history_records\":{},\"compacted_records\":{},\
         \"uncompacted_recovery_us\":{:.1},\"compacted_recovery_us\":{:.1},\
         \"speedup\":{:.2},\"min_speedup_gate\":{MIN_RECOVERY_SPEEDUP},\
         \"digests_match\":{},\"crash_sweeps\":[{}]}}\n",
        row.cycles,
        row.live,
        row.history_records,
        row.compacted_records,
        row.uncompacted_us,
        row.compacted_us,
        row.speedup(),
        row.digests_match,
        sweep_json.join(","),
    );
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    std::fs::write(json_path, json).expect("write BENCH_recovery.json");
    println!("\nwrote BENCH_recovery.json");

    if failures > 0 {
        eprintln!("recovery: {failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("recovery: all checks passed");
}

/// Stages the E12 smoke requires to have recorded samples: if any of
/// these is empty the pipeline was not actually instrumented end to end.
const REQUIRED_STAGES: &[&str] = &[
    "bus.deliver",
    "pm.grant",
    "pm.check",
    "pm.release",
    "rm.txn",
];

/// E12 observability mode: one instrumented fault sweep per seed, with
/// per-stage latency and rejection-cause tables, the lifecycle audit, a
/// telemetry-overhead probe on the E4b footprint workload, and
/// `BENCH_obs.json` + `BENCH_obs.prom` dumps. Exits non-zero when a
/// required stage histogram is empty, the lifecycle audit finds an
/// ordering violation, or a sweep invariant (violations / double grants)
/// breaks.
fn obs_mode(seeds: &[u64]) {
    const RATE: f64 = 0.15;
    let mut failures = 0usize;
    let mut run_jsons = Vec::new();
    let mut last_prom = String::new();

    for &seed in seeds {
        let obs = exp::e12_obs(seed, RATE, 4, 30);

        let mut stage_rows = Vec::new();
        for (name, h) in &obs.snapshot.histograms {
            stage_rows.push(vec![
                name.clone(),
                h.count.to_string(),
                opt_ns(h.p50()),
                opt_ns(h.p95()),
                opt_ns(h.p99()),
                opt_ns((h.count > 0).then_some(h.max)),
            ]);
        }
        print_table(
            &format!("E12 — per-stage latency (seed {seed}, fault rate {RATE})"),
            &["stage", "count", "p50", "p95", "p99", "max"],
            &stage_rows,
        );

        let mut cause_rows = Vec::new();
        for (name, v) in &obs.snapshot.counters {
            let keep = name.starts_with("pm.reject.")
                || name.starts_with("bus.fault.")
                || name.starts_with("client.")
                || name.starts_with("pm.retry.");
            if keep {
                cause_rows.push(vec![name.clone(), v.to_string()]);
            }
        }
        print_table(
            &format!("E12 — rejection causes, faults and retries (seed {seed})"),
            &["counter", "count"],
            &cause_rows,
        );

        let life = &obs.lifecycle;
        println!(
            "\nlifecycle audit seed={seed}: promises={} complete={} violations={} \
             journal(granted={} released={} expired={})",
            life.promises,
            life.complete,
            life.violations.len(),
            obs.facts.granted.len(),
            obs.facts.released.len(),
            obs.facts.expired.len(),
        );
        for v in &life.violations {
            eprintln!("  VIOLATION: {v}");
        }

        for stage in REQUIRED_STAGES {
            let empty = obs.snapshot.histogram(stage).is_none_or(|h| h.is_empty());
            if empty {
                eprintln!("obs: required stage histogram {stage} is EMPTY (seed {seed})");
                failures += 1;
            }
        }
        if !obs.ok() {
            eprintln!(
                "obs: audit FAILED (seed {seed}): sweep violations={} double_grants={} \
                 lifecycle violations={}",
                obs.sweep.violations,
                obs.sweep.double_grants,
                life.violations.len()
            );
            failures += 1;
        }

        let r = &obs.sweep;
        let dedup_ratio =
            (r.granted + r.deduped > 0).then(|| r.deduped as f64 / (r.granted + r.deduped) as f64);
        run_jsons.push(format!(
            "{{\"seed\":{seed},\"fault_rate\":{RATE},\"telemetry\":{},\
             \"lifecycle\":{{\"promises\":{},\"complete\":{},\"violations\":{}}},\
             \"sweep\":{{\"granted\":{},\"purchased\":{},\"retries\":{},\"deduped\":{},\
             \"violations\":{},\"double_grants\":{},\"leaked\":{}}},\
             \"dedup_ratio\":{}}}",
            to_json(&obs.snapshot),
            life.promises,
            life.complete,
            life.violations.len(),
            r.granted,
            r.purchased_ops,
            r.retries,
            r.deduped,
            r.violations,
            r.double_grants,
            r.live_after_reap,
            dedup_ratio.map_or("null".into(), |d| format!("{d:.4}")),
        ));
        last_prom = to_prometheus(&obs.snapshot);
    }

    // Hard gate on the DESIGN §12 bar: the median paired delta must come
    // in at or under 5%. A single attempt on a loaded box can exceed the
    // bar on scheduler noise alone, so the gate takes up to three
    // independent attempts and passes if any lands inside — a genuine
    // regression fails every attempt, noise doesn't.
    const OVERHEAD_BAR_PCT: f64 = 5.0;
    const OVERHEAD_ATTEMPTS: usize = 3;
    let mut o = exp::e12_overhead(8, 2_000, 10_000_000, 8);
    for attempt in 1..OVERHEAD_ATTEMPTS {
        if o.overhead_pct() <= OVERHEAD_BAR_PCT {
            break;
        }
        eprintln!(
            "obs: overhead attempt {attempt} measured {:.1}% (> {OVERHEAD_BAR_PCT}%), retrying",
            o.overhead_pct()
        );
        o = exp::e12_overhead(8, 2_000, 10_000_000, 8);
    }
    print_table(
        "E12b — telemetry overhead on the E4b footprint workload",
        &["variant", "median ops/s"],
        &[
            vec!["telemetry off".into(), f(o.plain, 0)],
            vec!["telemetry on".into(), f(o.instrumented, 0)],
        ],
    );
    println!(
        "overhead: {:.1}% (median of 9 paired off/on rounds after warmup; \
         acceptance bar <={OVERHEAD_BAR_PCT}%, gated, best of {OVERHEAD_ATTEMPTS} attempts)",
        o.overhead_pct()
    );
    if o.overhead_pct() > OVERHEAD_BAR_PCT {
        eprintln!(
            "obs: telemetry overhead {:.1}% EXCEEDS the {OVERHEAD_BAR_PCT}% bar \
             on all {OVERHEAD_ATTEMPTS} attempts",
            o.overhead_pct()
        );
        failures += 1;
    }

    let json = format!(
        "{{\"experiment\":\"e12-obs\",\"runs\":[{}],\
         \"overhead\":{{\"plain_ops_s\":{:.0},\"instrumented_ops_s\":{:.0},\
         \"overhead_pct\":{:.2}}}}}\n",
        run_jsons.join(","),
        o.plain,
        o.instrumented,
        o.overhead_pct(),
    );
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(json_path, json).expect("write BENCH_obs.json");
    let prom_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.prom");
    std::fs::write(prom_path, last_prom).expect("write BENCH_obs.prom");
    println!("\nwrote BENCH_obs.json and BENCH_obs.prom");

    if failures > 0 {
        eprintln!("obs: {failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("obs: all checks passed");
}

/// E17 doctor mode: the health-plane confusion matrix. For every seed ×
/// fault rate (0 / 10 / 20%) the three doctor sweeps run with the
/// watchdogs armed — delay faults vs the SLO burn monitor, a stranded
/// lease rebalance vs the conservation probe, a wedged follower plus
/// aging in-doubt holds vs their watchdogs. The gate demands zero missed
/// detections, zero false positives (every rate-0 run must be silent),
/// and every incident report parseable as JSON. Writes
/// `BENCH_doctor.json`.
fn doctor_mode(seeds: &[u64]) {
    const RATES: [f64; 3] = [0.0, 0.1, 0.2];
    let mut failures = 0usize;
    let mut cell_jsons = Vec::new();
    let mut matrix_rows = Vec::new();
    let mut total_incidents = 0usize;

    for &seed in seeds {
        for rate in RATES {
            let reports = [
                promises_sim::run_doctor_fault_sweep(seed, rate, rate > 0.0),
                promises_sim::run_doctor_lease_sweep(seed, rate),
                promises_sim::run_doctor_failover_sweep(seed, rate),
            ];
            for r in reports {
                let mut invalid = 0usize;
                for incident in &r.incidents {
                    if let Err(e) = promises_telemetry::export::validate_json(incident) {
                        eprintln!(
                            "doctor: INVALID incident JSON ({} seed={seed} rate={rate}): {e}",
                            r.sweep
                        );
                        invalid += 1;
                    }
                }
                total_incidents += r.incidents.len();
                let ok = r.clean() && invalid == 0;
                matrix_rows.push(vec![
                    r.sweep.to_string(),
                    seed.to_string(),
                    format!("{rate:.2}"),
                    if r.expected.is_empty() {
                        "-".into()
                    } else {
                        r.expected.join(" ")
                    },
                    if r.tripped.is_empty() {
                        "-".into()
                    } else {
                        r.tripped.join(" ")
                    },
                    r.incidents.len().to_string(),
                    if ok { "OK" } else { "FAIL" }.into(),
                ]);
                if !ok {
                    eprintln!(
                        "doctor: {} seed={seed} rate={rate} FAILED: missed={:?} unexpected={:?} \
                         invalid_incidents={invalid}",
                        r.sweep,
                        r.missed(),
                        r.unexpected()
                    );
                    failures += 1;
                }
                let quote = |v: &[String]| {
                    v.iter()
                        .map(|s| format!("\"{s}\""))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                let expected: Vec<String> = r.expected.iter().map(|s| s.to_string()).collect();
                cell_jsons.push(format!(
                    "{{\"sweep\":\"{}\",\"seed\":{seed},\"fault_rate\":{rate},\"ticks\":{},\
                     \"expected\":[{}],\"tripped\":[{}],\"incidents\":{},\"missed\":{},\
                     \"unexpected\":{},\"fail_fast\":{{\"engaged\":{},\"cleared\":{}}},\
                     \"sample_incident\":{}}}",
                    r.sweep,
                    r.ticks,
                    quote(&expected),
                    quote(&r.tripped),
                    r.incidents.len(),
                    r.missed().len(),
                    r.unexpected().len(),
                    r.fail_fast_engaged,
                    r.fail_fast_cleared,
                    r.incidents.first().map_or("null", |s| s.as_str()),
                ));
            }
        }
    }

    print_table(
        "E17 — health-plane confusion matrix (doctor sweeps)",
        &[
            "sweep",
            "seed",
            "rate",
            "expected",
            "tripped",
            "incidents",
            "gate",
        ],
        &matrix_rows,
    );
    println!("doctor: {total_incidents} incident report(s) cut, all validated as JSON");

    let json = format!(
        "{{\"experiment\":\"e17-doctor\",\"cells\":[{}],\"total_incidents\":{total_incidents},\
         \"failures\":{failures}}}\n",
        cell_jsons.join(","),
    );
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_doctor.json");
    std::fs::write(json_path, json).expect("write BENCH_doctor.json");
    println!("wrote BENCH_doctor.json");

    if failures > 0 {
        eprintln!("doctor: {failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("doctor: all checks passed");
}

/// E18 workloads mode: the production workload plane. Per seed, the
/// flash-sale scenario (gated on the normal-phase p99 SLO at the offered
/// rate, on degraded mode engaging during overload AND clearing after,
/// and on load being shed), the travel-booking scenario at 0/10/20%
/// wire-fault rates (gated on ≥95% completion with zero partial grants,
/// double grants, oversells, and leaks), and the 6-failure-class ×
/// 2-scenario error-path matrix (gated on zero failing cells). Writes
/// `BENCH_workloads.json` and `BENCH_workloads.prom` and exits non-zero
/// if any gate fails.
fn workloads_mode(seeds: &[u64]) {
    use promises_workloads::{
        run_error_path_matrix, run_flash_sale, run_travel_booking, CellStatus, FlashSaleConfig,
        TravelConfig,
    };

    const TRAVEL_FAULT_RATES: [f64; 3] = [0.0, 0.1, 0.2];
    const MIN_TRAVEL_COMPLETION: f64 = 0.95;
    let mut failures = 0usize;
    let tel = promises_telemetry::Telemetry::new();

    let mut flash_rows = Vec::new();
    let mut flash_json = Vec::new();
    for &seed in seeds {
        let r = run_flash_sale(&FlashSaleConfig {
            seed,
            ..FlashSaleConfig::default()
        });
        let causes = r
            .reject_causes
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        flash_rows.push(vec![
            seed.to_string(),
            opt_ns(Some(r.verdict.p99_ns)),
            opt_ns(Some(r.verdict.p99_ns_max)),
            f(r.verdict.goodput_ratio * 100.0, 1),
            r.degraded_engaged.to_string(),
            r.degraded_cleared.to_string(),
            r.shed_rejections.to_string(),
            if r.passed() { "OK" } else { "FAIL" }.into(),
        ]);
        println!(
            "flash-sale seed={seed}: {} | causes: {causes}",
            r.verdict.summary()
        );
        if !r.passed() {
            eprintln!(
                "workloads: flash-sale gate FAILED (seed {seed}): slo_passed={} \
                 degraded_engaged={} degraded_cleared={} shed={}",
                r.verdict.passed, r.degraded_engaged, r.degraded_cleared, r.shed_rejections
            );
            failures += 1;
        }
        tel.set_gauge("workload.flash_sale.p99_ns", r.verdict.p99_ns);
        tel.set_gauge("workload.flash_sale.shed_rejections", r.shed_rejections);
        tel.set_gauge(
            "workload.flash_sale.goodput_ppm",
            (r.verdict.goodput_ratio * 1e6) as u64,
        );
        let cause_json = r
            .reject_causes
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        flash_json.push(format!(
            "{{\"seed\":{seed},\"p99_ns\":{},\"p99_ns_max\":{},\"goodput_ratio\":{:.4},\
             \"slo_passed\":{},\"degraded_engaged\":{},\"degraded_cleared\":{},\
             \"shed_rejections\":{},\"reject_causes\":{{{cause_json}}},\"passed\":{}}}",
            r.verdict.p99_ns,
            r.verdict.p99_ns_max,
            r.verdict.goodput_ratio,
            r.verdict.passed,
            r.degraded_engaged,
            r.degraded_cleared,
            r.shed_rejections,
            r.passed(),
        ));
    }
    print_table(
        "E18a — flash sale: open-loop SLO gate, overload shedding, degraded-mode arc",
        &[
            "seed",
            "p99",
            "p99 max",
            "goodput %",
            "engaged",
            "cleared",
            "shed",
            "gate",
        ],
        &flash_rows,
    );

    let mut travel_rows = Vec::new();
    let mut travel_json = Vec::new();
    for &seed in seeds {
        for rate in TRAVEL_FAULT_RATES {
            let r = run_travel_booking(&TravelConfig {
                seed,
                fault_rate: rate,
                ..TravelConfig::default()
            });
            let ok = r.completion_ratio() >= MIN_TRAVEL_COMPLETION && r.audits_clean();
            travel_rows.push(vec![
                seed.to_string(),
                f(rate, 2),
                r.completed().to_string(),
                f(r.completion_ratio() * 100.0, 1),
                r.negotiated_down.to_string(),
                r.desk_completed.to_string(),
                r.transport_failures.to_string(),
                format!(
                    "{}/{}/{}/{}",
                    r.partial_grants, r.double_grants, r.oversells, r.live_after_reap
                ),
                if ok { "OK" } else { "FAIL" }.into(),
            ]);
            if !ok {
                eprintln!(
                    "workloads: travel gate FAILED (seed {seed} rate {rate:.2}): \
                     completion={:.3} partial={} double={} oversell={} leaked={} state={}",
                    r.completion_ratio(),
                    r.partial_grants,
                    r.double_grants,
                    r.oversells,
                    r.live_after_reap,
                    r.state_after_reap
                );
                failures += 1;
            }
            tel.set_gauge(
                "workload.travel.completion_ppm",
                (r.completion_ratio() * 1e6) as u64,
            );
            tel.set_gauge("workload.travel.negotiated_down", r.negotiated_down);
            travel_json.push(format!(
                "{{\"seed\":{seed},\"fault_rate\":{rate:.2},\"completed\":{},\
                 \"completion_ratio\":{:.4},\"granted_full\":{},\"negotiated_down\":{},\
                 \"desk_completed\":{},\"rejected\":{},\"transport_failures\":{},\
                 \"partial_grants\":{},\"double_grants\":{},\"oversells\":{},\
                 \"leaked\":{},\"state_after_reap\":{},\"passed\":{ok}}}",
                r.completed(),
                r.completion_ratio(),
                r.granted_full,
                r.negotiated_down,
                r.desk_completed,
                r.rejected,
                r.transport_failures,
                r.partial_grants,
                r.double_grants,
                r.oversells,
                r.live_after_reap,
                r.state_after_reap,
            ));
        }
    }
    print_table(
        &format!(
            "E18b — travel booking: 3-leg atomic grants under wire faults \
             (gate: completion >= {:.0}%, audits p/d/o/l all zero)",
            MIN_TRAVEL_COMPLETION * 100.0
        ),
        &[
            "seed",
            "rate",
            "completed",
            "completion %",
            "negotiated",
            "via desk",
            "transport err",
            "p/d/o/l",
            "gate",
        ],
        &travel_rows,
    );

    let mut matrix_json = Vec::new();
    for &seed in seeds {
        let m = run_error_path_matrix(seed);
        let mut rows = Vec::new();
        let mut cell_jsons = Vec::new();
        for c in &m.cells {
            let (status, note) = match &c.status {
                CellStatus::Pass => ("pass", String::new()),
                CellStatus::Skip(why) => ("skip", why.clone()),
                CellStatus::Fail(why) => ("fail", why.clone()),
            };
            rows.push(vec![
                c.failure.name().into(),
                c.scenario.name().into(),
                c.status.legend().into(),
                if note.is_empty() {
                    c.detail.clone()
                } else {
                    note.clone()
                },
            ]);
            cell_jsons.push(format!(
                "{{\"failure\":\"{}\",\"scenario\":\"{}\",\"status\":\"{status}\",\
                 \"detail\":\"{}\"}}",
                c.failure.name(),
                c.scenario.name(),
                c.detail.replace('"', "'"),
            ));
        }
        print_table(
            &format!("E18c — error-path matrix (seed {seed}; [x] pass, [-] skip, [!] fail)"),
            &["failure class", "scenario", "cell", "detail"],
            &rows,
        );
        let bad = m.failures().len();
        if !m.all_clean() {
            eprintln!("workloads: error-path matrix has {bad} failing cell(s) (seed {seed})");
            failures += 1;
        }
        tel.set_gauge("workload.matrix.cells", m.cells.len() as u64);
        tel.set_gauge("workload.matrix.failing_cells", bad as u64);
        matrix_json.push(format!(
            "{{\"seed\":{seed},\"cells\":[{}],\"failing_cells\":{bad}}}",
            cell_jsons.join(","),
        ));
    }

    let json = format!(
        "{{\"experiment\":\"e18-workloads\",\
         \"gates\":{{\"min_travel_completion\":{MIN_TRAVEL_COMPLETION}}},\
         \"flash_sale\":[{}],\"travel\":[{}],\"matrix\":[{}]}}\n",
        flash_json.join(","),
        travel_json.join(","),
        matrix_json.join(","),
    );
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_workloads.json");
    std::fs::write(json_path, json).expect("write BENCH_workloads.json");
    let prom_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_workloads.prom");
    std::fs::write(prom_path, to_prometheus(&tel.snapshot())).expect("write BENCH_workloads.prom");
    println!("\nwrote BENCH_workloads.json and BENCH_workloads.prom");

    if failures > 0 {
        eprintln!("workloads: {failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("workloads: all checks passed");
}

fn main() {
    let args: Vec<String> = env::args().skip(1).map(|a| a.to_lowercase()).collect();
    if args.iter().any(|a| a == "--faults") {
        let seeds: Vec<u64> = args.iter().filter_map(|a| a.parse().ok()).collect();
        faults_smoke(if seeds.is_empty() {
            &[3, 1117, 90210]
        } else {
            &seeds
        });
        return;
    }
    if args.iter().any(|a| a == "--obs") {
        let seeds: Vec<u64> = args.iter().filter_map(|a| a.parse().ok()).collect();
        obs_mode(if seeds.is_empty() {
            &[2007, 4711]
        } else {
            &seeds
        });
        return;
    }
    if args.iter().any(|a| a == "--recovery") {
        let seeds: Vec<u64> = args.iter().filter_map(|a| a.parse().ok()).collect();
        recovery_mode(if seeds.is_empty() {
            &[2007, 31337, 90210]
        } else {
            &seeds
        });
        return;
    }
    if args.iter().any(|a| a == "--cluster") {
        let seeds: Vec<u64> = args.iter().filter_map(|a| a.parse().ok()).collect();
        cluster_mode(if seeds.is_empty() {
            &[2007, 31337, 90210]
        } else {
            &seeds
        });
        return;
    }
    if args.iter().any(|a| a == "--threads") {
        let seeds: Vec<u64> = args.iter().filter_map(|a| a.parse().ok()).collect();
        threads_mode(if seeds.is_empty() {
            &[2007, 31337, 90210]
        } else {
            &seeds
        });
        return;
    }
    if args.iter().any(|a| a == "--leases") {
        let seeds: Vec<u64> = args.iter().filter_map(|a| a.parse().ok()).collect();
        leases_mode(if seeds.is_empty() {
            &[2007, 31337, 90210]
        } else {
            &seeds
        });
        return;
    }
    if args.iter().any(|a| a == "--doctor") {
        let seeds: Vec<u64> = args.iter().filter_map(|a| a.parse().ok()).collect();
        doctor_mode(if seeds.is_empty() {
            &[2007, 31337, 90210]
        } else {
            &seeds
        });
        return;
    }
    if args.iter().any(|a| a == "--workloads") {
        let seeds: Vec<u64> = args.iter().filter_map(|a| a.parse().ok()).collect();
        workloads_mode(if seeds.is_empty() {
            &[2007, 31337, 90210]
        } else {
            &seeds
        });
        return;
    }
    if args.iter().any(|a| a == "--failover") {
        let seeds: Vec<u64> = args.iter().filter_map(|a| a.parse().ok()).collect();
        failover_mode(if seeds.is_empty() {
            &[2007, 31337, 90210]
        } else {
            &seeds
        });
        return;
    }
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);

    println!("# Promises experiment suite");
    println!("# (one table per experiment in DESIGN.md section 4)");

    if want("e1") {
        let mean = exp::e1_figure1(2_000);
        print_table(
            "E1 (Figure 1) — ordering-process walkthrough latency",
            &["metric", "value"],
            &[
                vec!["promise+purchase+release cycle".into(), us(mean)],
                vec!["iterations".into(), "2000".into()],
            ],
        );
    }

    if want("e2") {
        let mut rows = Vec::new();
        for clients in [1usize, 2, 4, 8, 16] {
            let (tput, ok) = exp::e2_pipeline(clients, 200);
            rows.push(vec![clients.to_string(), f(tput, 0), f(ok * 100.0, 1)]);
        }
        print_table(
            "E2 (Figure 2) — wire pipeline throughput vs concurrent clients",
            &["clients", "ops/s", "ok %"],
            &rows,
        );
    }

    if want("e3") {
        let mut rows = Vec::new();
        for live in [10usize, 100, 500, 1000] {
            let a = exp::e3_check_cost(View::Anonymous, live, 200);
            let n = exp::e3_check_cost(View::Named, live, 50);
            let p = exp::e3_check_cost(View::Property, live.min(500), 20);
            rows.push(vec![live.to_string(), us(a), us(n), us(p)]);
        }
        print_table(
            "E3 — grant+release cost vs live promises, by resource view",
            &["live promises", "anonymous", "named", "property"],
            &rows,
        );
    }

    if want("e4") {
        let mut rows = Vec::new();
        for clients in [4usize, 16, 48] {
            let cfg = exp::e4_config(clients, 25);
            for sys in System::ALL {
                let r = exp::run_system(sys, &cfg, 1_000_000);
                rows.push(vec![
                    clients.to_string(),
                    sys.name().into(),
                    f(r.throughput, 0),
                    r.completed.to_string(),
                    r.failed_fast.to_string(),
                    r.failed_late.to_string(),
                    r.deadlocks.to_string(),
                    opt_us(r.avg_latency),
                ]);
            }
        }
        print_table(
            "E4 — contention: throughput under hotspot skew (ample stock)",
            &[
                "clients",
                "system",
                "ops/s",
                "done",
                "fail-fast",
                "fail-late",
                "deadlock",
                "latency",
            ],
            &rows,
        );
    }

    if want("e5") {
        let mut rows = Vec::new();
        for clients in [4usize, 8, 16] {
            let cfg = exp::e5_config(clients, 20);
            for sys in [System::Locks, System::Promises] {
                let r = exp::run_system(sys, &cfg, 1_000_000);
                rows.push(vec![
                    clients.to_string(),
                    sys.name().into(),
                    r.completed.to_string(),
                    r.deadlocks.to_string(),
                    f(r.wall.as_secs_f64(), 2),
                ]);
            }
        }
        print_table(
            "E5 — multi-resource ops: 2PL deadlocks vs promise rejection",
            &["clients", "system", "completed", "deadlocks", "wall s"],
            &rows,
        );
    }

    if want("e6") {
        let mut rows = Vec::new();
        let cfg = exp::e6_config(16, 25);
        for sys in System::ALL {
            let r = exp::run_system(sys, &cfg, 400); // scarce: demand ~ 2.5x stock
            rows.push(vec![
                sys.name().into(),
                r.completed.to_string(),
                r.failed_fast.to_string(),
                r.failed_late.to_string(),
                r.deadlocks.to_string(),
                f(r.goodput_ratio() * 100.0, 1),
            ]);
        }
        print_table(
            "E6 — scarce anonymous stock: admission behaviour (escrow vs promises identical; optimistic fails late)",
            &["system", "completed", "fail-fast", "fail-late", "deadlock", "goodput %"],
            &rows,
        );
    }

    if want("e7") {
        let mut rows = Vec::new();
        for rooms in [100usize, 400, 1000] {
            for (name, strategy) in [
                ("allocated-tags", CheckStrategy::AllocatedTags),
                ("tentative", CheckStrategy::TentativeAllocation),
                ("satisfiability", CheckStrategy::Satisfiability),
            ] {
                let o = exp::e7_strategy(rooms, strategy);
                rows.push(vec![
                    rooms.to_string(),
                    name.into(),
                    o.granted.to_string(),
                    o.rejected.to_string(),
                    us(o.mean_us),
                ]);
            }
        }
        print_table(
            "E7 — property-view strategies on an adversarial feasible sequence",
            &["rooms", "strategy", "granted", "rejected", "mean/request"],
            &rows,
        );
    }

    if want("e8") {
        let atomic = exp::e8_race(60, true);
        let naive = exp::e8_race(60, false);
        print_table(
            "E8 — action+release atomicity vs naive release-then-act (60 races)",
            &[
                "variant",
                "protected ok",
                "protected lost",
                "competitor grabs",
            ],
            &[
                vec![
                    "atomic (§4)".into(),
                    atomic.protected_ok.to_string(),
                    atomic.protected_lost.to_string(),
                    atomic.competitor_got.to_string(),
                ],
                vec![
                    "naive two-step".into(),
                    naive.protected_ok.to_string(),
                    naive.protected_lost.to_string(),
                    naive.competitor_got.to_string(),
                ],
            ],
        );
    }

    if want("e9") {
        let mut rows = Vec::new();
        for ttl in [5u64, 20, 100, 1_000, 1_000_000] {
            let o = exp::e9_ttl(ttl, 200, 50, 4);
            rows.push(vec![
                format!("{ttl}"),
                o.completed.to_string(),
                o.expired.to_string(),
                o.latecomer_rejections.to_string(),
            ]);
        }
        print_table(
            "E9 — promise TTL vs completion and latecomer starvation (think=50ms-on-manual-clock, 25% abandon)",
            &["ttl ms", "completed", "promise-expired", "latecomer rejections"],
            &rows,
        );
    }

    if want("e10") {
        let mut rows = Vec::new();
        for depth in [0usize, 1, 2, 4, 8] {
            let mean = exp::e10_delegation(depth, 300);
            rows.push(vec![depth.to_string(), us(mean)]);
        }
        print_table(
            "E10 — delegation chain depth vs grant+release latency",
            &["chain depth", "mean grant+release"],
            &rows,
        );
    }

    if want("e11") {
        let mut rows = Vec::new();
        for row in exp::e11_fault_sweep(&[0.0, 0.05, 0.10, 0.20], 4, 50) {
            let r = &row.report;
            rows.push(vec![
                format!("{:.2}", row.rate),
                f(row.goodput, 0),
                r.granted.to_string(),
                r.purchased_ops.to_string(),
                r.retries.to_string(),
                r.deduped.to_string(),
                row.dedup_ratio
                    .map(|d| f(d * 100.0, 1))
                    .unwrap_or_else(|| "n/a".into()),
                r.violations.to_string(),
                r.double_grants.to_string(),
                r.live_after_reap.to_string(),
            ]);
        }
        print_table(
            "E11 — fault sweep: goodput and guarantee audits vs fault rate (violations and double-grants must be 0)",
            &[
                "fault rate",
                "goodput ops/s",
                "granted",
                "purchased",
                "retries",
                "deduped",
                "dedup %",
                "violations",
                "double grants",
                "leaked",
            ],
            &rows,
        );
    }

    println!("\n(done)");
}
