//! Regenerates every experiment table in EXPERIMENTS.md.
//!
//! Run with: `cargo run --release -p promises-bench --bin experiments`
//! (optionally pass experiment ids, e.g. `e4 e5`, to run a subset;
//! `--faults` runs a fast fault-injection smoke check and exits non-zero
//! if any guarantee audit fails).

use std::env;

use promises_bench::exp::{self, System, View};
use promises_bench::table::{f, print_table, us};
use promises_core::CheckStrategy;

/// Fast fault smoke check for CI: a small sweep across several seeds;
/// any promise violation, double grant, or leaked promise is fatal.
fn faults_smoke(seeds: &[u64]) {
    let mut failures = 0usize;
    for &seed in seeds {
        for rate in [0.05, 0.15] {
            let cfg = promises_sim::FaultSweepConfig {
                clients: 3,
                ops_per_client: 12,
                seed,
                ..promises_sim::FaultSweepConfig::default()
            };
            let scenario =
                promises_faults::FaultScenario::uniform(seed, rate).with_storage_errors(rate);
            let r = promises_sim::run_fault_sweep(scenario, &cfg);
            let ok = r.violations == 0 && r.double_grants == 0 && r.live_after_reap == 0;
            println!(
                "faults-smoke seed={seed} rate={rate:.2}: granted={} purchased={} retries={} \
                 deduped={} violations={} double_grants={} leaked={} -> {}",
                r.granted,
                r.purchased_ops,
                r.retries,
                r.deduped,
                r.violations,
                r.double_grants,
                r.live_after_reap,
                if ok { "OK" } else { "FAIL" }
            );
            if !ok {
                failures += 1;
            }
        }
        let crash = promises_sim::run_crash_restart(seed, 12, 3_700_000);
        let ok = crash.state_matches() && crash.pruned_while_down > 0;
        println!(
            "faults-smoke crash-restart seed={seed}: replayed={} recovered={} pruned={} -> {}",
            crash.recovery.replayed,
            crash.recovery.recovered,
            crash.recovery.pruned,
            if ok { "OK" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("faults-smoke: {failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("faults-smoke: all checks passed");
}

fn main() {
    let args: Vec<String> = env::args().skip(1).map(|a| a.to_lowercase()).collect();
    if args.iter().any(|a| a == "--faults") {
        let seeds: Vec<u64> = args.iter().filter_map(|a| a.parse().ok()).collect();
        faults_smoke(if seeds.is_empty() {
            &[3, 1117, 90210]
        } else {
            &seeds
        });
        return;
    }
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);

    println!("# Promises experiment suite");
    println!("# (one table per experiment in DESIGN.md section 4)");

    if want("e1") {
        let mean = exp::e1_figure1(2_000);
        print_table(
            "E1 (Figure 1) — ordering-process walkthrough latency",
            &["metric", "value"],
            &[
                vec!["promise+purchase+release cycle".into(), us(mean)],
                vec!["iterations".into(), "2000".into()],
            ],
        );
    }

    if want("e2") {
        let mut rows = Vec::new();
        for clients in [1usize, 2, 4, 8, 16] {
            let (tput, ok) = exp::e2_pipeline(clients, 200);
            rows.push(vec![clients.to_string(), f(tput, 0), f(ok * 100.0, 1)]);
        }
        print_table(
            "E2 (Figure 2) — wire pipeline throughput vs concurrent clients",
            &["clients", "ops/s", "ok %"],
            &rows,
        );
    }

    if want("e3") {
        let mut rows = Vec::new();
        for live in [10usize, 100, 500, 1000] {
            let a = exp::e3_check_cost(View::Anonymous, live, 200);
            let n = exp::e3_check_cost(View::Named, live, 50);
            let p = exp::e3_check_cost(View::Property, live.min(500), 20);
            rows.push(vec![live.to_string(), us(a), us(n), us(p)]);
        }
        print_table(
            "E3 — grant+release cost vs live promises, by resource view",
            &["live promises", "anonymous", "named", "property"],
            &rows,
        );
    }

    if want("e4") {
        let mut rows = Vec::new();
        for clients in [4usize, 16, 48] {
            let cfg = exp::e4_config(clients, 25);
            for sys in System::ALL {
                let r = exp::run_system(sys, &cfg, 1_000_000);
                rows.push(vec![
                    clients.to_string(),
                    sys.name().into(),
                    f(r.throughput, 0),
                    r.completed.to_string(),
                    r.failed_fast.to_string(),
                    r.failed_late.to_string(),
                    r.deadlocks.to_string(),
                    us(r.avg_latency.as_micros() as f64),
                ]);
            }
        }
        print_table(
            "E4 — contention: throughput under hotspot skew (ample stock)",
            &[
                "clients",
                "system",
                "ops/s",
                "done",
                "fail-fast",
                "fail-late",
                "deadlock",
                "latency",
            ],
            &rows,
        );
    }

    if want("e5") {
        let mut rows = Vec::new();
        for clients in [4usize, 8, 16] {
            let cfg = exp::e5_config(clients, 20);
            for sys in [System::Locks, System::Promises] {
                let r = exp::run_system(sys, &cfg, 1_000_000);
                rows.push(vec![
                    clients.to_string(),
                    sys.name().into(),
                    r.completed.to_string(),
                    r.deadlocks.to_string(),
                    f(r.wall.as_secs_f64(), 2),
                ]);
            }
        }
        print_table(
            "E5 — multi-resource ops: 2PL deadlocks vs promise rejection",
            &["clients", "system", "completed", "deadlocks", "wall s"],
            &rows,
        );
    }

    if want("e6") {
        let mut rows = Vec::new();
        let cfg = exp::e6_config(16, 25);
        for sys in System::ALL {
            let r = exp::run_system(sys, &cfg, 400); // scarce: demand ~ 2.5x stock
            rows.push(vec![
                sys.name().into(),
                r.completed.to_string(),
                r.failed_fast.to_string(),
                r.failed_late.to_string(),
                r.deadlocks.to_string(),
                f(r.goodput_ratio() * 100.0, 1),
            ]);
        }
        print_table(
            "E6 — scarce anonymous stock: admission behaviour (escrow vs promises identical; optimistic fails late)",
            &["system", "completed", "fail-fast", "fail-late", "deadlock", "goodput %"],
            &rows,
        );
    }

    if want("e7") {
        let mut rows = Vec::new();
        for rooms in [100usize, 400, 1000] {
            for (name, strategy) in [
                ("allocated-tags", CheckStrategy::AllocatedTags),
                ("tentative", CheckStrategy::TentativeAllocation),
                ("satisfiability", CheckStrategy::Satisfiability),
            ] {
                let o = exp::e7_strategy(rooms, strategy);
                rows.push(vec![
                    rooms.to_string(),
                    name.into(),
                    o.granted.to_string(),
                    o.rejected.to_string(),
                    us(o.mean_us),
                ]);
            }
        }
        print_table(
            "E7 — property-view strategies on an adversarial feasible sequence",
            &["rooms", "strategy", "granted", "rejected", "mean/request"],
            &rows,
        );
    }

    if want("e8") {
        let atomic = exp::e8_race(60, true);
        let naive = exp::e8_race(60, false);
        print_table(
            "E8 — action+release atomicity vs naive release-then-act (60 races)",
            &[
                "variant",
                "protected ok",
                "protected lost",
                "competitor grabs",
            ],
            &[
                vec![
                    "atomic (§4)".into(),
                    atomic.protected_ok.to_string(),
                    atomic.protected_lost.to_string(),
                    atomic.competitor_got.to_string(),
                ],
                vec![
                    "naive two-step".into(),
                    naive.protected_ok.to_string(),
                    naive.protected_lost.to_string(),
                    naive.competitor_got.to_string(),
                ],
            ],
        );
    }

    if want("e9") {
        let mut rows = Vec::new();
        for ttl in [5u64, 20, 100, 1_000, 1_000_000] {
            let o = exp::e9_ttl(ttl, 200, 50, 4);
            rows.push(vec![
                format!("{ttl}"),
                o.completed.to_string(),
                o.expired.to_string(),
                o.latecomer_rejections.to_string(),
            ]);
        }
        print_table(
            "E9 — promise TTL vs completion and latecomer starvation (think=50ms-on-manual-clock, 25% abandon)",
            &["ttl ms", "completed", "promise-expired", "latecomer rejections"],
            &rows,
        );
    }

    if want("e10") {
        let mut rows = Vec::new();
        for depth in [0usize, 1, 2, 4, 8] {
            let mean = exp::e10_delegation(depth, 300);
            rows.push(vec![depth.to_string(), us(mean)]);
        }
        print_table(
            "E10 — delegation chain depth vs grant+release latency",
            &["chain depth", "mean grant+release"],
            &rows,
        );
    }

    if want("e11") {
        let mut rows = Vec::new();
        for row in exp::e11_fault_sweep(&[0.0, 0.05, 0.10, 0.20], 4, 50) {
            let r = &row.report;
            rows.push(vec![
                format!("{:.2}", row.rate),
                f(row.goodput, 0),
                r.granted.to_string(),
                r.purchased_ops.to_string(),
                r.retries.to_string(),
                r.deduped.to_string(),
                r.violations.to_string(),
                r.double_grants.to_string(),
                r.live_after_reap.to_string(),
            ]);
        }
        print_table(
            "E11 — fault sweep: goodput and guarantee audits vs fault rate (violations and double-grants must be 0)",
            &[
                "fault rate",
                "goodput ops/s",
                "granted",
                "purchased",
                "retries",
                "deduped",
                "violations",
                "double grants",
                "leaked",
            ],
            &rows,
        );
    }

    println!("\n(done)");
}
