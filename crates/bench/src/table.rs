//! Minimal fixed-width table printer for experiment output.

/// Prints a titled table: header row plus data rows, columns padded to
/// the widest cell.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats microseconds as a human-readable duration.
pub fn us(v: f64) -> String {
    if v >= 1_000_000.0 {
        format!("{:.2}s", v / 1e6)
    } else if v >= 1_000.0 {
        format!("{:.2}ms", v / 1e3)
    } else {
        format!("{v:.1}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(us(12.3), "12.3us");
        assert_eq!(us(12_300.0), "12.30ms");
        assert_eq!(us(2_500_000.0), "2.50s");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "demo",
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
