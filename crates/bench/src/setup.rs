//! Shared builders for benchmark fixtures.

use std::sync::Arc;

use promises_core::{CheckStrategy, PoolSchema, PromiseManager, PropertyDef, SystemClock};
use promises_rm::{Record, ResourceManager};
use promises_services::Merchant;

/// A fresh promise manager on its own RM with a wall clock.
pub fn fresh_pm() -> Arc<PromiseManager> {
    Arc::new(PromiseManager::new(
        Arc::new(ResourceManager::new()),
        Arc::new(SystemClock::new()),
    ))
}

/// A merchant stocked with one SKU.
pub fn merchant_with_stock(sku: &str, qty: u64) -> Merchant {
    let m = Merchant::new(fresh_pm());
    m.stock_sku(sku, qty).expect("fresh merchant");
    m
}

/// A manager with one quantity pool.
pub fn pm_with_qty_pool(pool: &str, qty: u64) -> Arc<PromiseManager> {
    let pm = fresh_pm();
    pm.register_pool(PoolSchema::quantity(pool));
    pm.seed_quantity(pool, qty).expect("fresh pool");
    pm
}

/// A manager with a hotel-style instance pool of `rooms` rooms. Room `i`
/// has `floor = i / 20`, `view = (i % 3 == 0)` and an ordered class.
pub fn pm_with_rooms(pool: &str, rooms: usize, strategy: CheckStrategy) -> Arc<PromiseManager> {
    let pm = fresh_pm();
    pm.register_pool(
        PoolSchema::instances(
            pool,
            vec![
                PropertyDef::plain("floor"),
                PropertyDef::plain("view"),
                PropertyDef::ordered("class", &["standard", "deluxe", "suite"]),
            ],
        )
        .with_strategy(strategy),
    );
    for i in 0..rooms {
        let class = match i % 10 {
            0 => "suite",
            1..=3 => "deluxe",
            _ => "standard",
        };
        pm.seed_instance(
            pool,
            format!("room-{i:05}").as_str(),
            Record::new()
                .with("floor", (i / 20) as i64)
                .with("view", i % 3 == 0)
                .with("class", class),
        )
        .expect("fresh room");
    }
    pm
}

/// A chain of `depth` delegating managers over one quantity pool; the
/// manager at the end of the chain holds the actual stock. Returns the
/// front manager.
pub fn delegation_chain(pool: &str, depth: usize, qty: u64) -> Arc<PromiseManager> {
    let mut current = pm_with_qty_pool(pool, qty);
    for _ in 0..depth {
        let front = fresh_pm();
        front.delegate_pool(pool, Arc::clone(&current));
        current = front;
    }
    current
}
