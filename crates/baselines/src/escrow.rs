//! Escrow reservation (O'Neil [8]): a `reserved` counter accompanies the
//! quantity on hand; a reservation succeeds iff `qty - reserved >= amount`
//! and bumps `reserved` in a short transaction.
//!
//! This is the specialised technique §5 points at for anonymous resources
//! ("guaranteeing that there will be enough money in an account ... could
//! best be implemented using techniques such as escrow locking"). It
//! admits exactly the schedules an anonymous-view promise admits — which
//! experiment E6 verifies — but it works only for numeric quantities,
//! whereas the Promise pattern covers named and property views too.

use std::sync::Arc;

use promises_rm::{ResourceManager, RmError};

use crate::traits::{QtyReserver, ReserveFailure};
use crate::{QTY_FIELD, QTY_TABLE, RESERVED_FIELD};

/// Escrow-counter reservation.
pub struct EscrowReserver {
    rm: Arc<ResourceManager>,
    retries: usize,
}

/// Escrowed amounts, one entry per pool.
#[derive(Debug)]
pub struct EscrowToken {
    holds: Vec<(String, u64)>,
}

impl EscrowReserver {
    /// Creates an escrow reserver over `rm`.
    pub fn new(rm: Arc<ResourceManager>) -> Self {
        Self { rm, retries: 16 }
    }

    fn escrow(&self, pool: &str, amount: u64) -> Result<(), ReserveFailure> {
        let result = self.rm.transact(self.retries, |txn| {
            // X lock from the start (an S-then-X upgrade would deadlock
            // against symmetric reservers); validate headroom inside.
            let mut enough = false;
            self.rm.update(txn, QTY_TABLE, pool, |rec| {
                let qty = rec.int(QTY_FIELD).unwrap_or(0);
                let reserved = rec.int(RESERVED_FIELD).unwrap_or(0);
                if qty - reserved >= amount as i64 {
                    enough = true;
                    rec.set(RESERVED_FIELD, reserved + amount as i64);
                }
            })?;
            if !enough {
                return Err(RmError::Aborted("insufficient escrow headroom".into()));
            }
            Ok(())
        });
        match result {
            Ok(()) => Ok(()),
            Err(RmError::Aborted(_)) => Err(ReserveFailure::Insufficient),
            Err(e) => Err(e.into()),
        }
    }

    fn unescrow(&self, pool: &str, amount: u64) {
        let _ = self.rm.transact(self.retries, |txn| {
            self.rm.update(txn, QTY_TABLE, pool, |rec| {
                let reserved = rec.int(RESERVED_FIELD).unwrap_or(0);
                rec.set(RESERVED_FIELD, (reserved - amount as i64).max(0));
            })
        });
    }
}

impl QtyReserver for EscrowReserver {
    type Token = EscrowToken;

    fn reserve(&self, pool: &str, amount: u64) -> Result<Self::Token, ReserveFailure> {
        self.escrow(pool, amount)?;
        Ok(EscrowToken {
            holds: vec![(pool.to_owned(), amount)],
        })
    }

    fn extend(
        &self,
        token: &mut Self::Token,
        pool: &str,
        amount: u64,
    ) -> Result<(), ReserveFailure> {
        self.escrow(pool, amount)?;
        token.holds.push((pool.to_owned(), amount));
        Ok(())
    }

    fn consume(&self, token: Self::Token) -> Result<(), ReserveFailure> {
        self.rm
            .transact(self.retries, |txn| {
                for (pool, amount) in &token.holds {
                    self.rm.update(txn, QTY_TABLE, pool, |rec| {
                        let qty = rec.int(QTY_FIELD).unwrap_or(0);
                        let reserved = rec.int(RESERVED_FIELD).unwrap_or(0);
                        rec.set(QTY_FIELD, qty - *amount as i64);
                        rec.set(RESERVED_FIELD, (reserved - *amount as i64).max(0));
                    })?;
                }
                Ok(())
            })
            .map_err(Into::into)
    }

    fn cancel(&self, token: Self::Token) {
        for (pool, amount) in &token.holds {
            self.unescrow(pool, *amount);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_rm::Record;

    fn setup(qty: i64) -> Arc<ResourceManager> {
        let rm = Arc::new(ResourceManager::new());
        rm.create_table(QTY_TABLE);
        let tx = rm.begin();
        rm.insert(
            &tx,
            QTY_TABLE,
            "widgets",
            Record::new().with(QTY_FIELD, qty),
        )
        .unwrap();
        rm.commit(tx).unwrap();
        rm
    }

    #[test]
    fn reservations_respect_headroom_without_blocking() {
        let rm = setup(10);
        let r = EscrowReserver::new(Arc::clone(&rm));
        let t1 = r.reserve("widgets", 6).unwrap();
        // 4 remain unreserved: a 5-unit request fails fast, a 4-unit works.
        assert_eq!(
            r.reserve("widgets", 5).unwrap_err(),
            ReserveFailure::Insufficient
        );
        let t2 = r.reserve("widgets", 4).unwrap();
        r.consume(t1).unwrap();
        r.consume(t2).unwrap();
        let tx = rm.begin();
        let rec = rm.get(&tx, QTY_TABLE, "widgets").unwrap().unwrap();
        assert_eq!(rec.int(QTY_FIELD), Some(0));
        assert_eq!(rec.int(RESERVED_FIELD), Some(0));
        rm.commit(tx).unwrap();
    }

    #[test]
    fn cancel_returns_headroom() {
        let rm = setup(10);
        let r = EscrowReserver::new(rm);
        let t = r.reserve("widgets", 10).unwrap();
        assert!(r.reserve("widgets", 1).is_err());
        r.cancel(t);
        let t2 = r.reserve("widgets", 10).unwrap();
        r.consume(t2).unwrap();
    }

    #[test]
    fn extend_and_cancel_multi_pool() {
        let rm = setup(10);
        rm.transact(1, |txn| {
            rm.insert(txn, QTY_TABLE, "bolts", Record::new().with(QTY_FIELD, 2i64))
        })
        .unwrap();
        let r = EscrowReserver::new(Arc::clone(&rm));
        let mut t = r.reserve("widgets", 3).unwrap();
        r.extend(&mut t, "bolts", 2).unwrap();
        assert!(r.reserve("bolts", 1).is_err());
        r.cancel(t);
        assert!(r.reserve("bolts", 2).is_ok());
    }

    #[test]
    fn missing_pool_is_an_rm_error() {
        let rm = Arc::new(ResourceManager::new());
        rm.create_table(QTY_TABLE);
        let r = EscrowReserver::new(rm);
        assert!(matches!(
            r.reserve("ghost", 1).unwrap_err(),
            ReserveFailure::Rm(_)
        ));
    }

    #[test]
    fn concurrent_escrow_never_oversubscribes() {
        use std::thread;
        let rm = setup(100);
        let r = Arc::new(EscrowReserver::new(Arc::clone(&rm)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(thread::spawn(move || {
                let mut consumed = 0u64;
                for _ in 0..25 {
                    if let Ok(t) = r.reserve("widgets", 1) {
                        r.consume(t).unwrap();
                        consumed += 1;
                    }
                }
                consumed
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let tx = rm.begin();
        let rec = rm.get(&tx, QTY_TABLE, "widgets").unwrap().unwrap();
        assert_eq!(rec.int(QTY_FIELD), Some(100 - total as i64));
        assert!(rec.int(QTY_FIELD).unwrap() >= 0, "never oversubscribed");
        rm.commit(tx).unwrap();
    }
}
