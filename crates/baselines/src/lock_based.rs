//! Traditional lock-based reservation: the pool record stays exclusively
//! locked for the entire business operation.
//!
//! This is the comparator the paper dismisses for the services world: "the
//! locking mechanism assumes an environment where activities run very
//! quickly and all participants can be trusted to hold locks. These
//! assumptions are inflexible and not suited for data under high
//! contention" (§9). Concurrent clients of the same pool *block*; clients
//! locking multiple pools in different orders *deadlock*.

use std::sync::Arc;

use promises_rm::{ResourceManager, Txn};

use crate::traits::{QtyReserver, ReserveFailure};
use crate::{QTY_FIELD, QTY_TABLE};

/// Reservation by long-held exclusive lock.
pub struct LockReserver {
    rm: Arc<ResourceManager>,
}

/// An open transaction holding X locks on every reserved pool across the
/// whole think time.
#[derive(Debug)]
pub struct LockToken {
    txn: Txn,
    holds: Vec<(String, u64)>,
}

impl LockReserver {
    /// Creates a lock-based reserver over `rm`.
    pub fn new(rm: Arc<ResourceManager>) -> Self {
        Self { rm }
    }

    /// Locks `pool` in `txn` and checks availability.
    fn lock_and_check(&self, txn: &Txn, pool: &str, amount: u64) -> Result<(), ReserveFailure> {
        let mut seen = 0i64;
        self.rm.update(txn, QTY_TABLE, pool, |rec| {
            seen = rec.int(QTY_FIELD).unwrap_or(0);
        })?;
        if seen < amount as i64 {
            return Err(ReserveFailure::Insufficient);
        }
        Ok(())
    }
}

impl QtyReserver for LockReserver {
    type Token = LockToken;

    fn reserve(&self, pool: &str, amount: u64) -> Result<Self::Token, ReserveFailure> {
        let txn = self.rm.begin();
        match self.lock_and_check(&txn, pool, amount) {
            Ok(()) => Ok(LockToken {
                txn,
                holds: vec![(pool.to_owned(), amount)],
            }),
            Err(e) => {
                let _ = self.rm.abort(txn);
                Err(e)
            }
        }
    }

    fn extend(
        &self,
        token: &mut Self::Token,
        pool: &str,
        amount: u64,
    ) -> Result<(), ReserveFailure> {
        // The second lock is taken inside the SAME transaction while the
        // first is held: opposite-order clients form a wait-for cycle and
        // one is victimised — the deadlock behaviour experiment E5 counts.
        self.lock_and_check(&token.txn, pool, amount)?;
        token.holds.push((pool.to_owned(), amount));
        Ok(())
    }

    fn consume(&self, token: Self::Token) -> Result<(), ReserveFailure> {
        let LockToken { txn, holds } = token;
        for (pool, amount) in &holds {
            let r = self.rm.update(&txn, QTY_TABLE, pool, |rec| {
                let q = rec.int(QTY_FIELD).unwrap_or(0);
                rec.set(QTY_FIELD, q - *amount as i64);
            });
            if let Err(e) = r {
                let _ = self.rm.abort(txn);
                return Err(e.into());
            }
        }
        self.rm.commit(txn)?;
        Ok(())
    }

    fn cancel(&self, token: Self::Token) {
        let _ = self.rm.abort(token.txn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_rm::Record;
    use std::thread;
    use std::time::Duration;

    fn setup(pools: &[(&str, i64)]) -> Arc<ResourceManager> {
        let rm = Arc::new(ResourceManager::new());
        rm.create_table(QTY_TABLE);
        let tx = rm.begin();
        for (p, qty) in pools {
            rm.insert(&tx, QTY_TABLE, p, Record::new().with(QTY_FIELD, *qty))
                .unwrap();
        }
        rm.commit(tx).unwrap();
        rm
    }

    #[test]
    fn reserve_consume_decrements() {
        let rm = setup(&[("widgets", 10)]);
        let r = LockReserver::new(Arc::clone(&rm));
        let t = r.reserve("widgets", 4).unwrap();
        r.consume(t).unwrap();
        let tx = rm.begin();
        assert_eq!(
            rm.get(&tx, QTY_TABLE, "widgets")
                .unwrap()
                .unwrap()
                .int(QTY_FIELD),
            Some(6)
        );
        rm.commit(tx).unwrap();
    }

    #[test]
    fn extend_reserves_second_pool_in_same_txn() {
        let rm = setup(&[("a", 5), ("b", 5)]);
        let r = LockReserver::new(Arc::clone(&rm));
        let mut t = r.reserve("a", 2).unwrap();
        r.extend(&mut t, "b", 3).unwrap();
        r.consume(t).unwrap();
        let tx = rm.begin();
        assert_eq!(
            rm.get(&tx, QTY_TABLE, "a").unwrap().unwrap().int(QTY_FIELD),
            Some(3)
        );
        assert_eq!(
            rm.get(&tx, QTY_TABLE, "b").unwrap().unwrap().int(QTY_FIELD),
            Some(2)
        );
        rm.commit(tx).unwrap();
    }

    #[test]
    fn cancel_releases_without_change() {
        let rm = setup(&[("widgets", 10)]);
        let r = LockReserver::new(Arc::clone(&rm));
        let t = r.reserve("widgets", 4).unwrap();
        r.cancel(t);
        let t2 = r.reserve("widgets", 10).unwrap();
        r.consume(t2).unwrap();
    }

    #[test]
    fn insufficient_fails_fast() {
        let rm = setup(&[("widgets", 3)]);
        let r = LockReserver::new(rm);
        assert_eq!(
            r.reserve("widgets", 4).unwrap_err(),
            ReserveFailure::Insufficient
        );
    }

    #[test]
    fn second_reserver_blocks_until_first_finishes() {
        let rm = setup(&[("widgets", 10)]);
        let r = Arc::new(LockReserver::new(Arc::clone(&rm)));
        let t = r.reserve("widgets", 2).unwrap();
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || {
            // This blocks on the held X lock even though 8 units remain —
            // the lost concurrency promises recover.
            let t = r2.reserve("widgets", 2).unwrap();
            r2.consume(t).unwrap();
        });
        thread::sleep(Duration::from_millis(40));
        assert!(!h.is_finished(), "second client must be blocked");
        r.consume(t).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn opposite_order_extends_deadlock_and_one_is_victimised() {
        let rm = setup(&[("a", 10), ("b", 10)]);
        let r = Arc::new(LockReserver::new(Arc::clone(&rm)));
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || -> Result<(), ReserveFailure> {
            let mut ta = r2.reserve("a", 1)?;
            thread::sleep(Duration::from_millis(30));
            match r2.extend(&mut ta, "b", 1) {
                Ok(()) => {
                    r2.consume(ta).unwrap();
                    Ok(())
                }
                Err(e) => {
                    r2.cancel(ta);
                    Err(e)
                }
            }
        });
        let mut tb = r.reserve("b", 1).unwrap();
        thread::sleep(Duration::from_millis(30));
        let mine = r.extend(&mut tb, "a", 1);
        let mine_failed = match mine {
            Ok(()) => {
                r.consume(tb).unwrap();
                false
            }
            Err(e) => {
                assert_eq!(e, ReserveFailure::Deadlock);
                r.cancel(tb);
                true
            }
        };
        let theirs = h.join().unwrap();
        assert!(
            mine_failed || theirs.is_err(),
            "one of the two opposite-order clients must be a deadlock victim"
        );
    }
}
