//! `promises-baselines` — comparator isolation mechanisms for the
//! Promises evaluation.
//!
//! The paper's argument (§2, §9) is qualitative: traditional lock-based
//! isolation "depends on assumptions of trust and timeliness that no
//! longer apply", optimistic check-then-act forces programmers to handle
//! concurrency failures "throughout the normal processing paths", while
//! domain-specific techniques (escrow locking \[8\], soft locks) are special
//! cases the Promise pattern generalises. This crate implements those
//! comparators against the same resource manager so the claims can be
//! measured head-to-head (experiments E4–E6):
//!
//! * [`LockReserver`] — holds RM record locks across the whole
//!   long-running operation (the "traditional ACID" strawman): blocks
//!   concurrent clients and deadlocks under multi-resource contention;
//! * [`OptimisticReserver`] — checks availability without protection and
//!   re-validates at consume time, failing late when a concurrent client
//!   won the race;
//! * [`EscrowReserver`] — per-pool reserved-quantity escrow (O'Neil): the
//!   specialised equivalent of an anonymous-view promise;
//! * [`SoftLockReserver`] — availability-flag reservation of named
//!   instances, the "common business practice" of §2.
//!
//! All implement the [`QtyReserver`] / [`InstanceReserver`] traits so the
//! simulation harness can drive them interchangeably with a
//! promise-manager-backed adapter.

#![warn(missing_docs)]

mod escrow;
mod lock_based;
mod optimistic;
mod soft_lock;
mod traits;

pub use escrow::EscrowReserver;
pub use lock_based::LockReserver;
pub use optimistic::OptimisticReserver;
pub use soft_lock::SoftLockReserver;
pub use traits::{InstanceReserver, QtyReserver, ReserveFailure};

/// Table used by quantity baselines; matches `promises_core::Catalog`'s
/// layout so the same seeded data serves both systems.
pub const QTY_TABLE: &str = "qty_pools";

/// Field holding quantity on hand.
pub const QTY_FIELD: &str = "qty";

/// Field holding escrow-reserved quantity (escrow baseline only).
pub const RESERVED_FIELD: &str = "reserved";
