//! Unprotected check-then-act: read availability, do the long-running
//! work with no isolation, and re-validate when finally consuming.
//!
//! This is the world the paper's introduction describes without promises:
//! "we still required the programmer to provide code to handle each
//! possible message under every possible state", e.g. "payment arrives
//! for an accepted order when there is insufficient stock on hand". The
//! late [`ReserveFailure::LateConflict`] is exactly that situation.

use std::sync::Arc;

use promises_rm::{ResourceManager, RmError};

use crate::traits::{QtyReserver, ReserveFailure};
use crate::{QTY_FIELD, QTY_TABLE};

/// Check-then-act with no protection in between.
pub struct OptimisticReserver {
    rm: Arc<ResourceManager>,
    retries: usize,
}

/// Remembers only what was asked for; nothing is held.
#[derive(Debug)]
pub struct OptimisticToken {
    holds: Vec<(String, u64)>,
}

impl OptimisticReserver {
    /// Creates an optimistic reserver over `rm`.
    pub fn new(rm: Arc<ResourceManager>) -> Self {
        Self { rm, retries: 16 }
    }

    fn check(&self, pool: &str, amount: u64) -> Result<(), ReserveFailure> {
        // Short transaction: read and immediately release.
        let available = self.rm.transact(self.retries, |txn| {
            Ok(self
                .rm
                .get(txn, QTY_TABLE, pool)?
                .and_then(|r| r.int(QTY_FIELD))
                .unwrap_or(0))
        })?;
        if available < amount as i64 {
            return Err(ReserveFailure::Insufficient);
        }
        Ok(())
    }
}

impl QtyReserver for OptimisticReserver {
    type Token = OptimisticToken;

    fn reserve(&self, pool: &str, amount: u64) -> Result<Self::Token, ReserveFailure> {
        self.check(pool, amount)?;
        Ok(OptimisticToken {
            holds: vec![(pool.to_owned(), amount)],
        })
    }

    fn extend(
        &self,
        token: &mut Self::Token,
        pool: &str,
        amount: u64,
    ) -> Result<(), ReserveFailure> {
        self.check(pool, amount)?;
        token.holds.push((pool.to_owned(), amount));
        Ok(())
    }

    fn consume(&self, token: Self::Token) -> Result<(), ReserveFailure> {
        // Re-validate everything at the last moment in one transaction; a
        // concurrent winner surfaces as the late conflict the normal
        // processing path must now handle.
        let result = self.rm.transact(self.retries, |txn| {
            for (pool, amount) in &token.holds {
                // Take the X lock directly (an S-then-X upgrade here would
                // deadlock against symmetric consumers) and validate inside.
                let mut enough = false;
                self.rm.update(txn, QTY_TABLE, pool, |rec| {
                    let current = rec.int(QTY_FIELD).unwrap_or(0);
                    if current >= *amount as i64 {
                        enough = true;
                        rec.set(QTY_FIELD, current - *amount as i64);
                    }
                })?;
                if !enough {
                    return Err(RmError::Aborted("late conflict".into()));
                }
            }
            Ok(())
        });
        match result {
            Ok(()) => Ok(()),
            Err(RmError::Aborted(_)) => Err(ReserveFailure::LateConflict),
            Err(e) => Err(e.into()),
        }
    }

    fn cancel(&self, _token: Self::Token) {
        // Nothing was held.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_rm::Record;

    fn setup(pools: &[(&str, i64)]) -> Arc<ResourceManager> {
        let rm = Arc::new(ResourceManager::new());
        rm.create_table(QTY_TABLE);
        let tx = rm.begin();
        for (p, qty) in pools {
            rm.insert(&tx, QTY_TABLE, p, Record::new().with(QTY_FIELD, *qty))
                .unwrap();
        }
        rm.commit(tx).unwrap();
        rm
    }

    #[test]
    fn happy_path() {
        let rm = setup(&[("widgets", 10)]);
        let r = OptimisticReserver::new(Arc::clone(&rm));
        let t = r.reserve("widgets", 4).unwrap();
        r.consume(t).unwrap();
        let tx = rm.begin();
        assert_eq!(
            rm.get(&tx, QTY_TABLE, "widgets")
                .unwrap()
                .unwrap()
                .int(QTY_FIELD),
            Some(6)
        );
        rm.commit(tx).unwrap();
    }

    #[test]
    fn check_passes_but_consume_fails_late() {
        // The defining failure mode: both clients see 10 ≥ 8, both proceed,
        // the slower one discovers the conflict only at consume time.
        let rm = setup(&[("widgets", 10)]);
        let r = OptimisticReserver::new(Arc::clone(&rm));
        let t1 = r.reserve("widgets", 8).unwrap();
        let t2 = r.reserve("widgets", 8).unwrap(); // no isolation: also passes
        r.consume(t1).unwrap();
        assert_eq!(r.consume(t2).unwrap_err(), ReserveFailure::LateConflict);
    }

    #[test]
    fn multi_pool_consume_is_atomic() {
        let rm = setup(&[("a", 5), ("b", 5)]);
        let r = OptimisticReserver::new(Arc::clone(&rm));
        let mut t = r.reserve("a", 5).unwrap();
        r.extend(&mut t, "b", 5).unwrap();
        // Concurrently drain pool b behind its back.
        let t2 = r.reserve("b", 1).unwrap();
        r.consume(t2).unwrap();
        // The combined consume must fail late AND leave pool a untouched.
        assert_eq!(r.consume(t).unwrap_err(), ReserveFailure::LateConflict);
        let tx = rm.begin();
        assert_eq!(
            rm.get(&tx, QTY_TABLE, "a").unwrap().unwrap().int(QTY_FIELD),
            Some(5)
        );
        rm.commit(tx).unwrap();
    }

    #[test]
    fn insufficient_fails_fast_too() {
        let rm = setup(&[("widgets", 3)]);
        let r = OptimisticReserver::new(rm);
        assert_eq!(
            r.reserve("widgets", 4).unwrap_err(),
            ReserveFailure::Insufficient
        );
    }

    #[test]
    fn cancel_is_free() {
        let rm = setup(&[("widgets", 5)]);
        let r = OptimisticReserver::new(Arc::clone(&rm));
        let t = r.reserve("widgets", 5).unwrap();
        r.cancel(t);
        let t2 = r.reserve("widgets", 5).unwrap();
        r.consume(t2).unwrap();
    }
}
