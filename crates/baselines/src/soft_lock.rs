//! Soft locks: "a field in the database record to show whether an item
//! has been allocated or reserved for a client. The record is not locked
//! against access once the allocation has been made; instead applications
//! read this field when looking for available resources and ignore any
//! record that has been already allocated" (§2).
//!
//! This is the paper's "allocated tags" technique stripped of a promise
//! manager: no expiry, no predicate checking, no violation detection —
//! each application must honour the convention voluntarily.

use std::sync::Arc;

use promises_rm::{ResourceManager, RmError};

use crate::traits::{InstanceReserver, ReserveFailure};

/// Status field used by the soft-lock convention (matches the promise
/// catalog's layout so the same seeded data serves both).
pub const STATUS_FIELD: &str = "_status";

fn table(pool: &str) -> String {
    format!("inst:{pool}")
}

/// Field-flag reservation of named instances.
pub struct SoftLockReserver {
    rm: Arc<ResourceManager>,
    retries: usize,
}

/// A soft-locked instance.
#[derive(Debug)]
pub struct SoftLockToken {
    pool: String,
    instance: String,
}

impl SoftLockReserver {
    /// Creates a soft-lock reserver over `rm`.
    pub fn new(rm: Arc<ResourceManager>) -> Self {
        Self { rm, retries: 16 }
    }
}

impl InstanceReserver for SoftLockReserver {
    type Token = SoftLockToken;

    fn reserve_instance(&self, pool: &str, instance: &str) -> Result<Self::Token, ReserveFailure> {
        let result = self.rm.transact(self.retries, |txn| {
            let rec =
                self.rm
                    .get(txn, &table(pool), instance)?
                    .ok_or_else(|| RmError::NoSuchKey {
                        table: table(pool),
                        key: instance.into(),
                    })?;
            if rec.str(STATUS_FIELD) != Some("available") {
                return Err(RmError::Aborted("already allocated".into()));
            }
            self.rm.update(txn, &table(pool), instance, |rec| {
                rec.set(STATUS_FIELD, "promised");
            })
        });
        match result {
            Ok(()) => Ok(SoftLockToken {
                pool: pool.to_owned(),
                instance: instance.to_owned(),
            }),
            Err(RmError::Aborted(_)) => Err(ReserveFailure::Insufficient),
            Err(e) => Err(e.into()),
        }
    }

    fn consume(&self, token: Self::Token) -> Result<(), ReserveFailure> {
        self.rm
            .transact(self.retries, |txn| {
                self.rm
                    .update(txn, &table(&token.pool), &token.instance, |rec| {
                        rec.set(STATUS_FIELD, "taken");
                    })
            })
            .map_err(Into::into)
    }

    fn cancel(&self, token: Self::Token) {
        let _ = self.rm.transact(self.retries, |txn| {
            self.rm
                .update(txn, &table(&token.pool), &token.instance, |rec| {
                    rec.set(STATUS_FIELD, "available");
                })
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_rm::Record;

    fn setup() -> Arc<ResourceManager> {
        let rm = Arc::new(ResourceManager::new());
        rm.create_table(&table("rooms"));
        let tx = rm.begin();
        for id in ["512", "610"] {
            rm.insert(
                &tx,
                &table("rooms"),
                id,
                Record::new().with(STATUS_FIELD, "available"),
            )
            .unwrap();
        }
        rm.commit(tx).unwrap();
        rm
    }

    #[test]
    fn reserve_take_lifecycle() {
        let rm = setup();
        let r = SoftLockReserver::new(Arc::clone(&rm));
        let t = r.reserve_instance("rooms", "512").unwrap();
        assert_eq!(
            r.reserve_instance("rooms", "512").unwrap_err(),
            ReserveFailure::Insufficient
        );
        r.consume(t).unwrap();
        let tx = rm.begin();
        assert_eq!(
            rm.get(&tx, &table("rooms"), "512")
                .unwrap()
                .unwrap()
                .str(STATUS_FIELD),
            Some("taken")
        );
        rm.commit(tx).unwrap();
    }

    #[test]
    fn cancel_restores_availability() {
        let rm = setup();
        let r = SoftLockReserver::new(rm);
        let t = r.reserve_instance("rooms", "610").unwrap();
        r.cancel(t);
        assert!(r.reserve_instance("rooms", "610").is_ok());
    }

    #[test]
    fn missing_instance_is_rm_error() {
        let rm = setup();
        let r = SoftLockReserver::new(rm);
        assert!(matches!(
            r.reserve_instance("rooms", "999").unwrap_err(),
            ReserveFailure::Rm(_)
        ));
    }

    #[test]
    fn no_manager_means_no_violation_detection() {
        // The convention is voluntary: a rogue write straight to the RM
        // steals the reserved room and nothing stops it — this is what the
        // promise manager's post-action check adds (cf. the core tests).
        let rm = setup();
        let r = SoftLockReserver::new(Arc::clone(&rm));
        let t = r.reserve_instance("rooms", "512").unwrap();
        let tx = rm.begin();
        rm.update(&tx, &table("rooms"), "512", |rec| {
            rec.set(STATUS_FIELD, "taken");
        })
        .unwrap();
        rm.commit(tx).unwrap(); // commits fine: nobody checks
                                // The holder's consume now silently overwrites.
        r.consume(t).unwrap();
    }
}
