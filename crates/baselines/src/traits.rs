//! Common reservation interfaces driven by the simulation harness.

use std::fmt;

use promises_rm::RmError;

/// Why a reservation step failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReserveFailure {
    /// Not enough of the resource at reservation time (fail-fast).
    Insufficient,
    /// The resource was available at check time but gone at consume time —
    /// the late failure mode promises exist to eliminate.
    LateConflict,
    /// The reservation's transaction was a deadlock victim.
    Deadlock,
    /// Underlying storage error.
    Rm(RmError),
}

impl fmt::Display for ReserveFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReserveFailure::Insufficient => f.write_str("insufficient resources"),
            ReserveFailure::LateConflict => f.write_str("conflict detected at consume time"),
            ReserveFailure::Deadlock => f.write_str("deadlock victim"),
            ReserveFailure::Rm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReserveFailure {}

impl From<RmError> for ReserveFailure {
    fn from(e: RmError) -> Self {
        match e {
            RmError::Deadlock { .. } => ReserveFailure::Deadlock,
            other => ReserveFailure::Rm(other),
        }
    }
}

/// Reserve-then-consume protocol over an anonymous quantity pool. One
/// token corresponds to one client's in-flight business operation; the
/// time between `reserve` and `consume`/`cancel` models the long-running
/// part of the process (payment, shipping arrangements, user think time).
pub trait QtyReserver: Send + Sync {
    /// Opaque reservation token.
    type Token: Send;

    /// Reserves `amount` units of `pool`.
    fn reserve(&self, pool: &str, amount: u64) -> Result<Self::Token, ReserveFailure>;

    /// Extends an existing reservation with `amount` units of another
    /// pool, forming one multi-resource operation (the travel-agent shape
    /// of §4). For the lock baseline this acquires the second lock inside
    /// the *same* transaction — the step that makes opposite-order clients
    /// deadlock. On failure the token keeps its earlier holdings; the
    /// caller decides whether to [`QtyReserver::cancel`].
    fn extend(
        &self,
        token: &mut Self::Token,
        pool: &str,
        amount: u64,
    ) -> Result<(), ReserveFailure>;

    /// Consumes all reserved units (completes the purchase).
    fn consume(&self, token: Self::Token) -> Result<(), ReserveFailure>;

    /// Abandons the reservation.
    fn cancel(&self, token: Self::Token);
}

/// Reserve-then-consume protocol over named instances.
pub trait InstanceReserver: Send + Sync {
    /// Opaque reservation token.
    type Token: Send;

    /// Reserves the named instance in `pool`.
    fn reserve_instance(&self, pool: &str, instance: &str) -> Result<Self::Token, ReserveFailure>;

    /// Takes the instance.
    fn consume(&self, token: Self::Token) -> Result<(), ReserveFailure>;

    /// Abandons the reservation.
    fn cancel(&self, token: Self::Token);
}
