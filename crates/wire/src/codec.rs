//! Envelope ↔ XML codec.
//!
//! The on-wire shape mirrors §6's description: promise elements live under
//! a `<header>`, the action under a `<body>`:
//!
//! ```xml
//! <envelope>
//!   <header>
//!     <promise-request request-id='r1' client='c' duration='60000'>
//!       <predicate>qty('widgets') &gt;= 5</predicate>
//!       <exchange promise='3'/>
//!     </promise-request>
//!     <promise-response promise='7' result='accepted' expires='60500'
//!                       correlation='r0'/>
//!     <release promise='4'/>
//!     <environment>
//!       <under promise='7' release='true'/>
//!       <under correlation='r1' release='false'/>
//!     </environment>
//!   </header>
//!   <body>
//!     <action service='merchant' operation='purchase'>
//!       <param name='qty'>5</param>
//!     </action>
//!   </body>
//! </envelope>
//! ```

use crate::envelope::{
    ActionRequest, ActionResponse, EnvEntry, EnvRef, Envelope, EnvironmentHeader,
    PromiseRequestHeader, PromiseResponseHeader, PromiseResult, ResolutionHeader, ResolutionOp,
    ResolutionResponse, ResolveRef, TraceHeader,
};
use crate::xml::{parse, XmlElement, XmlError};

/// Codec error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Malformed XML.
    Xml(XmlError),
    /// Well-formed XML with an invalid envelope shape.
    Shape(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Xml(e) => write!(f, "{e}"),
            CodecError::Shape(m) => write!(f, "invalid envelope: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<XmlError> for CodecError {
    fn from(e: XmlError) -> Self {
        CodecError::Xml(e)
    }
}

/// Serialises an envelope to its XML wire form.
pub fn encode(env: &Envelope) -> String {
    let mut header = XmlElement::new("header");
    for pr in &env.promise_requests {
        let mut el = XmlElement::new("promise-request")
            .attr("request-id", &pr.request_id)
            .attr("client", &pr.client)
            .attr("duration", pr.duration_ms);
        if pr.negotiate {
            el = el.attr("negotiate", "true");
        }
        if pr.prepare {
            el = el.attr("prepare", "true");
        }
        for p in &pr.predicates {
            el = el.child(XmlElement::new("predicate").with_text(p));
        }
        for x in &pr.exchange {
            el = el.child(XmlElement::new("exchange").attr("promise", x));
        }
        header = header.child(el);
    }
    for resp in &env.promise_responses {
        let mut el = XmlElement::new("promise-response")
            .attr("expires", resp.expires_at)
            .attr("correlation", &resp.correlation);
        if let Some(id) = resp.promise_id {
            el = el.attr("promise", id);
        }
        el = match &resp.result {
            PromiseResult::Accepted => el.attr("result", "accepted"),
            PromiseResult::AcceptedWithCondition(cond) => el
                .attr("result", "accepted-with-condition")
                .attr("condition", cond),
            PromiseResult::Rejected(reason) => el.attr("result", "rejected").attr("reason", reason),
        };
        for g in &resp.granted_predicates {
            el = el.child(XmlElement::new("granted-predicate").with_text(g));
        }
        header = header.child(el);
    }
    for id in &env.releases {
        header = header.child(XmlElement::new("release").attr("promise", id));
    }
    for r in &env.resolutions {
        header = header.child(
            resolve_ref_el(XmlElement::new("resolve"), &r.reference).attr("op", r.op.as_str()),
        );
    }
    for r in &env.resolution_responses {
        let mut el = resolve_ref_el(XmlElement::new("resolution"), &r.reference)
            .attr("op", r.op.as_str())
            .attr("applied", r.applied);
        if let Some(e) = &r.error {
            el = el.attr("error", e);
        }
        header = header.child(el);
    }
    if let Some(e) = &env.environment {
        let mut el = XmlElement::new("environment");
        for entry in &e.entries {
            let mut u = XmlElement::new("under").attr("release", entry.release_after);
            u = match &entry.reference {
                EnvRef::Id(id) => u.attr("promise", id),
                EnvRef::Correlation(c) => u.attr("correlation", c),
            };
            el = el.child(u);
        }
        header = header.child(el);
    }

    let mut body = XmlElement::new("body");
    if let Some(a) = &env.action {
        let mut el = XmlElement::new("action")
            .attr("service", &a.service)
            .attr("operation", &a.operation);
        for (k, v) in &a.params {
            el = el.child(XmlElement::new("param").attr("name", k).with_text(v));
        }
        body = body.child(el);
    }
    if let Some(r) = &env.action_response {
        let mut el = XmlElement::new("action-response").attr("ok", r.ok);
        if let Some(e) = &r.error {
            el = el.attr("error", e);
        }
        for (k, v) in &r.fields {
            el = el.child(XmlElement::new("field").attr("name", k).with_text(v));
        }
        body = body.child(el);
    }

    let mut root = XmlElement::new("envelope");
    if let Some(t) = &env.trace {
        root = root.attr("trace", t.trace).attr("span", t.span);
    }
    root.child(header).child(body).to_xml()
}

fn resolve_ref_el(el: XmlElement, reference: &ResolveRef) -> XmlElement {
    match reference {
        ResolveRef::Id(id) => el.attr("promise", id),
        ResolveRef::Request { client, request } => {
            el.attr("client", client).attr("request", request)
        }
    }
}

fn decode_resolve_ref(el: &XmlElement) -> Result<ResolveRef, CodecError> {
    if let Some(id) = el.get_attr("promise") {
        return Ok(ResolveRef::Id(
            id.parse()
                .map_err(|_| CodecError::Shape("bad promise id".into()))?,
        ));
    }
    match (el.get_attr("client"), el.get_attr("request")) {
        (Some(c), Some(r)) => Ok(ResolveRef::Request {
            client: c.to_owned(),
            request: r.to_owned(),
        }),
        _ => Err(CodecError::Shape(format!(
            "<{}> needs promise or client+request",
            el.name
        ))),
    }
}

fn decode_resolution_op(el: &XmlElement) -> Result<ResolutionOp, CodecError> {
    match req_attr(el, "op")? {
        "commit" => Ok(ResolutionOp::Commit),
        "abort" => Ok(ResolutionOp::Abort),
        other => Err(CodecError::Shape(format!(
            "unknown resolution op {other:?}"
        ))),
    }
}

fn req_attr<'x>(el: &'x XmlElement, name: &str) -> Result<&'x str, CodecError> {
    el.get_attr(name)
        .ok_or_else(|| CodecError::Shape(format!("<{}> missing attribute {name:?}", el.name)))
}

fn u64_attr(el: &XmlElement, name: &str) -> Result<u64, CodecError> {
    req_attr(el, name)?
        .parse()
        .map_err(|_| CodecError::Shape(format!("<{}> attribute {name:?} not a u64", el.name)))
}

/// Parses an envelope from its XML wire form.
pub fn decode(xml: &str) -> Result<Envelope, CodecError> {
    let doc = parse(xml)?;
    if doc.name != "envelope" {
        return Err(CodecError::Shape(format!(
            "document element is <{}>, expected <envelope>",
            doc.name
        )));
    }
    let mut env = Envelope::new();
    // Trace context is optional (absent from uninstrumented senders); a
    // malformed pair is a shape error, not silently dropped.
    if doc.get_attr("trace").is_some() || doc.get_attr("span").is_some() {
        env.trace = Some(TraceHeader {
            trace: u64_attr(&doc, "trace")?,
            span: u64_attr(&doc, "span")?,
        });
    }
    if let Some(header) = doc.find("header") {
        for el in header.find_all("promise-request") {
            env.promise_requests.push(PromiseRequestHeader {
                request_id: req_attr(el, "request-id")?.to_owned(),
                client: req_attr(el, "client")?.to_owned(),
                predicates: el.find_all("predicate").map(|p| p.text.clone()).collect(),
                duration_ms: u64_attr(el, "duration")?,
                negotiate: el.get_attr("negotiate") == Some("true"),
                prepare: el.get_attr("prepare") == Some("true"),
                exchange: el
                    .find_all("exchange")
                    .map(|x| u64_attr(x, "promise"))
                    .collect::<Result<_, _>>()?,
            });
        }
        for el in header.find_all("promise-response") {
            let result = match req_attr(el, "result")? {
                "accepted" => PromiseResult::Accepted,
                "accepted-with-condition" => PromiseResult::AcceptedWithCondition(
                    el.get_attr("condition").unwrap_or("").to_owned(),
                ),
                "rejected" => {
                    PromiseResult::Rejected(el.get_attr("reason").unwrap_or("").to_owned())
                }
                other => {
                    return Err(CodecError::Shape(format!("unknown result {other:?}")));
                }
            };
            env.promise_responses.push(PromiseResponseHeader {
                promise_id: el
                    .get_attr("promise")
                    .map(|v| {
                        v.parse()
                            .map_err(|_| CodecError::Shape("bad promise id".into()))
                    })
                    .transpose()?,
                result,
                expires_at: u64_attr(el, "expires")?,
                correlation: req_attr(el, "correlation")?.to_owned(),
                granted_predicates: el
                    .find_all("granted-predicate")
                    .map(|p| p.text.clone())
                    .collect(),
            });
        }
        for el in header.find_all("release") {
            env.releases.push(u64_attr(el, "promise")?);
        }
        for el in header.find_all("resolve") {
            env.resolutions.push(ResolutionHeader {
                reference: decode_resolve_ref(el)?,
                op: decode_resolution_op(el)?,
            });
        }
        for el in header.find_all("resolution") {
            env.resolution_responses.push(ResolutionResponse {
                reference: decode_resolve_ref(el)?,
                op: decode_resolution_op(el)?,
                applied: req_attr(el, "applied")? == "true",
                error: el.get_attr("error").map(str::to_owned),
            });
        }
        if let Some(el) = header.find("environment") {
            let mut entries = Vec::new();
            for u in el.find_all("under") {
                let release_after = req_attr(u, "release")? == "true";
                let reference = if let Some(id) = u.get_attr("promise") {
                    EnvRef::Id(
                        id.parse()
                            .map_err(|_| CodecError::Shape("bad promise id".into()))?,
                    )
                } else if let Some(c) = u.get_attr("correlation") {
                    EnvRef::Correlation(c.to_owned())
                } else {
                    return Err(CodecError::Shape(
                        "<under> needs promise or correlation".into(),
                    ));
                };
                entries.push(EnvEntry {
                    reference,
                    release_after,
                });
            }
            env.environment = Some(EnvironmentHeader { entries });
        }
    }
    if let Some(body) = doc.find("body") {
        if let Some(el) = body.find("action") {
            env.action = Some(ActionRequest {
                service: req_attr(el, "service")?.to_owned(),
                operation: req_attr(el, "operation")?.to_owned(),
                params: el
                    .find_all("param")
                    .map(|p| Ok((req_attr(p, "name")?.to_owned(), p.text.clone())))
                    .collect::<Result<_, CodecError>>()?,
            });
        }
        if let Some(el) = body.find("action-response") {
            env.action_response = Some(ActionResponse {
                ok: req_attr(el, "ok")? == "true",
                error: el.get_attr("error").map(str::to_owned),
                fields: el
                    .find_all("field")
                    .map(|p| Ok((req_attr(p, "name")?.to_owned(), p.text.clone())))
                    .collect::<Result<_, CodecError>>()?,
            });
        }
    }
    Ok(env)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_envelope() -> Envelope {
        Envelope {
            promise_requests: vec![PromiseRequestHeader {
                request_id: "r1".into(),
                client: "order-process".into(),
                predicates: vec![
                    "qty('pink widgets') >= 5".into(),
                    "prop('rooms', 2): floor == 5 && view == true".into(),
                ],
                duration_ms: 60_000,
                exchange: vec![3, 4],
                negotiate: false,
                prepare: false,
            }],
            promise_responses: vec![
                PromiseResponseHeader {
                    promise_id: Some(7),
                    result: PromiseResult::Accepted,
                    expires_at: 60_500,
                    correlation: "r0".into(),
                    granted_predicates: vec![],
                },
                PromiseResponseHeader {
                    promise_id: None,
                    result: PromiseResult::Rejected("insufficient".into()),
                    expires_at: 0,
                    correlation: "r-old".into(),
                    granted_predicates: vec![],
                },
            ],
            releases: vec![9],
            resolutions: vec![
                ResolutionHeader {
                    reference: ResolveRef::Id(12),
                    op: ResolutionOp::Commit,
                },
                ResolutionHeader {
                    reference: ResolveRef::Request {
                        client: "coord".into(),
                        request: "r9@s2".into(),
                    },
                    op: ResolutionOp::Abort,
                },
            ],
            resolution_responses: vec![ResolutionResponse {
                reference: ResolveRef::Id(12),
                op: ResolutionOp::Commit,
                applied: true,
                error: None,
            }],
            environment: Some(EnvironmentHeader {
                entries: vec![
                    EnvEntry {
                        reference: EnvRef::Id(7),
                        release_after: true,
                    },
                    EnvEntry {
                        reference: EnvRef::Correlation("r1".into()),
                        release_after: false,
                    },
                ],
            }),
            action: Some(
                ActionRequest::new("merchant", "purchase")
                    .param("pool", "pink widgets")
                    .param("qty", 5),
            ),
            action_response: Some(ActionResponse::success().field("order", "o-1")),
            trace: Some(TraceHeader { trace: 5, span: 6 }),
        }
    }

    #[test]
    fn full_roundtrip() {
        let env = full_envelope();
        let xml = encode(&env);
        let back = decode(&xml).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn empty_roundtrip() {
        let env = Envelope::new();
        assert_eq!(decode(&encode(&env)).unwrap(), env);
    }

    #[test]
    fn predicates_with_xml_specials_survive() {
        let mut env = Envelope::new();
        env.promise_requests.push(PromiseRequestHeader {
            request_id: "r".into(),
            client: "c".into(),
            predicates: vec!["qty('a&b') >= 5".into(), "prop('x'): a < 3 && b > 1".into()],
            duration_ms: 1,
            exchange: vec![],
            negotiate: false,
            prepare: false,
        });
        let back = decode(&encode(&env)).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn shape_errors() {
        assert!(decode("<nope/>").is_err());
        assert!(decode("<envelope><header><promise-request/></header></envelope>").is_err());
        assert!(decode(
            "<envelope><header><promise-response result='weird' expires='1' correlation='c'/></header></envelope>"
        )
        .is_err());
        assert!(decode(
            "<envelope><header><environment><under release='true'/></environment></header></envelope>"
        )
        .is_err());
        assert!(decode("not xml").is_err());
    }
}
