//! An in-memory service bus substituting for HTTP/SOAP transport.
//!
//! Every message makes a full encode → (simulated network) → decode round
//! trip, so the wire format is exercised on every call and the measured
//! pipeline (experiment E2 / Figure 2) includes real serialisation cost.
//! Latency and message-loss injection model the loosely-coupled transport
//! the paper assumes without changing the isolation semantics under study.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use promises_faults::{FaultInjector, MessageFate};
use promises_telemetry::{
    push_trace, FaultTag, SpanId, SpanKind, SpanOutcome, Telemetry, TraceContext, TraceId,
};

use crate::codec::{decode, encode, CodecError};
use crate::envelope::Envelope;

/// A wire-level service endpoint.
pub trait Service: Send + Sync {
    /// Handles one message, producing the reply envelope.
    fn handle(&self, envelope: Envelope) -> Envelope;
}

impl<F> Service for F
where
    F: Fn(Envelope) -> Envelope + Send + Sync,
{
    fn handle(&self, envelope: Envelope) -> Envelope {
        self(envelope)
    }
}

/// Bus delivery errors.
///
/// Transport faults ([`BusError::DroppedRequest`], [`BusError::DroppedReply`])
/// are distinguished from service-side problems ([`BusError::UnknownEndpoint`],
/// [`BusError::Codec`]) *and from each other*: a dropped request means the
/// service never ran (plain retry is safe), while a dropped reply means the
/// service **did** run and only the answer was lost — a retry may re-apply
/// the operation, so retried grants carry the same request id and are
/// deduplicated by the promise manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// No endpoint registered under this name.
    UnknownEndpoint(String),
    /// The network dropped the request before the service saw it; the
    /// operation did not run.
    DroppedRequest,
    /// The network dropped the reply after the service processed the
    /// request; the operation may have been applied.
    DroppedReply,
    /// Codec failure in either direction.
    Codec(CodecError),
}

impl BusError {
    /// True if resending the same message can succeed: transport drops are
    /// transient, while unknown endpoints and codec failures are
    /// deterministic and would fail identically on every retry.
    pub fn retryable(&self) -> bool {
        matches!(self, BusError::DroppedRequest | BusError::DroppedReply)
    }
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusError::UnknownEndpoint(n) => write!(f, "unknown endpoint {n:?}"),
            BusError::DroppedRequest => write!(f, "request dropped by network (service never ran)"),
            BusError::DroppedReply => {
                write!(f, "reply dropped by network (service may have run)")
            }
            BusError::Codec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BusError {}

impl From<CodecError> for BusError {
    fn from(e: CodecError) -> Self {
        BusError::Codec(e)
    }
}

/// Network fault/latency model.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetworkProfile {
    /// Sleep applied to each direction of a round trip.
    pub latency: Duration,
    /// Probability in [0, 1] that a request is dropped.
    pub drop_probability: f64,
}

/// Simple deterministic PRNG (xorshift*) so fault injection is
/// reproducible without pulling `rand` into the wire layer.
#[derive(Debug)]
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Bus traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Messages successfully delivered (round trips).
    pub delivered: u64,
    /// Messages dropped by fault injection.
    pub dropped: u64,
    /// Total encoded bytes moved (both directions).
    pub bytes: u64,
}

/// The in-memory bus.
pub struct InMemoryBus {
    endpoints: RwLock<HashMap<String, Arc<dyn Service>>>,
    profile: RwLock<NetworkProfile>,
    rng: Mutex<XorShift>,
    /// Richer, scenario-driven fault injection (drop/duplicate/delay on
    /// each direction); composes with the legacy [`NetworkProfile`].
    injector: RwLock<Option<Arc<FaultInjector>>>,
    telemetry: RwLock<Option<Arc<Telemetry>>>,
    delivered: AtomicU64,
    dropped: AtomicU64,
    bytes: AtomicU64,
}

/// Severity order for fault tags when one delivery observes several: a
/// drop explains a failed round trip better than a delay that also
/// happened along the way.
fn tag_priority(tag: FaultTag) -> u8 {
    match tag {
        FaultTag::Delay => 0,
        FaultTag::Duplicate => 1,
        _ => 2,
    }
}

/// Keeps the highest-priority fault tag observed so far.
fn upgrade_tag(slot: &mut Option<FaultTag>, tag: FaultTag) {
    if slot.is_none_or(|cur| tag_priority(tag) > tag_priority(cur)) {
        *slot = Some(tag);
    }
}

impl Default for InMemoryBus {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryBus {
    /// Creates a bus with no latency or faults.
    pub fn new() -> Self {
        Self {
            endpoints: RwLock::new(HashMap::new()),
            profile: RwLock::new(NetworkProfile::default()),
            rng: Mutex::new(XorShift(0x9E3779B97F4A7C15)),
            injector: RwLock::new(None),
            telemetry: RwLock::new(None),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Sets the network profile.
    pub fn set_profile(&self, profile: NetworkProfile) {
        *self.profile.write() = profile;
    }

    /// Installs (or clears) a scenario-driven fault injector. When present,
    /// every send consults it: the request can be dropped or delivered
    /// twice, the reply can be dropped, and each direction can be delayed.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.injector.write() = injector;
    }

    /// Reseeds the fault-injection PRNG (for reproducible experiments).
    pub fn reseed(&self, seed: u64) {
        self.rng.lock().0 = seed.max(1);
    }

    /// Installs (or clears) the telemetry registry. When present, every
    /// send records a `bus.deliver` histogram sample and a
    /// [`SpanKind::BusDeliver`] span joining the envelope's trace context,
    /// tagged with the injected fault (if any) it observed.
    pub fn set_telemetry(&self, telemetry: Option<Arc<Telemetry>>) {
        *self.telemetry.write() = telemetry;
    }

    /// Registers a service under a name.
    pub fn register(&self, name: &str, service: Arc<dyn Service>) {
        self.endpoints.write().insert(name.to_owned(), service);
    }

    /// Removes an endpoint, modelling a node death: subsequent sends fail
    /// fast with [`BusError::UnknownEndpoint`] (non-retryable) instead of
    /// reaching a ghost of the dead service. Returns whether the endpoint
    /// was registered.
    pub fn unregister(&self, name: &str) -> bool {
        self.endpoints.write().remove(name).is_some()
    }

    /// Sends `envelope` to endpoint `to`, returning the reply. The message
    /// is encoded and decoded in both directions.
    ///
    /// Dispatch under the threaded runtime: delivery is synchronous *in
    /// the caller's thread* — the bus resolves the endpoint (read lock,
    /// no lock held across `handle`) and invokes the service, and it is
    /// the shard server's `handle` that bridges threads by enqueueing the
    /// message on its per-shard inbound queue and blocking this caller
    /// until a shard worker fulfils the reply slot. So N concurrent
    /// senders (pipelined 2PC fan-outs, parallel clients) get N concurrent
    /// deliveries with no bus-global serialization; the bus's own traffic
    /// counters are `Relaxed` atomics, statistics with no happens-before
    /// to carry.
    pub fn send(&self, to: &str, envelope: &Envelope) -> Result<Envelope, BusError> {
        let Some(tel) = self.telemetry.read().clone() else {
            return self.deliver(to, envelope, &mut None);
        };
        // Join the sender's trace so the bus span — and everything the
        // service records while handling the message — shares the
        // envelope's context.
        let _guard = envelope.trace.map(|t| {
            push_trace(TraceContext {
                trace: TraceId(t.trace),
                parent: SpanId(t.span),
            })
        });
        let started = Instant::now();
        let mut fault = None;
        let result = self.deliver(to, envelope, &mut fault);
        tel.record_duration("bus.deliver", started.elapsed());
        let mut draft = tel.span_since(SpanKind::BusDeliver, started);
        if let Some(tag) = fault {
            tel.incr(&format!("bus.fault.{}", tag.as_str()));
            draft = draft.fault(tag);
        }
        if let Err(e) = &result {
            draft = draft.outcome(SpanOutcome::Error).note(e.to_string());
        }
        draft.finish();
        result
    }

    /// The untimed delivery path; reports the highest-priority injected
    /// fault it observed through `fault`.
    fn deliver(
        &self,
        to: &str,
        envelope: &Envelope,
        fault: &mut Option<FaultTag>,
    ) -> Result<Envelope, BusError> {
        let service = self
            .endpoints
            .read()
            .get(to)
            .cloned()
            .ok_or_else(|| BusError::UnknownEndpoint(to.to_owned()))?;
        let profile = *self.profile.read();
        if profile.drop_probability > 0.0 && self.rng.lock().next_f64() < profile.drop_probability {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            upgrade_tag(fault, FaultTag::DropRequest);
            return Err(BusError::DroppedRequest);
        }
        let injector = self.injector.read().clone();
        let request_fate = match &injector {
            Some(inj) => {
                if let Some(d) = inj.delay() {
                    upgrade_tag(fault, FaultTag::Delay);
                    std::thread::sleep(d);
                }
                inj.request_fate()
            }
            None => MessageFate::Deliver,
        };
        if request_fate == MessageFate::Drop {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            upgrade_tag(fault, FaultTag::DropRequest);
            return Err(BusError::DroppedRequest);
        }
        let wire_out = encode(envelope);
        if !profile.latency.is_zero() {
            std::thread::sleep(profile.latency);
        }
        let received = decode(&wire_out)?;
        let reply = service.handle(received);
        if request_fate == MessageFate::Duplicate {
            // The network delivered the request twice: the service handles
            // both copies (exercising server-side request-id dedup); the
            // caller consumes the first reply.
            upgrade_tag(fault, FaultTag::Duplicate);
            let duplicate = decode(&wire_out)?;
            let _ = service.handle(duplicate);
        }
        let wire_back = encode(&reply);
        if !profile.latency.is_zero() {
            std::thread::sleep(profile.latency);
        }
        if let Some(inj) = &injector {
            if let Some(d) = inj.delay() {
                upgrade_tag(fault, FaultTag::Delay);
                std::thread::sleep(d);
            }
            if inj.reply_fate() == MessageFate::Drop {
                // The service already processed the request; only the
                // answer is lost.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                upgrade_tag(fault, FaultTag::DropReply);
                return Err(BusError::DroppedReply);
            }
        }
        let decoded = decode(&wire_back)?;
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add((wire_out.len() + wire_back.len()) as u64, Ordering::Relaxed);
        Ok(decoded)
    }

    /// Traffic counters.
    pub fn stats(&self) -> BusStats {
        BusStats {
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::ActionRequest;

    fn echo_service() -> Arc<dyn Service> {
        Arc::new(|env: Envelope| env)
    }

    #[test]
    fn roundtrip_through_codec() {
        let bus = InMemoryBus::new();
        bus.register("echo", echo_service());
        let env = Envelope::new().with_action(ActionRequest::new("s", "op").param("k", "v"));
        let reply = bus.send("echo", &env).unwrap();
        assert_eq!(reply, env);
        let stats = bus.stats();
        assert_eq!(stats.delivered, 1);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn unknown_endpoint() {
        let bus = InMemoryBus::new();
        assert_eq!(
            bus.send("ghost", &Envelope::new()).unwrap_err(),
            BusError::UnknownEndpoint("ghost".into())
        );
    }

    #[test]
    fn drop_injection_is_deterministic() {
        let bus = InMemoryBus::new();
        bus.register("echo", echo_service());
        bus.set_profile(NetworkProfile {
            latency: Duration::ZERO,
            drop_probability: 0.5,
        });
        bus.reseed(42);
        let outcomes: Vec<bool> = (0..32)
            .map(|_| bus.send("echo", &Envelope::new()).is_ok())
            .collect();
        assert!(outcomes.iter().any(|o| *o), "some delivered");
        assert!(outcomes.iter().any(|o| !*o), "some dropped");
        // Re-run with the same seed: identical outcome sequence.
        bus.reseed(42);
        let outcomes2: Vec<bool> = (0..32)
            .map(|_| bus.send("echo", &Envelope::new()).is_ok())
            .collect();
        assert_eq!(outcomes, outcomes2);
        assert!(bus.stats().dropped > 0);
    }

    #[test]
    fn latency_is_applied() {
        let bus = InMemoryBus::new();
        bus.register("echo", echo_service());
        bus.set_profile(NetworkProfile {
            latency: Duration::from_millis(10),
            drop_probability: 0.0,
        });
        let start = std::time::Instant::now();
        bus.send("echo", &Envelope::new()).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(20),
            "two directions"
        );
    }
}
