//! An in-memory service bus substituting for HTTP/SOAP transport.
//!
//! Every message makes a full encode → (simulated network) → decode round
//! trip, so the wire format is exercised on every call and the measured
//! pipeline (experiment E2 / Figure 2) includes real serialisation cost.
//! Latency and message-loss injection model the loosely-coupled transport
//! the paper assumes without changing the isolation semantics under study.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use crate::codec::{decode, encode, CodecError};
use crate::envelope::Envelope;

/// A wire-level service endpoint.
pub trait Service: Send + Sync {
    /// Handles one message, producing the reply envelope.
    fn handle(&self, envelope: Envelope) -> Envelope;
}

impl<F> Service for F
where
    F: Fn(Envelope) -> Envelope + Send + Sync,
{
    fn handle(&self, envelope: Envelope) -> Envelope {
        self(envelope)
    }
}

/// Bus delivery errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// No endpoint registered under this name.
    UnknownEndpoint(String),
    /// The (injected) network dropped the message.
    Dropped,
    /// Codec failure in either direction.
    Codec(CodecError),
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusError::UnknownEndpoint(n) => write!(f, "unknown endpoint {n:?}"),
            BusError::Dropped => write!(f, "message dropped by network"),
            BusError::Codec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BusError {}

impl From<CodecError> for BusError {
    fn from(e: CodecError) -> Self {
        BusError::Codec(e)
    }
}

/// Network fault/latency model.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetworkProfile {
    /// Sleep applied to each direction of a round trip.
    pub latency: Duration,
    /// Probability in [0, 1] that a request is dropped.
    pub drop_probability: f64,
}

/// Simple deterministic PRNG (xorshift*) so fault injection is
/// reproducible without pulling `rand` into the wire layer.
#[derive(Debug)]
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Bus traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Messages successfully delivered (round trips).
    pub delivered: u64,
    /// Messages dropped by fault injection.
    pub dropped: u64,
    /// Total encoded bytes moved (both directions).
    pub bytes: u64,
}

/// The in-memory bus.
pub struct InMemoryBus {
    endpoints: RwLock<HashMap<String, Arc<dyn Service>>>,
    profile: RwLock<NetworkProfile>,
    rng: Mutex<XorShift>,
    delivered: AtomicU64,
    dropped: AtomicU64,
    bytes: AtomicU64,
}

impl Default for InMemoryBus {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryBus {
    /// Creates a bus with no latency or faults.
    pub fn new() -> Self {
        Self {
            endpoints: RwLock::new(HashMap::new()),
            profile: RwLock::new(NetworkProfile::default()),
            rng: Mutex::new(XorShift(0x9E3779B97F4A7C15)),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Sets the network profile.
    pub fn set_profile(&self, profile: NetworkProfile) {
        *self.profile.write() = profile;
    }

    /// Reseeds the fault-injection PRNG (for reproducible experiments).
    pub fn reseed(&self, seed: u64) {
        self.rng.lock().0 = seed.max(1);
    }

    /// Registers a service under a name.
    pub fn register(&self, name: &str, service: Arc<dyn Service>) {
        self.endpoints.write().insert(name.to_owned(), service);
    }

    /// Sends `envelope` to endpoint `to`, returning the reply. The message
    /// is encoded and decoded in both directions.
    pub fn send(&self, to: &str, envelope: &Envelope) -> Result<Envelope, BusError> {
        let service = self
            .endpoints
            .read()
            .get(to)
            .cloned()
            .ok_or_else(|| BusError::UnknownEndpoint(to.to_owned()))?;
        let profile = *self.profile.read();
        if profile.drop_probability > 0.0 && self.rng.lock().next_f64() < profile.drop_probability {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(BusError::Dropped);
        }
        let wire_out = encode(envelope);
        if !profile.latency.is_zero() {
            std::thread::sleep(profile.latency);
        }
        let received = decode(&wire_out)?;
        let reply = service.handle(received);
        let wire_back = encode(&reply);
        if !profile.latency.is_zero() {
            std::thread::sleep(profile.latency);
        }
        let decoded = decode(&wire_back)?;
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add((wire_out.len() + wire_back.len()) as u64, Ordering::Relaxed);
        Ok(decoded)
    }

    /// Traffic counters.
    pub fn stats(&self) -> BusStats {
        BusStats {
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::ActionRequest;

    fn echo_service() -> Arc<dyn Service> {
        Arc::new(|env: Envelope| env)
    }

    #[test]
    fn roundtrip_through_codec() {
        let bus = InMemoryBus::new();
        bus.register("echo", echo_service());
        let env = Envelope::new().with_action(ActionRequest::new("s", "op").param("k", "v"));
        let reply = bus.send("echo", &env).unwrap();
        assert_eq!(reply, env);
        let stats = bus.stats();
        assert_eq!(stats.delivered, 1);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn unknown_endpoint() {
        let bus = InMemoryBus::new();
        assert_eq!(
            bus.send("ghost", &Envelope::new()).unwrap_err(),
            BusError::UnknownEndpoint("ghost".into())
        );
    }

    #[test]
    fn drop_injection_is_deterministic() {
        let bus = InMemoryBus::new();
        bus.register("echo", echo_service());
        bus.set_profile(NetworkProfile {
            latency: Duration::ZERO,
            drop_probability: 0.5,
        });
        bus.reseed(42);
        let outcomes: Vec<bool> = (0..32)
            .map(|_| bus.send("echo", &Envelope::new()).is_ok())
            .collect();
        assert!(outcomes.iter().any(|o| *o), "some delivered");
        assert!(outcomes.iter().any(|o| !*o), "some dropped");
        // Re-run with the same seed: identical outcome sequence.
        bus.reseed(42);
        let outcomes2: Vec<bool> = (0..32)
            .map(|_| bus.send("echo", &Envelope::new()).is_ok())
            .collect();
        assert_eq!(outcomes, outcomes2);
        assert!(bus.stats().dropped > 0);
    }

    #[test]
    fn latency_is_applied() {
        let bus = InMemoryBus::new();
        bus.register("echo", echo_service());
        bus.set_profile(NetworkProfile {
            latency: Duration::from_millis(10),
            drop_probability: 0.0,
        });
        let start = std::time::Instant::now();
        bus.send("echo", &Envelope::new()).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(20),
            "two directions"
        );
    }
}
