//! `promises-wire` — the SOAP-style Promise protocol (paper §6) over an
//! in-memory service bus.
//!
//! The paper maps its protocol onto SOAP headers; this crate substitutes a
//! compact XML subset ([`xml`]) and an in-process bus ([`InMemoryBus`])
//! with latency and fault injection for the HTTP transport. The protocol
//! elements — `<promise-request>`, `<promise-response>`, `<release>`,
//! `<environment>`, and action bodies — match §6 element for element, and
//! every message is round-tripped through the codec so the wire format is
//! exercised on every call.
//!
//! [`PromiseGateway`] is the Figure 2 intermediary: it splits each message
//! into Promise and Action parts, runs promise requests atomically, and
//! executes the action under its (possibly just-granted) environment.

#![warn(missing_docs)]

mod bus;
mod client;
mod codec;
mod envelope;
mod gateway;
pub mod xml;

pub use bus::{BusError, BusStats, InMemoryBus, NetworkProfile, Service};
pub use client::{RetryPolicy, RetryStats, RetryingClient};
pub use codec::{decode, encode, CodecError};
pub use envelope::{
    ActionRequest, ActionResponse, EnvEntry, EnvRef, Envelope, EnvironmentHeader,
    PromiseRequestHeader, PromiseResponseHeader, PromiseResult, ResolutionHeader, ResolutionOp,
    ResolutionResponse, ResolveRef, TraceHeader,
};
pub use gateway::{ActionHandler, PromiseGateway};
