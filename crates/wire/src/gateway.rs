//! The promise gateway: the wire-facing face of a promise manager.
//!
//! This is the intermediary of Figure 2: "The promise manager receives
//! each message as it arrives from the client and breaks it up into its
//! Promise and Action component pieces" (§8). Per envelope the gateway:
//!
//! 1. processes `<release>` headers;
//! 2. processes `<promise-request>` headers, emitting a
//!    `<promise-response>` for each (atomic per request, §4);
//! 3. if the body carries an action, resolves its `<environment>` —
//!    including [`EnvRef::Correlation`] references to promises granted in
//!    step 2, supporting §6's combined request+action messages — and runs
//!    the action through [`PromiseManager::execute`], which performs the
//!    post-action promise check and rolls back violating actions.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use promises_core::{
    parse_predicate, ActionError, Environment, PromiseDecision, PromiseError, PromiseId,
    PromiseManager, PromiseRequestSpec,
};
use promises_rm::{ResourceManager, Txn};
use promises_telemetry::{push_trace, SpanId, TraceContext, TraceId};

use crate::bus::Service;
use crate::envelope::{
    ActionRequest, ActionResponse, EnvRef, Envelope, PromiseResponseHeader, PromiseResult,
    ResolutionOp, ResolutionResponse, ResolveRef,
};

/// Handler for one application operation: runs inside the promise
/// manager's transaction; returns result fields or an application error.
pub type ActionHandler = Arc<
    dyn Fn(&ResourceManager, &Txn, &ActionRequest) -> Result<Vec<(String, String)>, ActionError>
        + Send
        + Sync,
>;

/// Wire-facing adapter around a [`PromiseManager`].
pub struct PromiseGateway {
    pm: Arc<PromiseManager>,
    handlers: RwLock<HashMap<(String, String), ActionHandler>>,
}

impl PromiseGateway {
    /// Creates a gateway for a manager.
    pub fn new(pm: Arc<PromiseManager>) -> Self {
        Self {
            pm,
            handlers: RwLock::new(HashMap::new()),
        }
    }

    /// The wrapped promise manager.
    pub fn manager(&self) -> &Arc<PromiseManager> {
        &self.pm
    }

    /// Registers the handler for `(service, operation)` action bodies.
    pub fn register_handler(&self, service: &str, operation: &str, handler: ActionHandler) {
        self.handlers
            .write()
            .insert((service.to_owned(), operation.to_owned()), handler);
    }

    fn process_promise_requests(
        &self,
        envelope: &Envelope,
        reply: &mut Envelope,
        granted_by_correlation: &mut HashMap<String, PromiseId>,
    ) {
        for req in &envelope.promise_requests {
            let mut predicates = Vec::new();
            let mut parse_failure = None;
            for text in &req.predicates {
                match parse_predicate(text) {
                    Ok(p) => predicates.push(p),
                    Err(e) => {
                        parse_failure = Some(format!("bad predicate {text:?}: {e}"));
                        break;
                    }
                }
            }
            if let Some(msg) = parse_failure {
                reply.promise_responses.push(PromiseResponseHeader {
                    promise_id: None,
                    result: PromiseResult::Rejected(msg),
                    expires_at: 0,
                    correlation: req.request_id.clone(),
                    granted_predicates: vec![],
                });
                continue;
            }
            let mut spec = PromiseRequestSpec::new(
                promises_core::RequestId(req.request_id.clone()),
                promises_core::ClientId(req.client.clone()),
            )
            .duration_ms(req.duration_ms);
            spec.predicates = predicates;
            spec.exchange = req.exchange.iter().map(|id| PromiseId(*id)).collect();

            let rejected = |msg: String| PromiseResponseHeader {
                promise_id: None,
                result: PromiseResult::Rejected(msg),
                expires_at: 0,
                correlation: req.request_id.clone(),
                granted_predicates: vec![],
            };
            let header = if req.prepare {
                // Cross-shard prepare: grant as a prepared hold (journalled
                // in doubt) awaiting the coordinator's <resolve>. Prepare
                // and negotiate do not compose — a prepared hold must be
                // exactly the predicates the coordinator split, or the
                // cross-shard union would silently weaken.
                if req.negotiate {
                    reply.promise_responses.push(rejected(
                        "prepare and negotiate are mutually exclusive".into(),
                    ));
                    continue;
                }
                match self.pm.request_prepared(spec) {
                    Ok(resp) => match resp.decision {
                        PromiseDecision::Granted {
                            promise,
                            expires_at,
                        } => {
                            granted_by_correlation.insert(req.request_id.clone(), promise);
                            PromiseResponseHeader {
                                promise_id: Some(promise.0),
                                result: PromiseResult::Accepted,
                                expires_at,
                                correlation: req.request_id.clone(),
                                granted_predicates: vec![],
                            }
                        }
                        PromiseDecision::Rejected { reason } => rejected(reason.to_string()),
                    },
                    Err(e) => rejected(e.to_string()),
                }
            } else if req.negotiate {
                // The §6 "accepted with the condition XX" possibility:
                // grant the best weakened form (desirable clauses dropped
                // last-first), reporting the condition and the predicates
                // as actually granted.
                match self.pm.request_negotiated(spec) {
                    Ok(out) => match out.response.decision {
                        PromiseDecision::Granted {
                            promise,
                            expires_at,
                        } => {
                            granted_by_correlation.insert(req.request_id.clone(), promise);
                            let dropped = out.total_dropped();
                            PromiseResponseHeader {
                                promise_id: Some(promise.0),
                                result: if dropped == 0 {
                                    PromiseResult::Accepted
                                } else {
                                    PromiseResult::AcceptedWithCondition(format!(
                                        "dropped {dropped} desirable clause(s)"
                                    ))
                                },
                                expires_at,
                                correlation: req.request_id.clone(),
                                granted_predicates: out
                                    .granted_predicates
                                    .iter()
                                    .map(ToString::to_string)
                                    .collect(),
                            }
                        }
                        PromiseDecision::Rejected { reason } => rejected(reason.to_string()),
                    },
                    Err(e) => rejected(e.to_string()),
                }
            } else {
                match self.pm.request(spec) {
                    Ok(resp) => match resp.decision {
                        PromiseDecision::Granted {
                            promise,
                            expires_at,
                        } => {
                            granted_by_correlation.insert(req.request_id.clone(), promise);
                            PromiseResponseHeader {
                                promise_id: Some(promise.0),
                                result: PromiseResult::Accepted,
                                expires_at,
                                correlation: req.request_id.clone(),
                                granted_predicates: vec![],
                            }
                        }
                        PromiseDecision::Rejected { reason } => rejected(reason.to_string()),
                    },
                    Err(e) => rejected(e.to_string()),
                }
            };
            reply.promise_responses.push(header);
        }
    }

    fn run_action(
        &self,
        envelope: &Envelope,
        granted_by_correlation: &HashMap<String, PromiseId>,
    ) -> ActionResponse {
        let Some(action) = &envelope.action else {
            return ActionResponse::success();
        };
        let handler = self
            .handlers
            .read()
            .get(&(action.service.clone(), action.operation.clone()))
            .cloned();
        let Some(handler) = handler else {
            return ActionResponse::failure(format!(
                "no handler for {}/{}",
                action.service, action.operation
            ));
        };

        // Resolve the environment, including same-message correlations.
        let mut env = Environment::none();
        if let Some(header) = &envelope.environment {
            for entry in &header.entries {
                let id = match &entry.reference {
                    EnvRef::Id(id) => PromiseId(*id),
                    EnvRef::Correlation(c) => match granted_by_correlation.get(c) {
                        Some(id) => *id,
                        None => {
                            return ActionResponse::failure(format!(
                                "environment references ungranted correlation {c:?}"
                            ))
                        }
                    },
                };
                env = if entry.release_after {
                    env.releasing(id)
                } else {
                    env.under(id)
                };
            }
        }

        let result = self.pm.execute(&env, |rm, txn| handler(rm, txn, action));
        match result {
            Ok(fields) => {
                let mut resp = ActionResponse::success();
                resp.fields = fields;
                resp
            }
            Err(PromiseError::ActionFailed(msg)) => ActionResponse::failure(msg),
            Err(e) => ActionResponse::failure(e.to_string()),
        }
    }
}

impl Service for PromiseGateway {
    fn handle(&self, envelope: Envelope) -> Envelope {
        // Adopt the sender's trace context so PM/RM spans recorded while
        // handling this message join the client's trace — effective even
        // when the gateway is invoked without an instrumented bus.
        let _guard = envelope.trace.map(|t| {
            push_trace(TraceContext {
                trace: TraceId(t.trace),
                parent: SpanId(t.span),
            })
        });
        let mut reply = Envelope::new();
        // 1. Standalone releases.
        for id in &envelope.releases {
            let _ = self.pm.release(PromiseId(*id));
        }
        // 1b. Coordinator resolutions of prepared holds. A request-keyed
        // reference that no longer maps to a live promise resolves to
        // `applied: false` rather than an error: the hold either was never
        // granted or already expired, and either way the shard holds
        // nothing for this transaction.
        for r in &envelope.resolutions {
            let id = match &r.reference {
                ResolveRef::Id(id) => Some(PromiseId(*id)),
                ResolveRef::Request { client, request } => self.pm.promise_for_request(
                    &promises_core::ClientId(client.clone()),
                    &promises_core::RequestId(request.clone()),
                ),
            };
            let outcome = match id {
                None => Ok(false),
                Some(id) => match r.op {
                    ResolutionOp::Commit => self.pm.commit_prepared(id),
                    ResolutionOp::Abort => self.pm.abort_prepared(id),
                },
            };
            let (applied, error) = match outcome {
                Ok(applied) => (applied, None),
                Err(e) => (false, Some(e.to_string())),
            };
            reply.resolution_responses.push(ResolutionResponse {
                reference: r.reference.clone(),
                op: r.op,
                applied,
                error,
            });
        }
        // 2. Promise requests (each atomic).
        let mut granted = HashMap::new();
        self.process_promise_requests(&envelope, &mut reply, &mut granted);
        // 3. The action, under its (possibly just-granted) environment.
        if envelope.action.is_some() {
            reply.action_response = Some(self.run_action(&envelope, &granted));
        }
        reply
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{EnvEntry, EnvironmentHeader, PromiseRequestHeader};
    use promises_core::{Catalog, PoolSchema, SystemClock};

    fn gateway() -> PromiseGateway {
        let rm = Arc::new(ResourceManager::new());
        let pm = Arc::new(PromiseManager::new(rm, Arc::new(SystemClock::new())));
        pm.register_pool(PoolSchema::quantity("widgets"));
        pm.seed_quantity("widgets", 10).unwrap();
        let gw = PromiseGateway::new(pm);
        gw.register_handler(
            "merchant",
            "purchase",
            Arc::new(|rm, txn, action| {
                let qty: i64 = action
                    .get("qty")
                    .and_then(|v| v.parse().ok())
                    .ok_or(ActionError::App("missing qty".into()))?;
                rm.update(txn, Catalog::QTY_TABLE, "widgets", |r| {
                    let q = r.int("qty").unwrap();
                    r.set("qty", q - qty);
                })?;
                Ok(vec![("taken".into(), qty.to_string())])
            }),
        );
        gw
    }

    fn request_header(id: &str, predicate: &str) -> PromiseRequestHeader {
        PromiseRequestHeader {
            request_id: id.into(),
            client: "test".into(),
            predicates: vec![predicate.into()],
            duration_ms: 60_000,
            exchange: vec![],
            negotiate: false,
            prepare: false,
        }
    }

    #[test]
    fn grant_and_reject_over_the_wire() {
        let gw = gateway();
        let reply = gw.handle(
            Envelope::new()
                .with_promise_request(request_header("r1", "qty('widgets') >= 8"))
                .with_promise_request(request_header("r2", "qty('widgets') >= 8")),
        );
        assert_eq!(reply.promise_responses.len(), 2);
        assert!(matches!(
            reply.response_for("r1").unwrap().result,
            PromiseResult::Accepted
        ));
        assert!(matches!(
            reply.response_for("r2").unwrap().result,
            PromiseResult::Rejected(_)
        ));
    }

    #[test]
    fn combined_request_and_action_with_correlation_environment() {
        // §6: a single message requests a promise AND performs the action
        // under it, releasing it afterwards.
        let gw = gateway();
        let envelope = Envelope::new()
            .with_promise_request(request_header("r1", "qty('widgets') >= 5"))
            .with_environment(EnvironmentHeader {
                entries: vec![EnvEntry {
                    reference: EnvRef::Correlation("r1".into()),
                    release_after: true,
                }],
            })
            .with_action(ActionRequest::new("merchant", "purchase").param("qty", 5));
        let reply = gw.handle(envelope);
        assert!(matches!(
            reply.response_for("r1").unwrap().result,
            PromiseResult::Accepted
        ));
        let action = reply.action_response.unwrap();
        assert!(action.ok, "action failed: {:?}", action.error);
        assert_eq!(gw.manager().live_count(), 0, "promise released with action");
    }

    #[test]
    fn bad_predicate_rejected_not_crashing() {
        let gw = gateway();
        let reply =
            gw.handle(Envelope::new().with_promise_request(request_header("r1", "gibberish")));
        assert!(matches!(
            reply.response_for("r1").unwrap().result,
            PromiseResult::Rejected(_)
        ));
    }

    #[test]
    fn unknown_handler_fails_cleanly() {
        let gw = gateway();
        let reply = gw.handle(Envelope::new().with_action(ActionRequest::new("ghost", "noop")));
        let resp = reply.action_response.unwrap();
        assert!(!resp.ok);
        assert!(resp.error.unwrap().contains("no handler"));
    }

    #[test]
    fn environment_with_unknown_correlation_fails() {
        let gw = gateway();
        let reply = gw.handle(
            Envelope::new()
                .with_environment(EnvironmentHeader {
                    entries: vec![EnvEntry {
                        reference: EnvRef::Correlation("never-granted".into()),
                        release_after: false,
                    }],
                })
                .with_action(ActionRequest::new("merchant", "purchase").param("qty", 1)),
        );
        let resp = reply.action_response.unwrap();
        assert!(!resp.ok);
    }

    #[test]
    fn standalone_release_over_the_wire() {
        let gw = gateway();
        let reply = gw.handle(
            Envelope::new().with_promise_request(request_header("r1", "qty('widgets') >= 10")),
        );
        let id = reply.response_for("r1").unwrap().promise_id.unwrap();
        assert_eq!(gw.manager().live_count(), 1);
        gw.handle(Envelope::new().with_release(id));
        assert_eq!(gw.manager().live_count(), 0);
    }

    fn prepare_header(id: &str, predicate: &str) -> PromiseRequestHeader {
        PromiseRequestHeader {
            prepare: true,
            ..request_header(id, predicate)
        }
    }

    fn resolve(gw: &PromiseGateway, reference: ResolveRef, op: ResolutionOp) -> ResolutionResponse {
        let reply = gw.handle(Envelope::new().with_resolution(reference, op));
        reply.resolution_responses.into_iter().next().unwrap()
    }

    #[test]
    fn prepared_hold_reserves_until_committed() {
        let gw = gateway();
        let reply = gw.handle(
            Envelope::new().with_promise_request(prepare_header("p1", "qty('widgets') >= 8")),
        );
        let id = reply.response_for("p1").unwrap().promise_id.unwrap();
        assert!(gw.manager().is_prepared(promises_core::PromiseId(id)));
        // The hold reserves like any grant: a conflicting request rejects.
        let reply = gw.handle(
            Envelope::new().with_promise_request(request_header("r2", "qty('widgets') >= 8")),
        );
        assert!(matches!(
            reply.response_for("r2").unwrap().result,
            PromiseResult::Rejected(_)
        ));
        let resp = resolve(&gw, ResolveRef::Id(id), ResolutionOp::Commit);
        assert!(resp.applied, "first commit applies: {:?}", resp.error);
        assert!(!gw.manager().is_prepared(promises_core::PromiseId(id)));
        // Idempotent: a retried commit is acknowledged without re-applying.
        let again = resolve(&gw, ResolveRef::Id(id), ResolutionOp::Commit);
        assert!(!again.applied);
        assert!(again.error.is_none());
    }

    #[test]
    fn aborted_hold_releases_resources() {
        let gw = gateway();
        let reply = gw.handle(
            Envelope::new().with_promise_request(prepare_header("p1", "qty('widgets') >= 8")),
        );
        let id = reply.response_for("p1").unwrap().promise_id.unwrap();
        let resp = resolve(&gw, ResolveRef::Id(id), ResolutionOp::Abort);
        assert!(resp.applied);
        assert_eq!(gw.manager().live_count(), 0);
        // The freed quantity is grantable again.
        let reply = gw.handle(
            Envelope::new().with_promise_request(request_header("r2", "qty('widgets') >= 8")),
        );
        assert!(matches!(
            reply.response_for("r2").unwrap().result,
            PromiseResult::Accepted
        ));
    }

    #[test]
    fn request_keyed_resolution_finds_hold_and_tolerates_absence() {
        let gw = gateway();
        gw.handle(
            Envelope::new().with_promise_request(prepare_header("p1", "qty('widgets') >= 3")),
        );
        // Abort by (client, request) — the reply-was-lost recovery path.
        let by_request = ResolveRef::Request {
            client: "test".into(),
            request: "p1".into(),
        };
        let resp = resolve(&gw, by_request.clone(), ResolutionOp::Abort);
        assert!(resp.applied);
        assert_eq!(gw.manager().live_count(), 0);
        // A shard that never saw the prepare has nothing to do.
        let resp = resolve(&gw, by_request, ResolutionOp::Abort);
        assert!(!resp.applied);
        assert!(resp.error.is_none());
    }

    #[test]
    fn prepare_and_negotiate_do_not_compose() {
        let gw = gateway();
        let reply = gw.handle(Envelope::new().with_promise_request(PromiseRequestHeader {
            negotiate: true,
            ..prepare_header("p1", "qty('widgets') >= 1")
        }));
        assert!(matches!(
            reply.response_for("p1").unwrap().result,
            PromiseResult::Rejected(_)
        ));
        assert_eq!(gw.manager().live_count(), 0);
    }

    #[test]
    fn violating_action_reported_as_failure() {
        let gw = gateway();
        // Grant 8; then an unprotected purchase of 5 must roll back.
        gw.handle(
            Envelope::new().with_promise_request(request_header("r1", "qty('widgets') >= 8")),
        );
        let reply = gw.handle(
            Envelope::new().with_action(ActionRequest::new("merchant", "purchase").param("qty", 5)),
        );
        let resp = reply.action_response.unwrap();
        assert!(!resp.ok);
        assert!(resp.error.unwrap().contains("rolled back"));
    }
}

#[cfg(test)]
mod negotiate_tests {
    use super::*;
    use crate::envelope::{Envelope, PromiseRequestHeader, PromiseResult};
    use promises_core::{PoolSchema, PropertyDef, SystemClock};
    use promises_rm::Record;

    fn hotel_gateway() -> PromiseGateway {
        let rm = Arc::new(ResourceManager::new());
        let pm = Arc::new(PromiseManager::new(rm, Arc::new(SystemClock::new())));
        pm.register_pool(PoolSchema::instances(
            "rooms",
            vec![PropertyDef::plain("view"), PropertyDef::plain("beds")],
        ));
        pm.seed_instance(
            "rooms",
            "101",
            Record::new().with("view", false).with("beds", 2i64),
        )
        .unwrap();
        PromiseGateway::new(pm)
    }

    fn negotiable(id: &str, predicate: &str) -> PromiseRequestHeader {
        PromiseRequestHeader {
            request_id: id.into(),
            client: "test".into(),
            predicates: vec![predicate.into()],
            duration_ms: 60_000,
            exchange: vec![],
            negotiate: true,
            prepare: false,
        }
    }

    #[test]
    fn negotiated_request_accepted_with_condition() {
        let gw = hotel_gateway();
        let reply = gw.handle(Envelope::new().with_promise_request(negotiable(
            "r1",
            "prop('rooms'): beds == 2 && desirable(view == true)",
        )));
        let resp = reply.response_for("r1").unwrap();
        assert!(matches!(
            &resp.result,
            PromiseResult::AcceptedWithCondition(c) if c.contains("1 desirable")
        ));
        assert!(resp.promise_id.is_some());
        assert_eq!(resp.granted_predicates.len(), 1);
        assert!(
            !resp.granted_predicates[0].contains("desirable(view"),
            "granted form must have the desirable weakened: {}",
            resp.granted_predicates[0]
        );
    }

    #[test]
    fn negotiated_request_plain_accept_when_fully_satisfiable() {
        let gw = hotel_gateway();
        let reply = gw.handle(Envelope::new().with_promise_request(negotiable(
            "r1",
            "prop('rooms'): beds == 2 && desirable(view == false)",
        )));
        let resp = reply.response_for("r1").unwrap();
        assert!(matches!(resp.result, PromiseResult::Accepted));
    }

    #[test]
    fn negotiated_request_rejected_when_essentials_fail() {
        let gw = hotel_gateway();
        let reply = gw.handle(Envelope::new().with_promise_request(negotiable(
            "r1",
            "prop('rooms'): beds == 7 && desirable(view == true)",
        )));
        assert!(matches!(
            reply.response_for("r1").unwrap().result,
            PromiseResult::Rejected(_)
        ));
    }

    #[test]
    fn negotiated_response_roundtrips_the_codec() {
        let gw = hotel_gateway();
        let reply = gw.handle(Envelope::new().with_promise_request(negotiable(
            "r1",
            "prop('rooms'): beds == 2 && desirable(view == true)",
        )));
        let xml = crate::codec::encode(&reply);
        let back = crate::codec::decode(&xml).unwrap();
        assert_eq!(back, reply);
    }
}
