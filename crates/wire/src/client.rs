//! Client-side retry with timeout classification and seeded backoff.
//!
//! The bus distinguishes [`BusError::DroppedRequest`] (service never ran —
//! plain retry is safe) from [`BusError::DroppedReply`] (service ran, answer
//! lost — a blind retry could re-apply the operation). Both are retried
//! here because the protocol makes retries idempotent: a resent envelope
//! carries the *same* request ids, and the promise manager's request-id
//! index answers a duplicate grant with the original promise instead of
//! granting — and charging — twice. Non-retryable errors (unknown endpoint,
//! codec failures) are surfaced immediately.
//!
//! Backoff is capped exponential with full jitter drawn from a seeded PRNG,
//! so a fault run is reproducible end to end from the scenario seed plus
//! the client seed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use rand::{rngs::StdRng, Rng, SeedableRng};

use promises_telemetry::{push_trace, FaultTag, SpanKind, SpanOutcome, Telemetry};

use crate::bus::{BusError, InMemoryBus};
use crate::envelope::Envelope;

/// Retry/backoff configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` sends total).
    pub max_retries: u32,
    /// Backoff before retry `n` is uniform in `[0, min(base << n, cap)]`.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the jitter PRNG (full jitter, deterministic per seed).
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// A policy suited to the in-memory bus: 8 retries, 50µs base doubling
    /// to a 5ms cap.
    pub fn new(jitter_seed: u64) -> Self {
        Self {
            max_retries: 8,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
            jitter_seed,
        }
    }

    /// A policy that never retries (every error surfaces immediately).
    pub fn no_retries() -> Self {
        Self {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// Sets the retry budget.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    fn backoff(&self, rng: &mut StdRng, attempt: u32) -> Duration {
        let base = self.base_backoff.as_nanos() as u64;
        if base == 0 {
            return Duration::ZERO;
        }
        let cap = self.max_backoff.as_nanos() as u64;
        let ceiling = base
            .checked_shl(attempt.min(20))
            .unwrap_or(u64::MAX)
            .min(cap.max(base));
        Duration::from_nanos(rng.random_range(0..=ceiling))
    }
}

/// Counters for one client's retry behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Logical sends (each may involve several attempts).
    pub sends: u64,
    /// Individual retry attempts after a retryable failure.
    pub retries: u64,
    /// Sends that exhausted the retry budget and surfaced a transport
    /// error to the caller.
    pub exhausted: u64,
}

/// A bus client that retries transport faults with seeded backoff.
pub struct RetryingClient {
    bus: Arc<InMemoryBus>,
    policy: RetryPolicy,
    rng: Mutex<StdRng>,
    telemetry: RwLock<Option<Arc<Telemetry>>>,
    sends: AtomicU64,
    retries: AtomicU64,
    exhausted: AtomicU64,
}

impl RetryingClient {
    /// Wraps `bus` with the given policy.
    pub fn new(bus: Arc<InMemoryBus>, policy: RetryPolicy) -> Self {
        Self {
            bus,
            policy,
            rng: Mutex::new(StdRng::seed_from_u64(policy.jitter_seed)),
            telemetry: RwLock::new(None),
            sends: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
        }
    }

    /// Builder: attaches a telemetry registry. Each logical send then
    /// roots a [`SpanKind::ClientSend`] trace, each bus attempt records a
    /// child [`SpanKind::ClientAttempt`] span (fresh span per retry, same
    /// trace), and outgoing envelopes carry the `(trace, attempt-span)`
    /// pair so the receiving side joins the same trace.
    pub fn with_telemetry(self, telemetry: Arc<Telemetry>) -> Self {
        *self.telemetry.write() = Some(telemetry);
        self
    }

    /// Installs (or clears) the telemetry registry.
    pub fn set_telemetry(&self, telemetry: Option<Arc<Telemetry>>) {
        *self.telemetry.write() = telemetry;
    }

    /// The underlying bus.
    pub fn bus(&self) -> &Arc<InMemoryBus> {
        &self.bus
    }

    /// Sends `envelope` to `to`, retrying retryable transport faults with
    /// capped exponential backoff. The envelope is resent verbatim — same
    /// request ids — so server-side dedup keeps retried grants single.
    pub fn send(&self, to: &str, envelope: &Envelope) -> Result<Envelope, BusError> {
        self.sends.fetch_add(1, Ordering::Relaxed);
        let Some(tel) = self.telemetry.read().clone() else {
            return self.send_inner(to, envelope, None);
        };
        let started = Instant::now();
        // The send span roots the trace; attempts parent on it through the
        // ambient context for the duration of the retry loop.
        let send_span = tel.span_since(SpanKind::ClientSend, started);
        let result = {
            let _guard = push_trace(send_span.context());
            self.send_inner(to, envelope, Some(&tel))
        };
        tel.record_duration("client.send", started.elapsed());
        match &result {
            Ok(_) => send_span.finish(),
            Err(e) => send_span
                .outcome(SpanOutcome::Error)
                .note(e.to_string())
                .finish(),
        }
        result
    }

    /// The retry loop. When telemetry is attached, every attempt gets its
    /// own span and the envelope is re-stamped with that attempt's span id.
    fn send_inner(
        &self,
        to: &str,
        envelope: &Envelope,
        tel: Option<&Telemetry>,
    ) -> Result<Envelope, BusError> {
        let mut attempt: u32 = 0;
        loop {
            let outcome = match tel {
                None => self.bus.send(to, envelope),
                Some(tel) => {
                    let draft = tel.span(SpanKind::ClientAttempt);
                    let ctx = draft.context();
                    let traced = envelope.clone().with_trace(ctx.trace.0, ctx.parent.0);
                    let result = self.bus.send(to, &traced);
                    match &result {
                        Ok(_) => draft.note(format!("attempt={attempt}")).finish(),
                        Err(e) => {
                            let mut d = draft
                                .outcome(SpanOutcome::Error)
                                .note(format!("attempt={attempt}: {e}"));
                            d = match e {
                                BusError::DroppedRequest => d.fault(FaultTag::DropRequest),
                                BusError::DroppedReply => d.fault(FaultTag::DropReply),
                                _ => d,
                            };
                            d.finish();
                        }
                    }
                    result
                }
            };
            match outcome {
                Ok(reply) => return Ok(reply),
                Err(e) if e.retryable() && attempt < self.policy.max_retries => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(tel) = tel {
                        tel.incr("client.retry");
                    }
                    let pause = self.policy.backoff(&mut self.rng.lock(), attempt);
                    attempt += 1;
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                Err(e) => {
                    if e.retryable() {
                        self.exhausted.fetch_add(1, Ordering::Relaxed);
                        if let Some(tel) = tel {
                            tel.incr("client.exhausted");
                        }
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RetryStats {
        RetryStats {
            sends: self.sends.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Service;
    use crate::envelope::ActionRequest;
    use promises_faults::{FaultInjector, FaultScenario};

    fn echo_bus() -> Arc<InMemoryBus> {
        let bus = Arc::new(InMemoryBus::new());
        bus.register("echo", Arc::new(|env: Envelope| env) as Arc<dyn Service>);
        bus
    }

    #[test]
    fn retries_through_heavy_drop_rates() {
        let bus = echo_bus();
        bus.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultScenario::uniform(
            7, 0.4,
        )))));
        let client = RetryingClient::new(Arc::clone(&bus), RetryPolicy::new(11));
        let env = Envelope::new().with_action(ActionRequest::new("s", "op").param("k", "v"));
        let mut delivered = 0;
        for _ in 0..50 {
            if client.send("echo", &env).is_ok() {
                delivered += 1;
            }
        }
        assert!(
            delivered >= 45,
            "retry should mask most faults: {delivered}/50 ({:?})",
            client.stats()
        );
        assert!(
            client.stats().retries > 0,
            "faults should have forced retries"
        );
    }

    #[test]
    fn non_retryable_errors_surface_immediately() {
        let bus = Arc::new(InMemoryBus::new());
        let client = RetryingClient::new(bus, RetryPolicy::new(1));
        let err = client.send("ghost", &Envelope::new()).unwrap_err();
        assert!(!err.retryable());
        assert_eq!(client.stats().retries, 0);
    }

    #[test]
    fn no_retries_policy_surfaces_first_drop() {
        let bus = echo_bus();
        bus.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultScenario {
            drop_request: 1.0,
            ..FaultScenario::quiet(3)
        }))));
        let client = RetryingClient::new(Arc::clone(&bus), RetryPolicy::no_retries());
        assert_eq!(
            client.send("echo", &Envelope::new()).unwrap_err(),
            BusError::DroppedRequest
        );
        assert_eq!(client.stats().exhausted, 1);
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_capped() {
        let policy = RetryPolicy::new(42);
        let mut a = StdRng::seed_from_u64(policy.jitter_seed);
        let mut b = StdRng::seed_from_u64(policy.jitter_seed);
        for attempt in 0..12 {
            let x = policy.backoff(&mut a, attempt);
            let y = policy.backoff(&mut b, attempt);
            assert_eq!(x, y);
            assert!(x <= policy.max_backoff);
        }
    }
}
