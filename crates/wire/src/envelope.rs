//! Message envelopes carrying the §6 promise protocol.
//!
//! "All of our promise protocol messages can be transferred as elements in
//! SOAP message headers and the associated actions can be carried within
//! the body of the same SOAP messages" (§2). An [`Envelope`] may carry any
//! subset of the protocol elements — promise requests, promise responses,
//! releases, an environment, an action, an action response — "related to
//! the message body or unrelated", including piggybacked responses (§6).

/// A `<promise-request>` header element (§6).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PromiseRequestHeader {
    /// Request identifier correlating request and response.
    pub request_id: String,
    /// Requesting client identity.
    pub client: String,
    /// Predicates in the text syntax of [`promises_core::parse_predicate`]
    /// (each names its resource pool, fulfilling §6's "set of resources").
    pub predicates: Vec<String>,
    /// Requested promise duration in milliseconds.
    pub duration_ms: u64,
    /// Existing promise ids released iff this request is granted.
    pub exchange: Vec<u64>,
    /// If true, the promise maker may answer with an
    /// [`PromiseResult::AcceptedWithCondition`] response granting a
    /// weakened form of the predicates (desirable clauses dropped) — the
    /// §6 "accepted with the condition XX" possibility.
    pub negotiate: bool,
    /// If true, a granted promise is a *prepared hold* awaiting a
    /// cross-shard coordinator's [`ResolutionHeader`] commit/abort —
    /// resources are reserved like any grant (so a committed cross-shard
    /// transaction can never be oversold), but the hold is journalled as
    /// in-doubt until resolved. Mutually exclusive with `negotiate`.
    pub prepare: bool,
}

/// Result carried in a `<promise-response>` (§6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PromiseResult {
    /// Request accepted; a promise id is available.
    Accepted,
    /// Request accepted after negotiation, under the stated condition
    /// (e.g. "dropped 2 desirable clause(s)"); the response carries the
    /// predicates as actually granted.
    AcceptedWithCondition(String),
    /// Request rejected with a human-readable reason.
    Rejected(String),
}

/// A `<promise-response>` header element (§6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromiseResponseHeader {
    /// The promise identifier (present iff accepted).
    pub promise_id: Option<u64>,
    /// Accepted or rejected.
    pub result: PromiseResult,
    /// Expiry timestamp granted by the manager (manager clock, ms); may
    /// reflect a shorter duration than requested.
    pub expires_at: u64,
    /// Correlates with [`PromiseRequestHeader::request_id`].
    pub correlation: String,
    /// The predicates as actually granted (present for negotiated
    /// accept-with-condition responses; empty otherwise).
    pub granted_predicates: Vec<String>,
}

/// How a [`ResolutionHeader`] names the prepared hold it resolves: by the
/// promise id the prepare response carried, or — when that response was
/// lost in transit — by the `(client, request-id)` pair of the prepare
/// request, which the shard's dedup index can still resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveRef {
    /// A known hold id.
    Id(u64),
    /// The prepare request's identity, for holds whose grant reply was
    /// lost. A shard that never saw the prepare resolves this to "nothing
    /// to do" (`applied = false`), which is exactly right: the in-memory
    /// transport is synchronous, so once the coordinator gives up there is
    /// no in-flight delivery left to race with.
    Request {
        /// Client that sent the prepare.
        client: String,
        /// The prepare's request id.
        request: String,
    },
}

/// What a coordinator decided about a prepared hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolutionOp {
    /// The cross-shard transaction committed: the hold becomes an
    /// ordinary grant.
    Commit,
    /// The transaction aborted: the hold's resources are released.
    Abort,
}

impl ResolutionOp {
    /// Wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            ResolutionOp::Commit => "commit",
            ResolutionOp::Abort => "abort",
        }
    }
}

/// A `<resolve>` header element: a coordinator's commit/abort decision for
/// one prepared hold. Idempotent on the shard side — retried resolutions
/// are answered with `applied = false` rather than re-applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolutionHeader {
    /// Which hold.
    pub reference: ResolveRef,
    /// Commit or abort.
    pub op: ResolutionOp,
}

/// A `<resolution>` reply element acknowledging a [`ResolutionHeader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolutionResponse {
    /// Echo of the resolved reference.
    pub reference: ResolveRef,
    /// Echo of the operation.
    pub op: ResolutionOp,
    /// True if this delivery changed state (first commit / first abort);
    /// false for idempotent repeats and holds already gone.
    pub applied: bool,
    /// Error detail when the resolution could not be processed (e.g.
    /// committing a hold that expired while in doubt).
    pub error: Option<String>,
}

/// How an environment entry names its promise: by id (already granted) or
/// by the correlation id of a promise requested *in the same message* —
/// supporting the §6 combined request+action atomic unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvRef {
    /// A known promise id.
    Id(u64),
    /// The request id of a promise requested in this same envelope.
    Correlation(String),
}

/// One `<environment>` entry: a promise and its release option (§6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvEntry {
    /// Which promise.
    pub reference: EnvRef,
    /// Release the promise atomically with a successful action?
    pub release_after: bool,
}

/// The `<environment>` header element (§6).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EnvironmentHeader {
    /// Promises the action executes under.
    pub entries: Vec<EnvEntry>,
}

/// An application request carried in the message body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ActionRequest {
    /// Target service name.
    pub service: String,
    /// Operation name.
    pub operation: String,
    /// Operation parameters.
    pub params: Vec<(String, String)>,
}

impl ActionRequest {
    /// Creates an action request.
    pub fn new(service: &str, operation: &str) -> Self {
        Self {
            service: service.to_owned(),
            operation: operation.to_owned(),
            params: Vec::new(),
        }
    }

    /// Builder: adds a parameter.
    pub fn param(mut self, name: &str, value: impl std::fmt::Display) -> Self {
        self.params.push((name.to_owned(), value.to_string()));
        self
    }

    /// Looks up a parameter.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// An application response carried in the reply body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ActionResponse {
    /// True if the action committed.
    pub ok: bool,
    /// Result fields.
    pub fields: Vec<(String, String)>,
    /// Error message when not ok.
    pub error: Option<String>,
}

impl ActionResponse {
    /// A successful response.
    pub fn success() -> Self {
        Self {
            ok: true,
            ..Self::default()
        }
    }

    /// A failed response.
    pub fn failure(error: impl Into<String>) -> Self {
        Self {
            ok: false,
            error: Some(error.into()),
            ..Self::default()
        }
    }

    /// Builder: adds a result field.
    pub fn field(mut self, name: &str, value: impl std::fmt::Display) -> Self {
        self.fields.push((name.to_owned(), value.to_string()));
        self
    }

    /// Looks up a result field.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Trace-context header carried as `<envelope trace='..' span='..'>`
/// attributes: the trace minted at the sending client (stable across
/// retries of the same logical operation) and the span id of this
/// transmission attempt (fresh per retry). Receivers adopt it as the
/// causal parent of their own spans. Optional — envelopes from
/// uninstrumented senders decode with `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Trace id, one per logical client operation.
    pub trace: u64,
    /// The sender's span id for this transmission attempt.
    pub span: u64,
}

/// A protocol message: any subset of headers plus an optional body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Envelope {
    /// `<promise-request>` headers.
    pub promise_requests: Vec<PromiseRequestHeader>,
    /// `<promise-response>` headers (piggybacked or reply).
    pub promise_responses: Vec<PromiseResponseHeader>,
    /// Standalone promise releases.
    pub releases: Vec<u64>,
    /// Coordinator commit/abort decisions for prepared holds.
    pub resolutions: Vec<ResolutionHeader>,
    /// Acknowledgements for `resolutions` (reply direction).
    pub resolution_responses: Vec<ResolutionResponse>,
    /// The `<environment>` for the body's action.
    pub environment: Option<EnvironmentHeader>,
    /// Body: application request.
    pub action: Option<ActionRequest>,
    /// Body: application response (reply direction).
    pub action_response: Option<ActionResponse>,
    /// Causal trace context for observability (not part of the §6
    /// protocol; ignored by promise semantics).
    pub trace: Option<TraceHeader>,
}

impl Envelope {
    /// An empty envelope.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: adds a promise request header.
    pub fn with_promise_request(mut self, h: PromiseRequestHeader) -> Self {
        self.promise_requests.push(h);
        self
    }

    /// Builder: adds a release.
    pub fn with_release(mut self, promise_id: u64) -> Self {
        self.releases.push(promise_id);
        self
    }

    /// Builder: adds a commit/abort resolution for a prepared hold.
    pub fn with_resolution(mut self, reference: ResolveRef, op: ResolutionOp) -> Self {
        self.resolutions.push(ResolutionHeader { reference, op });
        self
    }

    /// The resolution acknowledgement matching `reference`, if present.
    pub fn resolution_for(&self, reference: &ResolveRef) -> Option<&ResolutionResponse> {
        self.resolution_responses
            .iter()
            .find(|r| &r.reference == reference)
    }

    /// Builder: sets the environment.
    pub fn with_environment(mut self, env: EnvironmentHeader) -> Self {
        self.environment = Some(env);
        self
    }

    /// Builder: sets the action body.
    pub fn with_action(mut self, action: ActionRequest) -> Self {
        self.action = Some(action);
        self
    }

    /// Builder: sets the trace-context header.
    pub fn with_trace(mut self, trace: u64, span: u64) -> Self {
        self.trace = Some(TraceHeader { trace, span });
        self
    }

    /// The response correlated with a given request id, if present.
    pub fn response_for(&self, request_id: &str) -> Option<&PromiseResponseHeader> {
        self.promise_responses
            .iter()
            .find(|r| r.correlation == request_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_request_params() {
        let a = ActionRequest::new("merchant", "purchase")
            .param("pool", "widgets")
            .param("qty", 5);
        assert_eq!(a.get("qty"), Some("5"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn action_response_builders() {
        let r = ActionResponse::success().field("order", "o-1");
        assert!(r.ok);
        assert_eq!(r.get("order"), Some("o-1"));
        let f = ActionResponse::failure("boom");
        assert!(!f.ok);
        assert_eq!(f.error.as_deref(), Some("boom"));
    }

    #[test]
    fn envelope_response_lookup() {
        let mut env = Envelope::new();
        env.promise_responses.push(PromiseResponseHeader {
            promise_id: Some(1),
            result: PromiseResult::Accepted,
            expires_at: 10,
            correlation: "r1".into(),
            granted_predicates: vec![],
        });
        assert!(env.response_for("r1").is_some());
        assert!(env.response_for("r2").is_none());
    }
}

#[cfg(test)]
mod piggyback_tests {
    use super::*;
    use crate::codec::{decode, encode};

    /// §6: "we allow an application message from A to B to contain a
    /// related request for B to make a promise, and it can also carry a
    /// piggybacked response reporting on the outcome of a previous request
    /// that B had sent to A."
    #[test]
    fn piggybacked_response_rides_with_request_and_action() {
        let msg = Envelope {
            // A's new request to B...
            promise_requests: vec![PromiseRequestHeader {
                request_id: "a-req-7".into(),
                client: "A".into(),
                predicates: vec!["qty('widgets') >= 5".into()],
                duration_ms: 10_000,
                exchange: vec![],
                negotiate: false,
                prepare: false,
            }],
            // ...plus A's answer to B's earlier request...
            promise_responses: vec![PromiseResponseHeader {
                promise_id: Some(41),
                result: PromiseResult::Accepted,
                expires_at: 99_000,
                correlation: "b-req-3".into(),
                granted_predicates: vec![],
            }],
            releases: vec![],
            resolutions: vec![],
            resolution_responses: vec![],
            environment: None,
            // ...plus an unrelated application body.
            action: Some(ActionRequest::new("merchant", "status").param("order", "o-1")),
            action_response: None,
            trace: None,
        };
        let back = decode(&encode(&msg)).unwrap();
        assert_eq!(back, msg);
        assert!(back.response_for("b-req-3").is_some());
        assert_eq!(back.promise_requests.len(), 1);
        assert!(back.action.is_some());
    }
}
