//! A minimal XML subset: elements, attributes, text — enough to carry the
//! paper's SOAP-style promise headers without an external dependency.
//!
//! Supported: `<name attr='v'>children|text</name>`, self-closing tags,
//! the five standard entities. Not supported (not needed): namespaces,
//! comments, processing instructions, CDATA, doctypes.

use std::fmt;

/// An XML element tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlElement {
    /// Tag name.
    pub name: String,
    /// Attributes in definition order.
    pub attributes: Vec<(String, String)>,
    /// Child elements.
    pub children: Vec<XmlElement>,
    /// Concatenated text content (children and text are not interleaved).
    pub text: String,
}

impl XmlElement {
    /// Creates an element with no attributes/children/text.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            attributes: Vec::new(),
            children: Vec::new(),
            text: String::new(),
        }
    }

    /// Builder: adds an attribute.
    pub fn attr(mut self, name: &str, value: impl fmt::Display) -> Self {
        self.attributes.push((name.to_owned(), value.to_string()));
        self
    }

    /// Builder: adds a child element.
    pub fn child(mut self, child: XmlElement) -> Self {
        self.children.push(child);
        self
    }

    /// Builder: sets text content.
    pub fn with_text(mut self, text: impl fmt::Display) -> Self {
        self.text = text.to_string();
        self
    }

    /// First attribute with the given name.
    pub fn get_attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First child with the given tag name.
    pub fn find(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given tag name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Serialises to a string.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("='");
            escape_into(v, out);
            out.push('\'');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        escape_into(&self.text, out);
        for c in &self.children {
            c.write(out);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '\'' => out.push_str("&apos;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
}

/// XML parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset.
    pub at: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Parses one element (surrounding whitespace allowed).
pub fn parse(input: &str) -> Result<XmlElement, XmlError> {
    let mut p = XmlParser { src: input, pos: 0 };
    p.skip_ws();
    let el = p.element()?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(p.err("trailing content after document element"));
    }
    Ok(el)
}

struct XmlParser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn err(&self, m: impl Into<String>) -> XmlError {
        XmlError {
            at: self.pos,
            message: m.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self
            .rest()
            .chars()
            .next()
            .map(char::is_whitespace)
            .unwrap_or(false)
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        for c in self.rest().chars() {
            if c.is_alphanumeric() || c == '-' || c == '_' || c == ':' || c == '.' {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            Err(self.err("expected name"))
        } else {
            Ok(self.src[start..self.pos].to_owned())
        }
    }

    fn element(&mut self) -> Result<XmlElement, XmlError> {
        if !self.eat("<") {
            return Err(self.err("expected '<'"));
        }
        let name = self.name()?;
        let mut el = XmlElement::new(&name);
        loop {
            self.skip_ws();
            if self.eat("/>") {
                return Ok(el);
            }
            if self.eat(">") {
                break;
            }
            let attr_name = self.name()?;
            self.skip_ws();
            if !self.eat("=") {
                return Err(self.err("expected '=' in attribute"));
            }
            self.skip_ws();
            let quote = if self.eat("'") {
                '\''
            } else if self.eat("\"") {
                '"'
            } else {
                return Err(self.err("expected quoted attribute value"));
            };
            let value = self.text_until(quote)?;
            self.pos += 1; // closing quote
            el.attributes.push((attr_name, value));
        }
        // Content: interleaved text and children (text concatenated).
        loop {
            if self.rest().starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != el.name {
                    return Err(self.err(format!(
                        "mismatched close tag: expected </{}>, got </{close}>",
                        el.name
                    )));
                }
                self.skip_ws();
                if !self.eat(">") {
                    return Err(self.err("expected '>' after close tag"));
                }
                el.text = el.text.trim().to_owned();
                return Ok(el);
            }
            if self.rest().starts_with('<') {
                el.children.push(self.element()?);
                continue;
            }
            if self.rest().is_empty() {
                return Err(self.err(format!("unexpected end of input in <{}>", el.name)));
            }
            let txt = self.text_until('<')?;
            el.text.push_str(&txt);
        }
    }

    /// Consumes (and unescapes) text up to, but excluding, `stop`.
    fn text_until(&mut self, stop: char) -> Result<String, XmlError> {
        let mut out = String::new();
        loop {
            let Some(c) = self.rest().chars().next() else {
                if stop == '<' {
                    return Ok(out);
                }
                return Err(self.err("unexpected end of input in text"));
            };
            if c == stop {
                return Ok(out);
            }
            if c == '&' {
                let rest = self.rest();
                let (entity, len) = if rest.starts_with("&amp;") {
                    ('&', 5)
                } else if rest.starts_with("&lt;") {
                    ('<', 4)
                } else if rest.starts_with("&gt;") {
                    ('>', 4)
                } else if rest.starts_with("&apos;") {
                    ('\'', 6)
                } else if rest.starts_with("&quot;") {
                    ('"', 6)
                } else {
                    return Err(self.err("unknown entity"));
                };
                out.push(entity);
                self.pos += len;
            } else {
                out.push(c);
                self.pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let el = XmlElement::new("promise-request")
            .attr("request-id", "r1")
            .attr("duration", 5000)
            .child(XmlElement::new("predicate").with_text("qty('w') >= 5"))
            .child(XmlElement::new("resource").attr("pool", "w"));
        let xml = el.to_xml();
        let parsed = parse(&xml).unwrap();
        assert_eq!(parsed, el);
    }

    #[test]
    fn escaping_roundtrips() {
        let el = XmlElement::new("p")
            .attr("a", "x < y & z > 'q'")
            .with_text("5 < 6 && \"quoted\"");
        let parsed = parse(&el.to_xml()).unwrap();
        assert_eq!(parsed.get_attr("a"), Some("x < y & z > 'q'"));
        assert_eq!(parsed.text, "5 < 6 && \"quoted\"");
    }

    #[test]
    fn self_closing_and_empty() {
        assert_eq!(parse("<a/>").unwrap(), XmlElement::new("a"));
        assert_eq!(parse("<a></a>").unwrap(), XmlElement::new("a"));
        let p = parse("<a b='1'/>").unwrap();
        assert_eq!(p.get_attr("b"), Some("1"));
    }

    #[test]
    fn nested_structure_and_find() {
        let doc = parse("<env><hdr><p id='1'/><p id='2'/></hdr><body>text</body></env>").unwrap();
        let hdr = doc.find("hdr").unwrap();
        let ids: Vec<_> = hdr.find_all("p").filter_map(|p| p.get_attr("id")).collect();
        assert_eq!(ids, vec!["1", "2"]);
        assert_eq!(doc.find("body").unwrap().text, "text");
        assert!(doc.find("missing").is_none());
    }

    #[test]
    fn double_quoted_attributes() {
        let p = parse(r#"<a b="hello world"/>"#).unwrap();
        assert_eq!(p.get_attr("b"), Some("hello world"));
    }

    #[test]
    fn errors() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a></b>").is_err());
        assert!(parse("<a b=1/>").is_err());
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("plain").is_err());
        assert!(parse("<a>&bogus;</a>").is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let p = parse("  <a>\n  <b/>\n  </a>  ").unwrap();
        assert_eq!(p.name, "a");
        assert_eq!(p.children.len(), 1);
        assert_eq!(p.text, "");
    }
}
