//! End-to-end trace propagation: a logical client send keeps one trace id
//! across retry attempts (each attempt a fresh child span), bus spans tag
//! the injected fault they observed, and PM spans recorded behind the
//! gateway join the client's trace.

use std::sync::Arc;

use promises_core::{PoolSchema, PromiseManager, SystemClock};
use promises_faults::{FaultInjector, FaultScenario};
use promises_rm::ResourceManager;
use promises_telemetry::{FaultTag, SpanKind, SpanOutcome, Telemetry};
use promises_wire::{
    Envelope, InMemoryBus, PromiseGateway, PromiseRequestHeader, PromiseResult, RetryPolicy,
    RetryingClient,
};

fn promise_request(id: &str) -> PromiseRequestHeader {
    PromiseRequestHeader {
        request_id: id.into(),
        client: "tracer".into(),
        predicates: vec!["qty('widgets') >= 2".into()],
        duration_ms: 60_000,
        exchange: vec![],
        negotiate: false,
        prepare: false,
    }
}

/// With every reply dropped, each attempt runs the service and then loses
/// the answer: all attempts share the send's trace, mint distinct span
/// ids, parent on the send span, and the bus spans carry the drop-reply
/// fault tag.
#[test]
fn retries_share_one_trace_with_fresh_attempt_spans() {
    let tel = Telemetry::shared();
    let bus = Arc::new(InMemoryBus::new());
    bus.set_telemetry(Some(Arc::clone(&tel)));
    bus.register(
        "echo",
        Arc::new(|env: Envelope| env) as Arc<dyn promises_wire::Service>,
    );
    bus.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultScenario {
        drop_reply: 1.0,
        ..FaultScenario::quiet(5)
    }))));
    let client = RetryingClient::new(Arc::clone(&bus), RetryPolicy::new(3).with_max_retries(2))
        .with_telemetry(Arc::clone(&tel));

    client.send("echo", &Envelope::new()).unwrap_err();

    let spans = tel.spans();
    let sends: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::ClientSend)
        .collect();
    assert_eq!(sends.len(), 1);
    let send = sends[0];
    assert_eq!(send.outcome, SpanOutcome::Error);

    let attempts: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::ClientAttempt)
        .collect();
    assert_eq!(attempts.len(), 3, "1 send + 2 retries");
    let mut attempt_ids = Vec::new();
    for a in &attempts {
        assert_eq!(a.trace, send.trace, "retries stay in the send's trace");
        assert_eq!(a.parent, Some(send.span), "attempts parent on the send");
        assert_eq!(a.fault, Some(FaultTag::DropReply));
        attempt_ids.push(a.span);
    }
    attempt_ids.sort_unstable();
    attempt_ids.dedup();
    assert_eq!(attempt_ids.len(), 3, "each retry mints a fresh span");

    let deliveries: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::BusDeliver)
        .collect();
    assert_eq!(deliveries.len(), 3);
    for d in &deliveries {
        assert_eq!(d.trace, send.trace, "bus joins the envelope's trace");
        assert!(
            attempt_ids.binary_search(&d.parent.unwrap()).is_ok(),
            "each delivery parents on one attempt span"
        );
        assert_eq!(d.fault, Some(FaultTag::DropReply));
        assert_eq!(d.outcome, SpanOutcome::Error);
    }

    let snap = tel.snapshot();
    assert_eq!(snap.counter("client.retry"), 2);
    assert_eq!(snap.counter("client.exhausted"), 1);
    assert_eq!(snap.counter("bus.fault.drop-reply"), 3);
    assert_eq!(snap.histogram("bus.deliver").unwrap().count, 3);
}

/// On a clean network the whole pipeline joins one trace: the PM's grant
/// span (recorded deep behind the gateway) shares the client's trace id.
#[test]
fn pm_spans_join_the_clients_trace_through_the_gateway() {
    let tel = Telemetry::shared();
    let rm = Arc::new(ResourceManager::new());
    let pm = Arc::new(PromiseManager::new(rm, Arc::new(SystemClock::new())));
    pm.register_pool(PoolSchema::quantity("widgets"));
    pm.seed_quantity("widgets", 10).unwrap();
    pm.set_telemetry(Some(Arc::clone(&tel)));

    let bus = Arc::new(InMemoryBus::new());
    bus.set_telemetry(Some(Arc::clone(&tel)));
    bus.register("pm", Arc::new(PromiseGateway::new(pm)));
    let client =
        RetryingClient::new(Arc::clone(&bus), RetryPolicy::new(9)).with_telemetry(Arc::clone(&tel));

    let reply = client
        .send(
            "pm",
            &Envelope::new().with_promise_request(promise_request("r1")),
        )
        .unwrap();
    assert!(matches!(
        reply.response_for("r1").unwrap().result,
        PromiseResult::Accepted
    ));

    let spans = tel.spans();
    let send = spans
        .iter()
        .find(|s| s.kind == SpanKind::ClientSend)
        .unwrap();
    let grant = spans.iter().find(|s| s.kind == SpanKind::PmGrant).unwrap();
    assert_eq!(
        grant.trace, send.trace,
        "the PM's grant span joins the client's trace"
    );
    assert_eq!(grant.outcome, SpanOutcome::Ok);
    assert!(grant.promise.is_some());

    let check = spans.iter().find(|s| s.kind == SpanKind::PmCheck).unwrap();
    assert_eq!(check.trace, send.trace);
}
