//! Property tests: the XML codec round-trips arbitrary envelopes and the
//! XML subset round-trips arbitrary trees.

use proptest::prelude::*;

use promises_wire::xml::{parse, XmlElement};
use promises_wire::{
    decode, encode, ActionRequest, ActionResponse, EnvEntry, EnvRef, Envelope, EnvironmentHeader,
    PromiseRequestHeader, PromiseResponseHeader, PromiseResult, ResolutionHeader, ResolutionOp,
    ResolutionResponse, ResolveRef, TraceHeader,
};

fn arb_text() -> impl Strategy<Value = String> {
    // Includes XML-special characters to exercise escaping.
    "[a-zA-Z0-9 <>&'\"=_-]{0,24}"
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,8}"
}

fn arb_xml_tree() -> impl Strategy<Value = XmlElement> {
    let leaf = (
        arb_name(),
        proptest::collection::vec((arb_name(), arb_text()), 0..3),
        arb_text(),
    )
        .prop_map(|(name, attrs, text)| {
            let mut el = XmlElement::new(&name);
            let mut seen = std::collections::HashSet::new();
            for (k, v) in attrs {
                if seen.insert(k.clone()) {
                    el = el.attr(&k, v);
                }
            }
            // Text and children are not interleaved in this subset; keep
            // text only on leaves.
            el.with_text(text.trim())
        });
    leaf.prop_recursive(3, 20, 3, |inner| {
        (arb_name(), proptest::collection::vec(inner, 0..4)).prop_map(|(name, children)| {
            let mut el = XmlElement::new(&name);
            for c in children {
                el = el.child(c);
            }
            el
        })
    })
}

fn arb_request() -> impl Strategy<Value = PromiseRequestHeader> {
    (
        arb_name(),
        arb_name(),
        proptest::collection::vec(arb_text(), 0..3),
        any::<u64>(),
        proptest::collection::vec(any::<u64>(), 0..3),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(request_id, client, predicates, duration_ms, exchange, negotiate, prepare)| {
                PromiseRequestHeader {
                    request_id,
                    client,
                    predicates: predicates.iter().map(|p| p.trim().to_owned()).collect(),
                    duration_ms,
                    exchange,
                    negotiate,
                    prepare,
                }
            },
        )
}

fn arb_resolve_ref() -> impl Strategy<Value = ResolveRef> {
    prop_oneof![
        any::<u64>().prop_map(ResolveRef::Id),
        (arb_name(), arb_name())
            .prop_map(|(client, request)| ResolveRef::Request { client, request }),
    ]
}

fn arb_resolution_op() -> impl Strategy<Value = ResolutionOp> {
    prop_oneof![Just(ResolutionOp::Commit), Just(ResolutionOp::Abort)]
}

fn arb_resolution() -> impl Strategy<Value = ResolutionHeader> {
    (arb_resolve_ref(), arb_resolution_op())
        .prop_map(|(reference, op)| ResolutionHeader { reference, op })
}

fn arb_resolution_response() -> impl Strategy<Value = ResolutionResponse> {
    (
        arb_resolve_ref(),
        arb_resolution_op(),
        any::<bool>(),
        proptest::option::of(arb_text()),
    )
        .prop_map(|(reference, op, applied, error)| ResolutionResponse {
            reference,
            op,
            applied,
            error,
        })
}

fn arb_result() -> impl Strategy<Value = PromiseResult> {
    prop_oneof![
        Just(PromiseResult::Accepted),
        arb_text().prop_map(PromiseResult::AcceptedWithCondition),
        arb_text().prop_map(PromiseResult::Rejected),
    ]
}

fn arb_response() -> impl Strategy<Value = PromiseResponseHeader> {
    (
        proptest::option::of(any::<u64>()),
        arb_result(),
        any::<u64>(),
        arb_name(),
        proptest::collection::vec(arb_text(), 0..2),
    )
        .prop_map(|(promise_id, result, expires_at, correlation, granted)| {
            PromiseResponseHeader {
                promise_id,
                result,
                expires_at,
                correlation,
                granted_predicates: granted.iter().map(|g| g.trim().to_owned()).collect(),
            }
        })
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (
        proptest::collection::vec(arb_request(), 0..3),
        proptest::collection::vec(arb_response(), 0..3),
        proptest::collection::vec(any::<u64>(), 0..3),
        proptest::collection::vec(arb_resolution(), 0..2),
        proptest::collection::vec(arb_resolution_response(), 0..2),
        proptest::option::of(proptest::collection::vec(
            (any::<bool>(), any::<u64>(), any::<bool>()),
            0..3,
        )),
        proptest::option::of((
            arb_name(),
            arb_name(),
            proptest::collection::vec((arb_name(), arb_text()), 0..3),
        )),
        proptest::option::of((
            any::<bool>(),
            proptest::option::of(arb_text()),
            proptest::collection::vec((arb_name(), arb_text()), 0..3),
        )),
        proptest::option::of((any::<u64>(), any::<u64>())),
    )
        .prop_map(
            |(
                reqs,
                resps,
                releases,
                resolutions,
                resolution_responses,
                env_entries,
                action,
                action_resp,
                trace,
            )| Envelope {
                promise_requests: reqs,
                promise_responses: resps,
                releases,
                resolutions,
                resolution_responses,
                environment: env_entries.map(|entries| EnvironmentHeader {
                    entries: entries
                        .into_iter()
                        .map(|(by_id, id, release_after)| EnvEntry {
                            reference: if by_id {
                                EnvRef::Id(id)
                            } else {
                                EnvRef::Correlation(format!("c{id}"))
                            },
                            release_after,
                        })
                        .collect(),
                }),
                action: action.map(|(service, operation, params)| {
                    let mut a = ActionRequest::new(&service, &operation);
                    for (k, v) in params {
                        a = a.param(&k, v.trim());
                    }
                    a
                }),
                action_response: action_resp.map(|(ok, error, fields)| {
                    let mut r = if ok {
                        ActionResponse::success()
                    } else {
                        ActionResponse::failure(error.clone().unwrap_or_default())
                    };
                    r.error = error;
                    r.ok = ok;
                    for (k, v) in fields {
                        r = r.field(&k, v.trim());
                    }
                    r
                }),
                trace: trace.map(|(trace, span)| TraceHeader { trace, span }),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn xml_tree_roundtrips(tree in arb_xml_tree()) {
        let xml = tree.to_xml();
        let parsed = parse(&xml)
            .map_err(|e| TestCaseError::fail(format!("{xml:?}: {e}")))?;
        prop_assert_eq!(parsed, tree);
    }

    #[test]
    fn envelope_roundtrips(envelope in arb_envelope()) {
        let xml = encode(&envelope);
        let back = decode(&xml)
            .map_err(|e| TestCaseError::fail(format!("{xml:?}: {e}")))?;
        prop_assert_eq!(back, envelope);
    }
}
