//! Negotiation retries through a fault-injected wire path.
//!
//! The §3.3 weakening ladder runs *inside* the gateway for a
//! `negotiate: true` request, so a duplicated request replays the whole
//! ladder and a dropped reply makes the client resend it. Either way the
//! outcome must be byte-for-byte the first decision: the same promise id,
//! the same single dropped desirable clause. The failure modes this test
//! pins down:
//!
//! * **double-drop** — a replayed ladder that does not hit dedup would
//!   find the view room already promised (to its own first run) and grant
//!   a *twice*-weakened predicate, silently costing the client a clause
//!   it never agreed to lose;
//! * **double-grant** — a replayed ladder granting a second promise would
//!   hold two rooms for one request.

use std::sync::Arc;

use promises_core::{PoolSchema, PromiseManager, PropertyDef, SystemClock};
use promises_faults::{FaultInjector, FaultScenario};
use promises_rm::{Record, ResourceManager};
use promises_wire::{
    Envelope, InMemoryBus, PromiseGateway, PromiseRequestHeader, PromiseResult, RetryPolicy,
    RetryingClient,
};

/// One non-view twin room: the desirable view clause can never hold, so
/// every grant must come back weakened by exactly one clause.
fn hotel_pm() -> Arc<PromiseManager> {
    let pm = Arc::new(PromiseManager::new(
        Arc::new(ResourceManager::new()),
        Arc::new(SystemClock::new()),
    ));
    pm.register_pool(PoolSchema::instances(
        "rooms",
        vec![PropertyDef::plain("view"), PropertyDef::plain("beds")],
    ));
    pm.seed_instance(
        "rooms",
        "101",
        Record::new().with("view", false).with("beds", 2i64),
    )
    .unwrap();
    pm
}

fn negotiable(id: &str) -> Envelope {
    Envelope::new().with_promise_request(PromiseRequestHeader {
        request_id: id.into(),
        client: "nervous".into(),
        predicates: vec!["prop('rooms'): beds == 2 && desirable(view == true)".into()],
        duration_ms: 60_000,
        exchange: vec![],
        negotiate: true,
        prepare: false,
    })
}

#[test]
fn retried_negotiation_never_double_drops_or_double_grants() {
    for seed in [2007u64, 31337, 90210] {
        let pm = hotel_pm();
        let bus = Arc::new(InMemoryBus::new());
        bus.register("hotel", Arc::new(PromiseGateway::new(Arc::clone(&pm))));
        // Replies vanish and requests are delivered twice — every way a
        // nervous transport can make the gateway re-run the ladder.
        bus.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultScenario {
            drop_reply: 0.3,
            duplicate: 0.5,
            ..FaultScenario::quiet(seed)
        }))));
        let client = RetryingClient::new(Arc::clone(&bus), RetryPolicy::new(seed));

        let mut promise_ids = Vec::new();
        for resend in 0..5 {
            let reply = client
                .send("hotel", &negotiable("r1"))
                .expect("retry budget covers the drop rate");
            let resp = reply.response_for("r1").expect("response present");
            match &resp.result {
                PromiseResult::AcceptedWithCondition(cond) => {
                    assert!(
                        cond.contains("1 desirable"),
                        "resend {resend} (seed {seed}): exactly one clause dropped, got {cond:?}"
                    );
                }
                other => panic!(
                    "resend {resend} (seed {seed}): expected a weakened grant, got {other:?}"
                ),
            }
            assert_eq!(
                resp.granted_predicates.len(),
                1,
                "one predicate granted (seed {seed})"
            );
            assert!(
                !resp.granted_predicates[0].contains("desirable("),
                "granted form is fully weakened (seed {seed}): {}",
                resp.granted_predicates[0]
            );
            promise_ids.push(resp.promise_id.expect("weakened grant carries its id"));
        }

        assert!(
            promise_ids.windows(2).all(|w| w[0] == w[1]),
            "every resend converges on one promise (seed {seed}): {promise_ids:?}"
        );
        assert_eq!(
            pm.live_count(),
            1,
            "duplicated ladders held exactly one room (seed {seed})"
        );
    }
}
