//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds without network access, so benchmarks link
//! against this in-repo shim instead of the real criterion. It keeps the
//! same source-level API (`criterion_group!` / `criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! / `iter_custom`, `BenchmarkId`) but does plain wall-clock timing: a
//! short warm-up, then `sample_size` timed samples, reporting mean / min /
//! max to stdout. No statistics, no HTML reports, no outlier analysis —
//! numbers are indicative, not rigorous.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: a function name plus an
/// optional parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one label.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Top-level harness handle, passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A group of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim always takes exactly
    /// `sample_size` samples regardless of target measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets how long to run the routine before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Benchmarks `f`, labelling the output with `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let label = if self.name.is_empty() {
            id.label
        } else {
            format!("{}/{}", self.name, id.label)
        };
        run_benchmark(&label, self.sample_size, self.warm_up, &mut f);
    }

    /// Benchmarks `f` with an input value, labelling the output with `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (printing happens per-benchmark; this is a no-op).
    pub fn finish(self) {}
}

/// Timing handle passed to the benchmarked closure.
pub struct Bencher {
    /// Iterations the routine should perform per sample.
    iters_per_sample: u64,
    /// Durations recorded by `iter` / `iter_custom`, one per call.
    samples: Vec<Duration>,
    /// True while the warm-up pass runs (samples are discarded).
    warming_up: bool,
}

impl Bencher {
    /// Times `routine` once per call and records the sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.record(start.elapsed() / self.iters_per_sample as u32);
    }

    /// Lets the routine do its own timing: it receives an iteration count
    /// and must return the total elapsed time for that many iterations.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        let total = routine(self.iters_per_sample);
        self.record(total / self.iters_per_sample as u32);
    }

    fn record(&mut self, per_iter: Duration) {
        if !self.warming_up {
            self.samples.push(per_iter);
        }
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    warm_up: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        warming_up: true,
    };
    // Warm-up: run the routine until the warm-up budget is spent.
    let start = Instant::now();
    while start.elapsed() < warm_up {
        f(&mut b);
    }
    b.warming_up = false;
    for _ in 0..sample_size {
        f(&mut b);
    }
    report(label, &b.samples);
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{label}: mean {} (min {}, max {}, n={})",
        fmt_duration(mean),
        fmt_duration(*min),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Defines a benchmark group runner: `criterion_group!(benches, f1, f2)`
/// expands to `pub fn benches()` invoking each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `fn main()` running the named groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching criterion's `black_box` (std's since 1.66).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.warm_up_time(Duration::from_millis(1));
        g.bench_function("iter", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("custom", 4), &4u32, |b, &n| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(n * 2);
                }
                start.elapsed()
            });
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }
}
