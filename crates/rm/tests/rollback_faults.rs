//! Rollback failure-safety: when an undo write itself hits a storage
//! fault, abort must not pretend the rollback succeeded — it reports
//! `RmError::RollbackIncomplete` naming every before-image it could not
//! restore, while still releasing locks so the system does not wedge.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use promises_rm::{Record, ResourceManager, RmError, StorageFaultHook};

fn rm_with_counter() -> (Arc<ResourceManager>, Arc<AtomicUsize>) {
    let rm = Arc::new(ResourceManager::new());
    rm.create_table("t");
    let txn = rm.begin();
    for key in ["a", "b", "c"] {
        rm.insert(&txn, "t", key, Record::new().with("v", 1i64))
            .unwrap();
    }
    rm.commit(txn).unwrap();
    (rm, Arc::new(AtomicUsize::new(0)))
}

/// A hook that fails the Nth undo write (0-based) and nothing else.
fn fail_nth_undo(counter: Arc<AtomicUsize>, nth: usize) -> StorageFaultHook {
    Arc::new(move |op: &str, table: &str| {
        if op != "undo" {
            return None;
        }
        if counter.fetch_add(1, Ordering::SeqCst) == nth {
            Some(RmError::StorageFault {
                op: op.to_owned(),
                table: table.to_owned(),
            })
        } else {
            None
        }
    })
}

#[test]
fn undo_fault_reports_remaining_entries_failing_first() {
    let (rm, undo_calls) = rm_with_counter();
    let txn = rm.begin();
    // Touch a, b, c in order; undo replays newest-first (c, b, a).
    for key in ["a", "b", "c"] {
        rm.update(&txn, "t", key, |r| *r = r.clone().with("v", 9i64))
            .unwrap();
    }
    // Fail the second undo write (key "b"): "c" restores, "b" and "a" don't.
    rm.set_storage_fault_hook(Some(fail_nth_undo(Arc::clone(&undo_calls), 1)));
    let err = rm.abort(txn).unwrap_err();
    rm.set_storage_fault_hook(None);

    match &err {
        RmError::RollbackIncomplete { remaining, .. } => {
            assert_eq!(
                *remaining,
                vec![
                    ("t".to_owned(), "b".to_owned()),
                    ("t".to_owned(), "a".to_owned()),
                ],
                "failing entry first, then every entry never attempted"
            );
        }
        other => panic!("expected RollbackIncomplete, got {other}"),
    }
    assert!(
        !err.retryable(),
        "an incomplete rollback must never be auto-retried"
    );

    // The store is honestly dirty exactly where reported: "c" was rolled
    // back before the fault, "a" and "b" keep the aborted writes.
    let probe = rm.begin();
    let read = |key: &str| {
        rm.get(&probe, "t", key)
            .unwrap()
            .and_then(|r| r.int("v"))
            .unwrap()
    };
    assert_eq!(read("c"), 1);
    assert_eq!(read("b"), 9);
    assert_eq!(read("a"), 9);
    rm.commit(probe).unwrap();
}

#[test]
fn locks_are_released_even_when_rollback_fails() {
    let (rm, undo_calls) = rm_with_counter();
    let txn = rm.begin();
    rm.update(&txn, "t", "a", |r| *r = r.clone().with("v", 5i64))
        .unwrap();
    rm.set_storage_fault_hook(Some(fail_nth_undo(undo_calls, 0)));
    assert!(matches!(
        rm.abort(txn),
        Err(RmError::RollbackIncomplete { .. })
    ));
    rm.set_storage_fault_hook(None);

    // A new transaction can immediately lock and write the same record —
    // the failed rollback must not leave it wedged.
    let txn2 = rm.begin();
    rm.update(&txn2, "t", "a", |r| *r = r.clone().with("v", 2i64))
        .unwrap();
    rm.commit(txn2).unwrap();
}

#[test]
fn transact_surfaces_rollback_incomplete_without_retrying() {
    let (rm, undo_calls) = rm_with_counter();
    let attempts = AtomicUsize::new(0);
    rm.set_storage_fault_hook(Some(fail_nth_undo(undo_calls, 0)));
    let result: Result<(), RmError> = rm.transact(5, |txn| {
        attempts.fetch_add(1, Ordering::SeqCst);
        rm.update(txn, "t", "a", |r| *r = r.clone().with("v", 3i64))?;
        // Force an abort so the poisoned undo path runs.
        Err(RmError::Aborted("forced".into()))
    });
    rm.set_storage_fault_hook(None);

    assert!(matches!(result, Err(RmError::RollbackIncomplete { .. })));
    assert_eq!(
        attempts.load(Ordering::SeqCst),
        1,
        "RollbackIncomplete takes precedence and is never retried"
    );
}

#[test]
fn clean_abort_still_restores_every_before_image() {
    let (rm, _) = rm_with_counter();
    let txn = rm.begin();
    for key in ["a", "b", "c"] {
        rm.update(&txn, "t", key, |r| *r = r.clone().with("v", 7i64))
            .unwrap();
    }
    rm.abort(txn).unwrap();
    let probe = rm.begin();
    for key in ["a", "b", "c"] {
        let v = rm
            .get(&probe, "t", key)
            .unwrap()
            .and_then(|r| r.int("v"))
            .unwrap();
        assert_eq!(v, 1);
    }
    rm.commit(probe).unwrap();
}
