//! Stress and isolation tests for the resource manager.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use promises_rm::{Record, ResourceManager, RmError};

#[test]
fn bank_transfer_invariant_under_heavy_contention() {
    // Classic transfer test: total balance is invariant under concurrent
    // random transfers with deadlock retries.
    const ACCOUNTS: usize = 8;
    const PER_ACCOUNT: i64 = 1_000;
    let rm = Arc::new(ResourceManager::new());
    rm.create_table("accounts");
    let tx = rm.begin();
    for i in 0..ACCOUNTS {
        rm.insert(
            &tx,
            "accounts",
            &format!("a{i}"),
            Record::new().with("balance", PER_ACCOUNT),
        )
        .unwrap();
    }
    rm.commit(tx).unwrap();

    let transfers = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let rm = Arc::clone(&rm);
            let transfers = Arc::clone(&transfers);
            scope.spawn(move || {
                // Deterministic pseudo-random pairs per thread.
                let mut x = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                for _ in 0..50 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let from = (x as usize) % ACCOUNTS;
                    let to = (x as usize / ACCOUNTS) % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let amount = (x % 50) as i64;
                    rm.transact(200, |txn| {
                        rm.update(txn, "accounts", &format!("a{from}"), |r| {
                            let b = r.int("balance").unwrap();
                            r.set("balance", b - amount);
                        })?;
                        rm.update(txn, "accounts", &format!("a{to}"), |r| {
                            let b = r.int("balance").unwrap();
                            r.set("balance", b + amount);
                        })
                    })
                    .unwrap();
                    transfers.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    assert!(transfers.load(Ordering::Relaxed) > 0);
    let tx = rm.begin();
    let total: i64 = rm
        .scan(&tx, "accounts")
        .unwrap()
        .iter()
        .map(|(_, r)| r.int("balance").unwrap())
        .sum();
    rm.commit(tx).unwrap();
    assert_eq!(total, ACCOUNTS as i64 * PER_ACCOUNT, "money conserved");
    assert_eq!(rm.locked_granules(), 0, "no leaked locks");
}

#[test]
fn scan_blocks_concurrent_insert_no_phantoms() {
    // A scanner holding the table S lock must not see phantom inserts:
    // the insert blocks until the scanner commits.
    let rm = Arc::new(ResourceManager::new());
    rm.create_table("t");
    let tx = rm.begin();
    rm.insert(&tx, "t", "k1", Record::new()).unwrap();
    rm.commit(tx).unwrap();

    let scanner = rm.begin();
    let first = rm.scan(&scanner, "t").unwrap().len();

    let rm2 = Arc::clone(&rm);
    let writer = std::thread::spawn(move || {
        rm2.transact(10, |txn| rm2.insert(txn, "t", "k2", Record::new()))
            .unwrap();
    });
    std::thread::sleep(std::time::Duration::from_millis(40));
    assert!(!writer.is_finished(), "insert must wait for the table lock");
    // Repeatable: the second scan in the same txn sees the same rows.
    let second = rm.scan(&scanner, "t").unwrap().len();
    assert_eq!(first, second);
    rm.commit(scanner).unwrap();
    writer.join().unwrap();
}

#[test]
fn aborted_writer_leaves_no_trace_for_waiting_reader() {
    let rm = Arc::new(ResourceManager::new());
    rm.create_table("t");
    let tx = rm.begin();
    rm.insert(&tx, "t", "k", Record::new().with("v", 1i64))
        .unwrap();
    rm.commit(tx).unwrap();

    let writer = rm.begin();
    rm.update(&writer, "t", "k", |r| r.set("v", 99i64)).unwrap();

    let rm2 = Arc::clone(&rm);
    let reader = std::thread::spawn(move || {
        rm2.transact(10, |txn| {
            Ok(rm2.get(txn, "t", "k").unwrap().unwrap().int("v").unwrap())
        })
        .unwrap()
    });
    std::thread::sleep(std::time::Duration::from_millis(30));
    rm.abort(writer).unwrap();
    assert_eq!(reader.join().unwrap(), 1, "reader sees pre-abort value");
}

#[test]
fn many_tables_many_threads_smoke() {
    let rm = Arc::new(ResourceManager::new());
    for i in 0..16 {
        rm.create_table(&format!("t{i}"));
    }
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let rm = Arc::clone(&rm);
            scope.spawn(move || {
                for i in 0..100usize {
                    let table = format!("t{}", (t * 3 + i) % 16);
                    let key = format!("k{}", i % 10);
                    rm.transact(100, |txn| match rm.get(txn, &table, &key)? {
                        Some(mut rec) => {
                            let v = rec.int("v").unwrap_or(0);
                            rec.set("v", v + 1);
                            rm.put(txn, &table, &key, rec).map(|_| ())
                        }
                        None => rm
                            .put(txn, &table, &key, Record::new().with("v", 1i64))
                            .map(|_| ()),
                    })
                    .unwrap();
                }
            });
        }
    });
    // Sum of all counters equals total operations.
    let tx = rm.begin();
    let mut total = 0i64;
    for i in 0..16 {
        for (_, rec) in rm.scan(&tx, &format!("t{i}")).unwrap() {
            total += rec.int("v").unwrap();
        }
    }
    rm.commit(tx).unwrap();
    assert_eq!(total, 8 * 100);
}

#[test]
fn write_set_reports_touched_records_in_order() {
    let rm = ResourceManager::new();
    rm.create_table("a");
    rm.create_table("b");
    let tx = rm.begin();
    assert!(rm.write_set(&tx).unwrap().is_empty());
    rm.insert(&tx, "a", "k1", Record::new()).unwrap();
    rm.insert(&tx, "b", "k2", Record::new()).unwrap();
    rm.update(&tx, "a", "k1", |r| r.set("x", 1i64)).unwrap(); // no new entry
    let ws = rm.write_set(&tx).unwrap();
    assert_eq!(
        ws,
        vec![
            ("a".to_owned(), "k1".to_owned()),
            ("b".to_owned(), "k2".to_owned())
        ]
    );
    rm.commit(tx).unwrap();
    // write_set on finished transactions errors rather than lying.
    let dead = rm.begin();
    let id = dead.id();
    rm.abort(dead).unwrap();
    let _ = id;
    let tx2 = rm.begin();
    rm.commit(tx2).unwrap();
}

#[test]
fn deadlock_error_identifies_victim() {
    let rm = Arc::new(ResourceManager::new());
    rm.create_table("t");
    let tx = rm.begin();
    rm.insert(&tx, "t", "a", Record::new()).unwrap();
    rm.insert(&tx, "t", "b", Record::new()).unwrap();
    rm.commit(tx).unwrap();

    let t1 = rm.begin();
    rm.update(&t1, "t", "a", |_| {}).unwrap();
    let rm2 = Arc::clone(&rm);
    let other = std::thread::spawn(move || {
        let t2 = rm2.begin();
        rm2.update(&t2, "t", "b", |_| {}).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(40));
        let r = rm2.update(&t2, "t", "a", |_| {});
        let id = t2.id();
        rm2.abort(t2).unwrap();
        (r, id)
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    let mine = rm.update(&t1, "t", "b", |_| {});
    let my_id = t1.id();
    rm.abort(t1).unwrap();
    let (theirs, their_id) = other.join().unwrap();
    // Exactly the victim's own id appears in its error.
    match (mine, theirs) {
        (Err(RmError::Deadlock { txn }), _) => assert_eq!(txn, my_id),
        (_, Err(RmError::Deadlock { txn })) => assert_eq!(txn, their_id),
        (Ok(()), Ok(())) => panic!("someone must have been victimised"),
        other => panic!("unexpected: {other:?}"),
    }
}
