//! Values and records stored by the resource manager.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// A single typed field value.
///
/// The promise layer compares values when evaluating predicates, so `Value`
/// defines a *partial* order: values of the same variant compare normally,
/// values of different variants do not compare at all (predicate evaluation
/// treats that as "predicate not satisfied" rather than a panic).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit signed integer (quantities, balances, floors, rank tiers).
    Int(i64),
    /// Boolean flag (e.g. `view`, `smoking`).
    Bool(bool),
    /// UTF-8 string (identifiers, statuses, categories).
    Str(String),
}

impl Value {
    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Compares two values of the same variant; `None` across variants.
    pub fn partial_cmp_same(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A record: an ordered map from field name to [`Value`].
///
/// Records are the unit of locking and of undo logging. Field order is
/// deterministic (BTreeMap) so debug output and codecs are stable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Record {
    fields: BTreeMap<String, Value>,
}

impl Record {
    /// Creates an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style field insertion.
    pub fn with(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.fields.insert(name.to_owned(), value.into());
        self
    }

    /// Sets a field, replacing any previous value.
    pub fn set(&mut self, name: &str, value: impl Into<Value>) {
        self.fields.insert(name.to_owned(), value.into());
    }

    /// Gets a field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.get(name)
    }

    /// Gets an integer field by name.
    pub fn int(&self, name: &str) -> Option<i64> {
        self.fields.get(name).and_then(Value::as_int)
    }

    /// Gets a boolean field by name.
    pub fn bool(&self, name: &str) -> Option<bool> {
        self.fields.get(name).and_then(Value::as_bool)
    }

    /// Gets a string field by name.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.fields.get(name).and_then(Value::as_str)
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterates over `(name, value)` pairs in field-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors_match_variant() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_bool(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Str("x".into()).as_int(), None);
    }

    #[test]
    fn same_variant_values_are_ordered() {
        assert_eq!(
            Value::Int(1).partial_cmp_same(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Str("b".into()).partial_cmp_same(&Value::Str("a".into())),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Bool(true).partial_cmp_same(&Value::Bool(true)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn cross_variant_values_do_not_compare() {
        assert_eq!(Value::Int(1).partial_cmp_same(&Value::Bool(true)), None);
        assert_eq!(
            Value::Str("1".into()).partial_cmp_same(&Value::Int(1)),
            None
        );
    }

    #[test]
    fn record_builder_and_typed_getters() {
        let r = Record::new()
            .with("qty", 10i64)
            .with("view", true)
            .with("status", "available");
        assert_eq!(r.int("qty"), Some(10));
        assert_eq!(r.bool("view"), Some(true));
        assert_eq!(r.str("status"), Some("available"));
        assert_eq!(r.int("view"), None);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn record_set_overwrites() {
        let mut r = Record::new().with("qty", 1i64);
        r.set("qty", 2i64);
        assert_eq!(r.int("qty"), Some(2));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn record_display_is_deterministic() {
        let r = Record::new().with("b", 2i64).with("a", 1i64);
        assert_eq!(r.to_string(), "{a=1, b=2}");
    }

    #[test]
    fn value_from_conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(String::from("s")), Value::Str("s".into()));
    }
}
