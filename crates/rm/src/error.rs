//! Error type for resource-manager operations.

use std::fmt;

use crate::txn::TxnId;

/// Errors returned by the resource manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RmError {
    /// The transaction was chosen as a deadlock victim while waiting for a
    /// lock. The caller should abort and may retry.
    ///
    /// Note the distinction the paper draws in Section 9: the *promise*
    /// layer never blocks (unfulfillable requests are rejected immediately),
    /// so deadlocks can only arise from the short local transactions that
    /// implement a single promise operation — and those are detected and
    /// broken here.
    Deadlock { txn: TxnId },
    /// The named table does not exist.
    NoSuchTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// Insert of a key that is already present.
    DuplicateKey { table: String, key: String },
    /// Update/delete of a key that is not present.
    NoSuchKey { table: String, key: String },
    /// Operation used a transaction that is no longer active.
    TxnNotActive(TxnId),
    /// The application aborted the transaction explicitly with a message.
    Aborted(String),
    /// A storage access failed (injected or real I/O fault). The statement
    /// did not take effect; the transaction is still active and the caller
    /// decides whether to retry the statement or abort.
    StorageFault {
        /// The operation that failed (`get`, `put`, `scan`, ...).
        op: String,
        /// The table being accessed.
        table: String,
    },
    /// Rollback itself failed partway: an undo write raised a storage fault,
    /// leaving `remaining` `(table, key)` before-images unapplied. The store
    /// may be inconsistent for those records; callers must surface this
    /// rather than treat the abort as clean.
    RollbackIncomplete {
        /// The transaction whose rollback failed.
        txn: TxnId,
        /// `(table, key)` pairs whose before-images were not restored,
        /// failing entry first.
        remaining: Vec<(String, String)>,
    },
}

impl RmError {
    /// True if the failed operation is worth retrying in a fresh
    /// transaction: deadlock victims and transient storage faults are;
    /// semantic failures (missing key, duplicate, explicit abort) and
    /// incomplete rollbacks are not.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            RmError::Deadlock { .. } | RmError::StorageFault { .. }
        )
    }
}

impl fmt::Display for RmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmError::Deadlock { txn } => write!(f, "transaction {txn} aborted: deadlock victim"),
            RmError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            RmError::TableExists(t) => write!(f, "table already exists: {t}"),
            RmError::DuplicateKey { table, key } => {
                write!(f, "duplicate key {key:?} in table {table}")
            }
            RmError::NoSuchKey { table, key } => write!(f, "no key {key:?} in table {table}"),
            RmError::TxnNotActive(id) => write!(f, "transaction {id} is not active"),
            RmError::Aborted(msg) => write!(f, "transaction aborted: {msg}"),
            RmError::StorageFault { op, table } => {
                write!(f, "storage fault during {op} on table {table}")
            }
            RmError::RollbackIncomplete { txn, remaining } => write!(
                f,
                "rollback of {txn} incomplete: {} undo entries unapplied",
                remaining.len()
            ),
        }
    }
}

impl std::error::Error for RmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RmError::Deadlock { txn: TxnId(7) };
        assert!(e.to_string().contains("deadlock"));
        assert!(RmError::NoSuchTable("t".into()).to_string().contains("t"));
        assert!(RmError::DuplicateKey {
            table: "a".into(),
            key: "b".into()
        }
        .to_string()
        .contains("\"b\""));
    }

    #[test]
    fn retryable_classification() {
        assert!(RmError::Deadlock { txn: TxnId(1) }.retryable());
        assert!(RmError::StorageFault {
            op: "get".into(),
            table: "t".into()
        }
        .retryable());
        assert!(!RmError::NoSuchKey {
            table: "t".into(),
            key: "k".into()
        }
        .retryable());
        assert!(!RmError::Aborted("x".into()).retryable());
        assert!(!RmError::RollbackIncomplete {
            txn: TxnId(2),
            remaining: vec![("t".into(), "k".into())]
        }
        .retryable());
    }
}
