//! Error type for resource-manager operations.

use std::fmt;

use crate::txn::TxnId;

/// Errors returned by the resource manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RmError {
    /// The transaction was chosen as a deadlock victim while waiting for a
    /// lock. The caller should abort and may retry.
    ///
    /// Note the distinction the paper draws in Section 9: the *promise*
    /// layer never blocks (unfulfillable requests are rejected immediately),
    /// so deadlocks can only arise from the short local transactions that
    /// implement a single promise operation — and those are detected and
    /// broken here.
    Deadlock { txn: TxnId },
    /// The named table does not exist.
    NoSuchTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// Insert of a key that is already present.
    DuplicateKey { table: String, key: String },
    /// Update/delete of a key that is not present.
    NoSuchKey { table: String, key: String },
    /// Operation used a transaction that is no longer active.
    TxnNotActive(TxnId),
    /// The application aborted the transaction explicitly with a message.
    Aborted(String),
}

impl fmt::Display for RmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmError::Deadlock { txn } => write!(f, "transaction {txn} aborted: deadlock victim"),
            RmError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            RmError::TableExists(t) => write!(f, "table already exists: {t}"),
            RmError::DuplicateKey { table, key } => {
                write!(f, "duplicate key {key:?} in table {table}")
            }
            RmError::NoSuchKey { table, key } => write!(f, "no key {key:?} in table {table}"),
            RmError::TxnNotActive(id) => write!(f, "transaction {id} is not active"),
            RmError::Aborted(msg) => write!(f, "transaction aborted: {msg}"),
        }
    }
}

impl std::error::Error for RmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RmError::Deadlock { txn: TxnId(7) };
        assert!(e.to_string().contains("deadlock"));
        assert!(RmError::NoSuchTable("t".into()).to_string().contains("t"));
        assert!(RmError::DuplicateKey {
            table: "a".into(),
            key: "b".into()
        }
        .to_string()
        .contains("\"b\""));
    }
}
