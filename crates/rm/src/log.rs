//! Per-transaction undo logging.
//!
//! The resource manager records a *before image* the first time a
//! transaction touches a record; [`UndoLog::entries_reversed`] replays them
//! newest-first at abort to restore the pre-transaction state. This is what
//! lets the promise manager (paper §8) roll back an application action that
//! turned out to violate an unreleased promise.

use std::collections::HashSet;

use crate::value::Record;

/// One undoable change: the state of `(table, key)` before the first write.
#[derive(Debug, Clone)]
pub struct UndoEntry {
    /// Table the change happened in.
    pub table: String,
    /// Record key.
    pub key: String,
    /// Pre-image; `None` means the record did not exist (undo = delete).
    pub before: Option<Record>,
}

/// Undo log for a single transaction.
#[derive(Debug, Default)]
pub struct UndoLog {
    entries: Vec<UndoEntry>,
    touched: HashSet<(String, String)>,
}

impl UndoLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the before-image for `(table, key)` unless one was already
    /// captured by this transaction (first-touch wins: the oldest image is
    /// the correct restore target).
    pub fn record(&mut self, table: &str, key: &str, before: Option<Record>) {
        let slot = (table.to_owned(), key.to_owned());
        if self.touched.insert(slot) {
            self.entries.push(UndoEntry {
                table: table.to_owned(),
                key: key.to_owned(),
                before,
            });
        }
    }

    /// Entries newest-first, ready to replay on abort.
    pub fn entries_reversed(&self) -> impl Iterator<Item = &UndoEntry> {
        self.entries.iter().rev()
    }

    /// Number of distinct records this transaction has modified.
    #[allow(dead_code)] // exercised by tests; kept for diagnostics
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the transaction made no changes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_wins() {
        let mut log = UndoLog::new();
        log.record("t", "k", Some(Record::new().with("v", 1i64)));
        log.record("t", "k", Some(Record::new().with("v", 2i64)));
        assert_eq!(log.len(), 1);
        let entry = log.entries_reversed().next().unwrap();
        assert_eq!(entry.before.as_ref().unwrap().int("v"), Some(1));
    }

    #[test]
    fn distinct_keys_all_recorded_in_reverse_order() {
        let mut log = UndoLog::new();
        log.record("t", "a", None);
        log.record("t", "b", None);
        log.record("u", "a", None);
        assert_eq!(log.len(), 3);
        let keys: Vec<_> = log
            .entries_reversed()
            .map(|e| format!("{}/{}", e.table, e.key))
            .collect();
        assert_eq!(keys, vec!["u/a", "t/b", "t/a"]);
    }

    #[test]
    fn missing_record_pre_image_is_none() {
        let mut log = UndoLog::new();
        log.record("t", "new", None);
        assert!(log.entries_reversed().next().unwrap().before.is_none());
        assert!(!log.is_empty());
    }
}
