//! Transactions and the [`ResourceManager`] facade.
//!
//! Every data operation names an explicit transaction. Locks are acquired
//! as a side effect of access (strict 2PL) and held until commit or abort;
//! aborts replay the undo log. Statement-level failures (missing key,
//! duplicate key) leave the transaction active — the caller decides whether
//! to continue or abort — while a [`RmError::Deadlock`] means the
//! transaction has been victimised and *must* be aborted by the caller.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use promises_telemetry::{current_trace, FaultTag, Histogram, SpanKind, SpanOutcome, Telemetry};

use crate::error::RmError;
use crate::lock::{Granule, LockManager, LockMode};
use crate::log::UndoLog;
use crate::store::{Store, TableStats};
use crate::value::Record;

/// Opaque transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// Handle to an active transaction. Consumed by commit/abort.
#[derive(Debug)]
pub struct Txn {
    id: TxnId,
    started: Instant,
}

impl Txn {
    /// The transaction's identifier.
    pub fn id(&self) -> TxnId {
        self.id
    }
}

/// Monotonic counters exposed for experiments.
#[derive(Debug, Default)]
struct Counters {
    commits: AtomicU64,
    aborts: AtomicU64,
    deadlocks: AtomicU64,
}

/// Snapshot of the manager's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RmStatsSnapshot {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions (including deadlock victims).
    pub aborts: u64,
    /// Aborts caused by deadlock victimisation.
    pub deadlocks: u64,
}

/// Telemetry registry plus the two histogram handles the commit/abort
/// paths record into, resolved once at attach time so the per-transaction
/// cost is a single relaxed atomic record with no registry lookup.
struct RmTel {
    tel: Arc<Telemetry>,
    txn_hist: Arc<Histogram>,
    undo_hist: Arc<Histogram>,
}

impl RmTel {
    fn attach(tel: Arc<Telemetry>) -> Arc<Self> {
        Arc::new(Self {
            txn_hist: tel.histogram("rm.txn"),
            undo_hist: tel.histogram("rm.undo"),
            tel,
        })
    }
}

impl std::ops::Deref for RmTel {
    type Target = Telemetry;

    fn deref(&self) -> &Telemetry {
        &self.tel
    }
}

/// A storage-fault hook: called with `(op, table)` before every store
/// access; returning `Some(err)` injects that error instead of performing
/// the access. Rollback replay calls it with op `"undo"` so injectors can
/// (and by default do) keep rollback writes fault-free.
pub type StorageFaultHook = Arc<dyn Fn(&str, &str) -> Option<RmError> + Send + Sync>;

/// The embedded ACID resource manager (paper §8's "RM").
pub struct ResourceManager {
    store: Mutex<Store>,
    locks: LockManager,
    undo: Mutex<HashMap<TxnId, UndoLog>>,
    next_txn: AtomicU64,
    counters: Counters,
    fault_hook: RwLock<Option<StorageFaultHook>>,
    telemetry: RwLock<Option<Arc<RmTel>>>,
}

impl Default for ResourceManager {
    fn default() -> Self {
        Self::new()
    }
}

impl ResourceManager {
    /// Creates an empty resource manager with no tables.
    pub fn new() -> Self {
        Self {
            store: Mutex::new(Store::default()),
            locks: LockManager::new(),
            undo: Mutex::new(HashMap::new()),
            next_txn: AtomicU64::new(1),
            counters: Counters::default(),
            fault_hook: RwLock::new(None),
            telemetry: RwLock::new(None),
        }
    }

    /// Installs (or clears, with `None`) the storage-fault hook used for
    /// deterministic fault injection. See [`StorageFaultHook`].
    pub fn set_storage_fault_hook(&self, hook: Option<StorageFaultHook>) {
        *self.fault_hook.write() = hook;
    }

    /// Attaches (or detaches, with `None`) a telemetry registry. When
    /// attached, every commit/abort records an `rm.txn`/`rm.undo` span and
    /// latency histogram sample, and injected storage faults are tagged.
    pub fn set_telemetry(&self, tel: Option<Arc<Telemetry>>) {
        *self.telemetry.write() = tel.map(RmTel::attach);
    }

    /// Consults the fault hook for one store access; `Err` means the access
    /// must be abandoned with the injected error.
    fn faultable(&self, op: &str, table: &str) -> Result<(), RmError> {
        let guard = self.fault_hook.read();
        if let Some(hook) = guard.as_ref() {
            if let Some(err) = hook(op, table) {
                drop(guard);
                if let Some(tel) = self.telemetry.read().as_deref() {
                    let tag = if op == "undo" {
                        FaultTag::Undo
                    } else {
                        FaultTag::Storage
                    };
                    tel.incr(&format!("rm.fault.{op}"));
                    tel.span(SpanKind::RmTxn)
                        .outcome(SpanOutcome::Error)
                        .fault(tag)
                        .note(format!("storage fault: {op} on {table}"))
                        .finish();
                }
                return Err(err);
            }
        }
        Ok(())
    }

    /// Creates a table. DDL is not transactional (as in most engines,
    /// tables are created during system setup, not inside promise ops).
    pub fn create_table(&self, name: &str) {
        // Ignore "already exists": setup code is allowed to be idempotent.
        let _ = self.store.lock().create_table(name);
    }

    /// True if the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.store.lock().has_table(name)
    }

    /// Starts a new transaction.
    pub fn begin(&self) -> Txn {
        let id = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
        self.undo.lock().insert(id, UndoLog::new());
        Txn {
            id,
            started: Instant::now(),
        }
    }

    /// Commits: discards the undo log and releases all locks.
    pub fn commit(&self, txn: Txn) -> Result<(), RmError> {
        if self.undo.lock().remove(&txn.id).is_none() {
            return Err(RmError::TxnNotActive(txn.id));
        }
        self.locks.release_all(txn.id);
        self.counters.commits.fetch_add(1, Ordering::Relaxed);
        if let Some(tel) = self.telemetry.read().as_deref() {
            let dur = txn.started.elapsed();
            tel.txn_hist.record_duration(dur);
            // A clean commit outside any ambient trace would root a
            // one-span trace nobody can join; the histogram sample above
            // is the whole signal, so only traced commits get a span.
            if current_trace().is_some() {
                tel.span_since(SpanKind::RmTxn, txn.started)
                    .finish_with(dur);
            }
        }
        Ok(())
    }

    /// Aborts: replays the undo log newest-first, then releases all locks.
    ///
    /// Normally infallible, but if an undo write itself fails (an injected
    /// `"undo"`-point storage fault, or a genuinely missing table) the
    /// rollback stops and [`RmError::RollbackIncomplete`] reports every
    /// `(table, key)` whose before-image was *not* restored, failing entry
    /// first. Locks are released either way so the system does not wedge,
    /// but callers must surface the error: those records may be dirty.
    pub fn abort(&self, txn: Txn) -> Result<(), RmError> {
        let result = self.abort_id(txn.id);
        if let Some(tel) = self.telemetry.read().as_deref() {
            let dur = txn.started.elapsed();
            tel.undo_hist.record_duration(dur);
            let draft = tel.span_since(SpanKind::RmUndo, txn.started);
            match &result {
                Ok(()) => draft.finish_with(dur),
                Err(e) => draft
                    .outcome(SpanOutcome::Error)
                    .fault(FaultTag::Undo)
                    .note(e.to_string())
                    .finish_with(dur),
            }
        }
        result
    }

    /// Aborts by id (used internally by retry helpers).
    fn abort_id(&self, id: TxnId) -> Result<(), RmError> {
        let log = self.undo.lock().remove(&id);
        let mut failure: Option<RmError> = None;
        if let Some(log) = log.filter(|l| !l.is_empty()) {
            let mut store = self.store.lock();
            let entries: Vec<_> = log.entries_reversed().collect();
            for (idx, entry) in entries.iter().enumerate() {
                let undo_write = self.faultable("undo", &entry.table).and_then(|()| {
                    match &entry.before {
                        Some(rec) => store.put(&entry.table, &entry.key, rec.clone()).map(|_| ()),
                        // An absent before-image means the record was created
                        // by this transaction; it may already be gone if a
                        // statement failed before the write landed.
                        None => match store.delete(&entry.table, &entry.key) {
                            Ok(_) | Err(RmError::NoSuchKey { .. }) => Ok(()),
                            Err(e) => Err(e),
                        },
                    }
                });
                if undo_write.is_err() {
                    failure = Some(RmError::RollbackIncomplete {
                        txn: id,
                        remaining: entries[idx..]
                            .iter()
                            .map(|e| (e.table.clone(), e.key.clone()))
                            .collect(),
                    });
                    break;
                }
            }
        }
        self.locks.release_all(id);
        self.counters.aborts.fetch_add(1, Ordering::Relaxed);
        match failure {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Reads a record (`IS` on the table, `S` on the record).
    pub fn get(&self, txn: &Txn, table: &str, key: &str) -> Result<Option<Record>, RmError> {
        self.ensure_active(txn)?;
        self.lock(
            txn,
            &Granule::Table(table.to_owned()),
            LockMode::IntentionShared,
        )?;
        self.lock(
            txn,
            &Granule::Record(table.to_owned(), key.to_owned()),
            LockMode::Shared,
        )?;
        self.faultable("get", table)?;
        self.store.lock().get(table, key)
    }

    /// Writes a record unconditionally (`IX` table, `X` record); creates it
    /// if absent. Returns the previous record, if any.
    pub fn put(
        &self,
        txn: &Txn,
        table: &str,
        key: &str,
        rec: Record,
    ) -> Result<Option<Record>, RmError> {
        self.write_locks(txn, table, key)?;
        self.faultable("put", table)?;
        let mut store = self.store.lock();
        let before = store.get(table, key)?;
        self.record_undo(txn, table, key, before.clone())?;
        store.put(table, key, rec)
    }

    /// Inserts a record; fails with [`RmError::DuplicateKey`] if present.
    pub fn insert(&self, txn: &Txn, table: &str, key: &str, rec: Record) -> Result<(), RmError> {
        self.write_locks(txn, table, key)?;
        self.faultable("insert", table)?;
        let mut store = self.store.lock();
        let before = store.get(table, key)?;
        if before.is_some() {
            return Err(RmError::DuplicateKey {
                table: table.to_owned(),
                key: key.to_owned(),
            });
        }
        self.record_undo(txn, table, key, None)?;
        store.insert(table, key, rec)
    }

    /// Deletes a record; fails with [`RmError::NoSuchKey`] if absent.
    pub fn delete(&self, txn: &Txn, table: &str, key: &str) -> Result<(), RmError> {
        self.write_locks(txn, table, key)?;
        self.faultable("delete", table)?;
        let mut store = self.store.lock();
        let before = store.get(table, key)?;
        if before.is_none() {
            return Err(RmError::NoSuchKey {
                table: table.to_owned(),
                key: key.to_owned(),
            });
        }
        self.record_undo(txn, table, key, before)?;
        store.delete(table, key).map(|_| ())
    }

    /// Read-modify-write of one record under an `X` lock.
    pub fn update(
        &self,
        txn: &Txn,
        table: &str,
        key: &str,
        f: impl FnOnce(&mut Record),
    ) -> Result<(), RmError> {
        self.write_locks(txn, table, key)?;
        self.faultable("update", table)?;
        let mut store = self.store.lock();
        let before = store.get(table, key)?.ok_or_else(|| RmError::NoSuchKey {
            table: table.to_owned(),
            key: key.to_owned(),
        })?;
        self.record_undo(txn, table, key, Some(before.clone()))?;
        let mut rec = before;
        f(&mut rec);
        store.put(table, key, rec).map(|_| ())
    }

    /// Returns the `(table, key)` pairs this transaction has modified so
    /// far (its write set), in first-touch order.
    ///
    /// The promise manager uses this to *enforce* promise scoping (paper
    /// §2: a client "should not use the promise for pink widgets to ask
    /// the order service to deliver some un-promised blue widgets ... the
    /// restrictions could be enforced to some degree by promise and
    /// resource managers").
    pub fn write_set(&self, txn: &Txn) -> Result<Vec<(String, String)>, RmError> {
        let undo = self.undo.lock();
        let log = undo.get(&txn.id).ok_or(RmError::TxnNotActive(txn.id))?;
        let mut out: Vec<(String, String)> = log
            .entries_reversed()
            .map(|e| (e.table.clone(), e.key.clone()))
            .collect();
        out.reverse();
        Ok(out)
    }

    /// Acquires an exclusive transactional lock on a named synchronisation
    /// point (not a table). Held until commit/abort like any other lock and
    /// participates in deadlock detection.
    ///
    /// The promise manager uses this to serialise promise operations the
    /// way the paper's prototype does (§8: "wrap each promise operation in
    /// a transaction ... this gives us the required level of isolation
    /// between concurrent activities") while still letting the wait-for
    /// graph break cycles between a promise check and an in-flight action.
    pub fn lock_exclusive(&self, txn: &Txn, name: &str) -> Result<(), RmError> {
        self.ensure_active(txn)?;
        self.lock(
            txn,
            &Granule::Table(format!("\u{0}sync:{name}")),
            LockMode::Exclusive,
        )
    }

    /// Acquires exclusive locks on several synchronisation points, always
    /// in canonical (sorted, deduplicated) order regardless of the order
    /// the caller passes them in.
    ///
    /// This is the footprint-locking primitive for the promise manager:
    /// every promise operation locks the sync points of exactly the pools
    /// it touches, and because all lockers of multiple sync points go
    /// through this single sorted path, sync points alone can never form
    /// a wait-for cycle (paper §9's no-new-deadlocks property). Cycles
    /// through ordinary data locks are still possible and remain handled
    /// by deadlock detection + victimisation.
    pub fn lock_exclusive_many<S: AsRef<str>>(
        &self,
        txn: &Txn,
        names: &[S],
    ) -> Result<(), RmError> {
        self.ensure_active(txn)?;
        let mut sorted: Vec<&str> = names.iter().map(AsRef::as_ref).collect();
        sorted.sort_unstable();
        sorted.dedup();
        for name in sorted {
            self.lock(
                txn,
                &Granule::Table(format!("\u{0}sync:{name}")),
                LockMode::Exclusive,
            )?;
        }
        Ok(())
    }

    /// Conditional read-modify-write of one record under an `X` lock, in a
    /// single store round-trip. `f` mutates the record and returns whether
    /// the mutation should be kept; when it returns `false` nothing is
    /// written (and no undo entry is recorded). Returns `Ok(None)` if the
    /// key is absent, otherwise `Ok(Some(updated))`.
    pub fn update_if(
        &self,
        txn: &Txn,
        table: &str,
        key: &str,
        f: impl FnOnce(&mut Record) -> bool,
    ) -> Result<Option<bool>, RmError> {
        self.write_locks(txn, table, key)?;
        self.faultable("update", table)?;
        let mut store = self.store.lock();
        let Some(before) = store.get(table, key)? else {
            return Ok(None);
        };
        let mut rec = before.clone();
        if !f(&mut rec) {
            return Ok(Some(false));
        }
        self.record_undo(txn, table, key, Some(before))?;
        store.put(table, key, rec)?;
        Ok(Some(true))
    }

    /// Scans a whole table under a table-level `S` lock (phantom-safe).
    pub fn scan(&self, txn: &Txn, table: &str) -> Result<Vec<(String, Record)>, RmError> {
        self.ensure_active(txn)?;
        self.lock(txn, &Granule::Table(table.to_owned()), LockMode::Shared)?;
        self.faultable("scan", table)?;
        self.store.lock().scan(table)
    }

    /// Runs `f` in a transaction, committing on `Ok` and aborting on `Err`;
    /// retryable failures (deadlock victims, transient storage faults) are
    /// retried up to `max_retries` times. A failed *rollback* is never
    /// retried: [`RmError::RollbackIncomplete`] is returned immediately,
    /// taking precedence over the error that triggered the abort, because
    /// it means the store may be inconsistent.
    pub fn transact<R>(
        &self,
        max_retries: usize,
        mut f: impl FnMut(&Txn) -> Result<R, RmError>,
    ) -> Result<R, RmError> {
        let mut attempt = 0;
        loop {
            let txn = self.begin();
            match f(&txn) {
                Ok(v) => match self.commit(txn) {
                    Ok(()) => return Ok(v),
                    Err(e) => return Err(e),
                },
                Err(e) if e.retryable() && attempt < max_retries => {
                    self.abort(txn)?;
                    attempt += 1;
                    // Bounded exponential backoff breaks retry lockstep
                    // between symmetric victims (caps at ~3ms).
                    let exp = (attempt as u32).min(5);
                    std::thread::sleep(std::time::Duration::from_micros(100u64 << exp));
                }
                Err(e) => {
                    self.abort(txn)?;
                    return Err(e);
                }
            }
        }
    }

    /// Per-table record counts.
    pub fn table_stats(&self) -> Vec<TableStats> {
        self.store.lock().stats()
    }

    /// Counter snapshot (commits / aborts / deadlocks so far).
    pub fn stats(&self) -> RmStatsSnapshot {
        RmStatsSnapshot {
            commits: self.counters.commits.load(Ordering::Relaxed),
            aborts: self.counters.aborts.load(Ordering::Relaxed),
            deadlocks: self.counters.deadlocks.load(Ordering::Relaxed),
        }
    }

    /// Number of currently locked granules (diagnostics).
    pub fn locked_granules(&self) -> usize {
        self.locks.locked_granules()
    }

    fn ensure_active(&self, txn: &Txn) -> Result<(), RmError> {
        if self.undo.lock().contains_key(&txn.id) {
            Ok(())
        } else {
            Err(RmError::TxnNotActive(txn.id))
        }
    }

    fn write_locks(&self, txn: &Txn, table: &str, key: &str) -> Result<(), RmError> {
        self.ensure_active(txn)?;
        self.lock(
            txn,
            &Granule::Table(table.to_owned()),
            LockMode::IntentionExclusive,
        )?;
        self.lock(
            txn,
            &Granule::Record(table.to_owned(), key.to_owned()),
            LockMode::Exclusive,
        )
    }

    fn lock(&self, txn: &Txn, granule: &Granule, mode: LockMode) -> Result<(), RmError> {
        match self.locks.lock(txn.id, granule, mode) {
            Err(e @ RmError::Deadlock { .. }) => {
                self.counters.deadlocks.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
            other => other,
        }
    }

    fn record_undo(
        &self,
        txn: &Txn,
        table: &str,
        key: &str,
        before: Option<Record>,
    ) -> Result<(), RmError> {
        let mut undo = self.undo.lock();
        let log = undo.get_mut(&txn.id).ok_or(RmError::TxnNotActive(txn.id))?;
        log.record(table, key, before);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn rm_with_table() -> ResourceManager {
        let rm = ResourceManager::new();
        rm.create_table("t");
        rm
    }

    #[test]
    fn commit_makes_writes_visible() {
        let rm = rm_with_table();
        let tx = rm.begin();
        rm.insert(&tx, "t", "k", Record::new().with("v", 1i64))
            .unwrap();
        rm.commit(tx).unwrap();
        let tx = rm.begin();
        assert_eq!(rm.get(&tx, "t", "k").unwrap().unwrap().int("v"), Some(1));
        rm.commit(tx).unwrap();
    }

    #[test]
    fn abort_undoes_insert_update_delete() {
        let rm = rm_with_table();
        let tx = rm.begin();
        rm.insert(&tx, "t", "stay", Record::new().with("v", 1i64))
            .unwrap();
        rm.commit(tx).unwrap();

        let tx = rm.begin();
        rm.insert(&tx, "t", "new", Record::new()).unwrap();
        rm.update(&tx, "t", "stay", |r| r.set("v", 99i64)).unwrap();
        rm.delete(&tx, "t", "stay").unwrap();
        rm.abort(tx).unwrap();

        let tx = rm.begin();
        assert!(rm.get(&tx, "t", "new").unwrap().is_none(), "insert undone");
        assert_eq!(
            rm.get(&tx, "t", "stay").unwrap().unwrap().int("v"),
            Some(1),
            "update+delete undone back to original"
        );
        rm.commit(tx).unwrap();
    }

    #[test]
    fn locks_released_after_commit_and_abort() {
        let rm = rm_with_table();
        let tx = rm.begin();
        rm.insert(&tx, "t", "k", Record::new()).unwrap();
        assert!(rm.locked_granules() > 0);
        rm.commit(tx).unwrap();
        assert_eq!(rm.locked_granules(), 0);

        let tx = rm.begin();
        rm.put(&tx, "t", "k", Record::new().with("x", 1i64))
            .unwrap();
        rm.abort(tx).unwrap();
        assert_eq!(rm.locked_granules(), 0);
    }

    #[test]
    fn using_finished_txn_fails() {
        let rm = rm_with_table();
        let tx = rm.begin();
        let id = tx.id();
        rm.commit(tx).unwrap();
        let fake = Txn {
            id,
            started: Instant::now(),
        };
        assert_eq!(rm.get(&fake, "t", "k"), Err(RmError::TxnNotActive(id)));
    }

    #[test]
    fn writers_block_readers_until_commit() {
        let rm = Arc::new(rm_with_table());
        let tx = rm.begin();
        rm.insert(&tx, "t", "k", Record::new().with("v", 1i64))
            .unwrap();
        rm.commit(tx).unwrap();

        let tx = rm.begin();
        rm.update(&tx, "t", "k", |r| r.set("v", 2i64)).unwrap();

        let rm2 = Arc::clone(&rm);
        let h = thread::spawn(move || {
            let tr = rm2.begin();
            let v = rm2.get(&tr, "t", "k").unwrap().unwrap().int("v");
            rm2.commit(tr).unwrap();
            v
        });
        thread::sleep(std::time::Duration::from_millis(30));
        assert!(!h.is_finished(), "reader must block on writer's X lock");
        rm.commit(tx).unwrap();
        assert_eq!(h.join().unwrap(), Some(2), "reader sees committed value");
    }

    #[test]
    fn transact_retries_deadlocks_and_commits() {
        let rm = Arc::new(rm_with_table());
        let tx = rm.begin();
        rm.insert(&tx, "t", "a", Record::new().with("v", 0i64))
            .unwrap();
        rm.insert(&tx, "t", "b", Record::new().with("v", 0i64))
            .unwrap();
        rm.commit(tx).unwrap();

        // Two transactions updating a,b in opposite orders: without retry
        // one would fail; with transact both eventually succeed.
        let mut handles = Vec::new();
        for order in [["a", "b"], ["b", "a"]] {
            let rm = Arc::clone(&rm);
            handles.push(thread::spawn(move || {
                rm.transact(50, |tx| {
                    rm.update(tx, "t", order[0], |r| {
                        let v = r.int("v").unwrap();
                        r.set("v", v + 1);
                    })?;
                    thread::sleep(std::time::Duration::from_millis(5));
                    rm.update(tx, "t", order[1], |r| {
                        let v = r.int("v").unwrap();
                        r.set("v", v + 1);
                    })
                })
            }));
        }
        for h in handles {
            h.join().unwrap().unwrap();
        }
        let tx = rm.begin();
        assert_eq!(rm.get(&tx, "t", "a").unwrap().unwrap().int("v"), Some(2));
        assert_eq!(rm.get(&tx, "t", "b").unwrap().unwrap().int("v"), Some(2));
        rm.commit(tx).unwrap();
    }

    #[test]
    fn scan_sees_consistent_snapshot_under_table_lock() {
        let rm = rm_with_table();
        let tx = rm.begin();
        for i in 0..5 {
            rm.insert(
                &tx,
                "t",
                &format!("k{i}"),
                Record::new().with("v", i as i64),
            )
            .unwrap();
        }
        rm.commit(tx).unwrap();
        let tx = rm.begin();
        let rows = rm.scan(&tx, "t").unwrap();
        assert_eq!(rows.len(), 5);
        rm.commit(tx).unwrap();
    }

    #[test]
    fn duplicate_insert_leaves_txn_usable() {
        let rm = rm_with_table();
        let tx = rm.begin();
        rm.insert(&tx, "t", "k", Record::new()).unwrap();
        assert!(matches!(
            rm.insert(&tx, "t", "k", Record::new()),
            Err(RmError::DuplicateKey { .. })
        ));
        // The transaction is still usable after a statement failure.
        rm.insert(&tx, "t", "k2", Record::new()).unwrap();
        rm.commit(tx).unwrap();
    }

    #[test]
    fn stats_count_commits_and_aborts() {
        let rm = rm_with_table();
        let tx = rm.begin();
        rm.commit(tx).unwrap();
        let tx = rm.begin();
        rm.abort(tx).unwrap();
        let s = rm.stats();
        assert_eq!(s.commits, 1);
        assert_eq!(s.aborts, 1);
    }

    #[test]
    fn lock_exclusive_many_is_order_insensitive_and_deadlock_free() {
        let rm = Arc::new(rm_with_table());
        // Opposite declaration orders on the same sync points: the sorted
        // acquisition path must never produce a deadlock victim.
        let mut handles = Vec::new();
        for names in [["p/a", "p/b", "p/c"], ["p/c", "p/b", "p/a"]] {
            let rm = Arc::clone(&rm);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    rm.transact(0, |tx| {
                        rm.lock_exclusive_many(tx, &names)?;
                        thread::yield_now();
                        Ok(())
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            rm.stats().deadlocks,
            0,
            "sorted sync locking must not deadlock"
        );
    }

    #[test]
    fn lock_exclusive_many_matches_single_sync_points() {
        let rm = Arc::new(rm_with_table());
        // A multi-lock on {a, b} must conflict with a single lock on b.
        let tx = rm.begin();
        rm.lock_exclusive_many(&tx, &["a", "b", "b"]).unwrap();

        let rm2 = Arc::clone(&rm);
        let h = thread::spawn(move || {
            let t = rm2.begin();
            rm2.lock_exclusive(&t, "b").unwrap();
            rm2.commit(t).unwrap();
        });
        thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !h.is_finished(),
            "single sync point must block on multi-lock"
        );
        rm.commit(tx).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn update_if_writes_only_when_predicate_holds() {
        let rm = rm_with_table();
        let tx = rm.begin();
        rm.insert(&tx, "t", "k", Record::new().with("v", 1i64))
            .unwrap();
        rm.commit(tx).unwrap();

        let tx = rm.begin();
        // Declined update: no write, no undo entry.
        assert_eq!(rm.update_if(&tx, "t", "k", |_| false), Ok(Some(false)));
        assert!(
            rm.write_set(&tx).unwrap().is_empty(),
            "declined update must not log"
        );
        // Missing key is not an error, just None.
        assert_eq!(rm.update_if(&tx, "t", "nope", |_| true), Ok(None));
        // Applied update goes through and is undone on abort.
        assert_eq!(
            rm.update_if(&tx, "t", "k", |r| {
                r.set("v", 2i64);
                true
            }),
            Ok(Some(true))
        );
        assert_eq!(rm.get(&tx, "t", "k").unwrap().unwrap().int("v"), Some(2));
        rm.abort(tx).unwrap();

        let tx = rm.begin();
        assert_eq!(
            rm.get(&tx, "t", "k").unwrap().unwrap().int("v"),
            Some(1),
            "abort reverts applied update_if"
        );
        rm.commit(tx).unwrap();
    }

    #[test]
    fn concurrent_increments_are_serialised() {
        let rm = Arc::new(rm_with_table());
        let tx = rm.begin();
        rm.insert(&tx, "t", "ctr", Record::new().with("v", 0i64))
            .unwrap();
        rm.commit(tx).unwrap();

        let threads = 8;
        let per = 25;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let rm = Arc::clone(&rm);
            handles.push(thread::spawn(move || {
                for _ in 0..per {
                    rm.transact(100, |tx| {
                        rm.update(tx, "t", "ctr", |r| {
                            let v = r.int("v").unwrap();
                            r.set("v", v + 1);
                        })
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let tx = rm.begin();
        assert_eq!(
            rm.get(&tx, "t", "ctr").unwrap().unwrap().int("v"),
            Some((threads * per) as i64)
        );
        rm.commit(tx).unwrap();
    }
}
