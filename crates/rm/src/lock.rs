//! Hierarchical strict two-phase locking with deadlock detection.
//!
//! The lock manager grants logical locks on table and record granules using
//! the classic `IS`/`IX`/`S`/`X` mode lattice:
//!
//! * readers take `IS` on the table then `S` on the record,
//! * writers take `IX` on the table then `X` on the record,
//! * scanners take `S` on the whole table, which conflicts with any
//!   writer's `IX` and therefore prevents phantoms.
//!
//! Lock waits are tracked in a wait-for graph; when adding a wait would
//! close a cycle the requesting transaction is chosen as the victim and the
//! request fails with [`RmError::Deadlock`]. Locks are held until
//! [`LockManager::release_all`] (strict 2PL: the resource manager releases
//! only at commit/abort).

use std::collections::{HashMap, HashSet, VecDeque};

use parking_lot::{Condvar, Mutex};

use crate::error::RmError;
use crate::txn::TxnId;

/// Lock modes in increasing strength for a single granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Intention shared: the holder reads individual records below.
    IntentionShared,
    /// Intention exclusive: the holder writes individual records below.
    IntentionExclusive,
    /// Shared: the holder reads the whole granule.
    Shared,
    /// Exclusive: the holder writes the whole granule.
    Exclusive,
}

impl LockMode {
    /// Standard hierarchical-locking compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (IntentionShared, IntentionShared)
                | (IntentionShared, IntentionExclusive)
                | (IntentionExclusive, IntentionShared)
                | (IntentionExclusive, IntentionExclusive)
                | (IntentionShared, Shared)
                | (Shared, IntentionShared)
                | (Shared, Shared)
        )
    }

    /// True if holding `self` is at least as strong as holding `want`
    /// (i.e. no new lock is needed).
    pub fn covers(self, want: LockMode) -> bool {
        use LockMode::*;
        match (self, want) {
            (x, y) if x == y => true,
            (Exclusive, _) => true,
            (Shared, IntentionShared) => true,
            (IntentionExclusive, IntentionShared) => true,
            _ => false,
        }
    }

    /// The weakest mode covering both `self` and `want` (lock upgrade).
    pub fn combine(self, want: LockMode) -> LockMode {
        use LockMode::*;
        if self.covers(want) {
            return self;
        }
        if want.covers(self) {
            return want;
        }
        match (self, want) {
            // S + IX = SIX in textbooks; we conservatively use X, which is
            // correct (strictly stronger) and keeps the mode set small.
            (Shared, IntentionExclusive) | (IntentionExclusive, Shared) => Exclusive,
            (Shared, Exclusive) | (Exclusive, Shared) => Exclusive,
            (IntentionShared, IntentionExclusive) | (IntentionExclusive, IntentionShared) => {
                IntentionExclusive
            }
            (IntentionShared, Shared) | (Shared, IntentionShared) => Shared,
            (IntentionShared, Exclusive)
            | (Exclusive, IntentionShared)
            | (IntentionExclusive, Exclusive)
            | (Exclusive, IntentionExclusive) => Exclusive,
            _ => Exclusive,
        }
    }
}

/// A lockable granule: a whole table or one record within it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Granule {
    /// The table itself (used for scans and intention locks).
    Table(String),
    /// A single record.
    Record(String, String),
}

#[derive(Debug, Default)]
struct GranuleState {
    holders: HashMap<TxnId, LockMode>,
    /// FIFO of waiting (txn, wanted mode); kept so wakeups re-check in order.
    waiters: VecDeque<(TxnId, LockMode)>,
}

#[derive(Default)]
struct LmInner {
    locks: HashMap<Granule, GranuleState>,
    /// Edges `waiter -> holders it waits for`.
    wait_for: HashMap<TxnId, HashSet<TxnId>>,
    /// Reverse index: which granules a transaction holds (for release_all).
    held: HashMap<TxnId, HashSet<Granule>>,
}

impl LmInner {
    /// Would granting `(txn, mode)` on `state` conflict with current holders?
    fn conflicts(&self, state: &GranuleState, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        state
            .holders
            .iter()
            .filter(|(holder, held)| **holder != txn && !held.compatible(mode))
            .map(|(holder, _)| *holder)
            .collect()
    }

    /// Depth-first search for a path from `from` back to `target` in the
    /// wait-for graph; a hit means granting the wait would close a cycle.
    fn reaches(&self, from: TxnId, target: TxnId) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == target {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = self.wait_for.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }
}

/// The lock manager. One instance is shared by all transactions of a
/// [`crate::ResourceManager`].
pub struct LockManager {
    inner: Mutex<LmInner>,
    cv: Condvar,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    /// Creates an empty lock manager.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(LmInner::default()),
            cv: Condvar::new(),
        }
    }

    /// Acquires (or upgrades to) `mode` on `granule` for `txn`, blocking
    /// until compatible. Returns [`RmError::Deadlock`] if waiting would
    /// close a wait-for cycle; the caller must then abort `txn`.
    pub fn lock(&self, txn: TxnId, granule: &Granule, mode: LockMode) -> Result<(), RmError> {
        let mut inner = self.inner.lock();
        loop {
            let state = inner.locks.entry(granule.clone()).or_default();
            let effective = match state.holders.get(&txn) {
                Some(held) if held.covers(mode) => return Ok(()),
                Some(held) => held.combine(mode),
                None => mode,
            };
            let conflicting = inner
                .locks
                .get(granule)
                .map(|s| inner.conflicts(s, txn, effective))
                .unwrap_or_default();
            if conflicting.is_empty() {
                let state = inner.locks.entry(granule.clone()).or_default();
                state.holders.insert(txn, effective);
                inner.held.entry(txn).or_default().insert(granule.clone());
                inner.wait_for.remove(&txn);
                return Ok(());
            }
            // Would waiting on any conflicting holder close a cycle back to us?
            for holder in &conflicting {
                if inner.reaches(*holder, txn) {
                    inner.wait_for.remove(&txn);
                    if let Some(state) = inner.locks.get_mut(granule) {
                        state.waiters.retain(|(t, _)| *t != txn);
                    }
                    return Err(RmError::Deadlock { txn });
                }
            }
            inner
                .wait_for
                .entry(txn)
                .or_default()
                .extend(conflicting.iter().copied());
            let state = inner.locks.entry(granule.clone()).or_default();
            if !state.waiters.iter().any(|(t, m)| *t == txn && *m == mode) {
                state.waiters.push_back((txn, mode));
            }
            self.cv.wait(&mut inner);
            // Re-derive the wait edges on the next pass; stale edges are
            // cleared here so the graph only reflects current blockers.
            inner.wait_for.remove(&txn);
            if let Some(state) = inner.locks.get_mut(granule) {
                state.waiters.retain(|(t, _)| *t != txn);
            }
        }
    }

    /// Releases every lock held by `txn` and wakes all waiters.
    pub fn release_all(&self, txn: TxnId) {
        let mut inner = self.inner.lock();
        if let Some(granules) = inner.held.remove(&txn) {
            for g in granules {
                let empty = if let Some(state) = inner.locks.get_mut(&g) {
                    state.holders.remove(&txn);
                    state.holders.is_empty() && state.waiters.is_empty()
                } else {
                    false
                };
                if empty {
                    inner.locks.remove(&g);
                }
            }
        }
        inner.wait_for.remove(&txn);
        self.cv.notify_all();
    }

    /// Number of granules currently locked (diagnostics/tests).
    pub fn locked_granules(&self) -> usize {
        self.inner
            .lock()
            .locks
            .values()
            .filter(|s| !s.holders.is_empty())
            .count()
    }

    /// True if `txn` currently holds `mode`-covering access on `granule`.
    pub fn holds(&self, txn: TxnId, granule: &Granule, mode: LockMode) -> bool {
        self.inner
            .lock()
            .locks
            .get(granule)
            .and_then(|s| s.holders.get(&txn))
            .map(|held| held.covers(mode))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn rec(k: &str) -> Granule {
        Granule::Record("t".into(), k.into())
    }

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(IntentionShared.compatible(IntentionExclusive));
        assert!(IntentionExclusive.compatible(IntentionExclusive));
        assert!(Shared.compatible(Shared));
        assert!(Shared.compatible(IntentionShared));
        assert!(!Shared.compatible(IntentionExclusive));
        assert!(!Exclusive.compatible(IntentionShared));
        assert!(!Exclusive.compatible(Exclusive));
        assert!(!IntentionExclusive.compatible(Shared));
    }

    #[test]
    fn covers_and_combine() {
        use LockMode::*;
        assert!(Exclusive.covers(Shared));
        assert!(Shared.covers(IntentionShared));
        assert!(!Shared.covers(Exclusive));
        assert_eq!(Shared.combine(Exclusive), Exclusive);
        assert_eq!(
            IntentionShared.combine(IntentionExclusive),
            IntentionExclusive
        );
        assert_eq!(Shared.combine(IntentionExclusive), Exclusive);
        assert_eq!(IntentionShared.combine(Shared), Shared);
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), &rec("a"), LockMode::Shared).unwrap();
        lm.lock(TxnId(2), &rec("a"), LockMode::Shared).unwrap();
        assert!(lm.holds(TxnId(1), &rec("a"), LockMode::Shared));
        assert!(lm.holds(TxnId(2), &rec("a"), LockMode::Shared));
    }

    #[test]
    fn exclusive_blocks_until_release() {
        let lm = Arc::new(LockManager::new());
        lm.lock(TxnId(1), &rec("a"), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || {
            lm2.lock(TxnId(2), &rec("a"), LockMode::Exclusive).unwrap();
            lm2.release_all(TxnId(2));
        });
        thread::sleep(Duration::from_millis(30));
        assert!(!h.is_finished(), "txn 2 should be blocked");
        lm.release_all(TxnId(1));
        h.join().unwrap();
    }

    #[test]
    fn deadlock_is_detected_and_victim_chosen() {
        let lm = Arc::new(LockManager::new());
        lm.lock(TxnId(1), &rec("a"), LockMode::Exclusive).unwrap();
        lm.lock(TxnId(2), &rec("b"), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || {
            // txn 2 waits for a (held by 1).
            let r = lm2.lock(TxnId(2), &rec("a"), LockMode::Exclusive);
            if r.is_ok() {
                lm2.release_all(TxnId(2));
            }
            r
        });
        thread::sleep(Duration::from_millis(30));
        // txn 1 asks for b (held by 2): cycle 1->2->1, someone must die.
        let r1 = lm.lock(TxnId(1), &rec("b"), LockMode::Exclusive);
        // Victim or not, txn 1 releases everything so txn 2 can finish.
        lm.release_all(TxnId(1));
        let r2 = h.join().unwrap();
        assert!(
            r1.is_err() || r2.is_err(),
            "at least one transaction must be a deadlock victim"
        );
    }

    #[test]
    fn lock_upgrade_shared_to_exclusive_when_sole_holder() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), &rec("a"), LockMode::Shared).unwrap();
        lm.lock(TxnId(1), &rec("a"), LockMode::Exclusive).unwrap();
        assert!(lm.holds(TxnId(1), &rec("a"), LockMode::Exclusive));
    }

    #[test]
    fn upgrade_deadlock_between_two_readers_is_detected() {
        let lm = Arc::new(LockManager::new());
        lm.lock(TxnId(1), &rec("a"), LockMode::Shared).unwrap();
        lm.lock(TxnId(2), &rec("a"), LockMode::Shared).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || {
            let r = lm2.lock(TxnId(2), &rec("a"), LockMode::Exclusive);
            lm2.release_all(TxnId(2));
            r
        });
        thread::sleep(Duration::from_millis(30));
        let r1 = lm.lock(TxnId(1), &rec("a"), LockMode::Exclusive);
        lm.release_all(TxnId(1));
        let r2 = h.join().unwrap();
        assert!(r1.is_err() || r2.is_err());
        // Whichever survived must have obtained the lock; both ended released.
        assert_eq!(lm.locked_granules(), 0);
    }

    #[test]
    fn table_scan_lock_blocks_record_writer() {
        let lm = Arc::new(LockManager::new());
        let table = Granule::Table("t".into());
        lm.lock(TxnId(1), &table, LockMode::Shared).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || {
            lm2.lock(
                TxnId(2),
                &Granule::Table("t".into()),
                LockMode::IntentionExclusive,
            )
            .unwrap();
            lm2.release_all(TxnId(2));
        });
        thread::sleep(Duration::from_millis(30));
        assert!(!h.is_finished(), "IX must wait for table S");
        lm.release_all(TxnId(1));
        h.join().unwrap();
    }

    #[test]
    fn release_all_cleans_state() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), &rec("a"), LockMode::Exclusive).unwrap();
        lm.lock(
            TxnId(1),
            &Granule::Table("t".into()),
            LockMode::IntentionExclusive,
        )
        .unwrap();
        assert_eq!(lm.locked_granules(), 2);
        lm.release_all(TxnId(1));
        assert_eq!(lm.locked_granules(), 0);
    }

    #[test]
    fn relocking_held_mode_is_idempotent() {
        let lm = LockManager::new();
        for _ in 0..3 {
            lm.lock(TxnId(1), &rec("a"), LockMode::Shared).unwrap();
        }
        assert_eq!(lm.locked_granules(), 1);
        lm.release_all(TxnId(1));
        assert_eq!(lm.locked_granules(), 0);
    }
}
