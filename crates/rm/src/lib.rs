//! `promises-rm` — an embedded, in-memory ACID resource manager.
//!
//! This crate is the Resource Manager (RM) substrate from Section 8 of
//! *Isolation Support for Service-based Applications* (CIDR 2007). The
//! paper's prototype wraps every promise operation in a short, local ACID
//! transaction covering both the application's state changes and the
//! promise manager's bookkeeping; this crate supplies that transaction
//! facility:
//!
//! * a record store organised as named tables of `key -> Record`,
//! * strict two-phase locking with hierarchical (table/record) lock modes
//!   `IS`/`IX`/`S`/`X` and wait-for-graph deadlock detection,
//! * an undo log giving atomic rollback of aborted transactions.
//!
//! The store is deliberately memory-resident: durability across process
//! restarts is irrelevant to the isolation semantics under study, while
//! atomicity and isolation of the per-request transaction are load-bearing.
//!
//! # Example
//!
//! ```
//! use promises_rm::{ResourceManager, Record, Value};
//!
//! let rm = ResourceManager::new();
//! rm.create_table("stock");
//!
//! let tx = rm.begin();
//! rm.insert(&tx, "stock", "pink-widget", Record::new().with("qty", 100i64)).unwrap();
//! rm.commit(tx).unwrap();
//!
//! let tx = rm.begin();
//! let rec = rm.get(&tx, "stock", "pink-widget").unwrap().unwrap();
//! assert_eq!(rec.int("qty"), Some(100));
//! rm.commit(tx).unwrap();
//! ```

mod error;
mod lock;
mod log;
mod store;
mod txn;
mod value;

pub use error::RmError;
pub use lock::{LockManager, LockMode};
pub use store::TableStats;
pub use txn::{ResourceManager, StorageFaultHook, Txn, TxnId};
pub use value::{Record, Value};

/// Convenient `Result` alias for resource-manager operations.
pub type Result<T> = std::result::Result<T, RmError>;
