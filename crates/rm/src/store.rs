//! The physical record store: named tables of `key -> Record`.
//!
//! Access control (locking) and atomicity (undo) live in the transaction
//! layer; the store itself is a plain map guarded by a mutex and only ever
//! touched while the caller holds the appropriate logical locks.

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::error::RmError;
use crate::value::Record;

/// Summary statistics for a table (diagnostics and workload sizing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStats {
    /// Table name.
    pub name: String,
    /// Number of records.
    pub records: usize,
}

#[derive(Debug, Default)]
pub(crate) struct Store {
    tables: HashMap<String, BTreeMap<String, Record>>,
}

impl Store {
    pub fn create_table(&mut self, name: &str) -> Result<(), RmError> {
        if self.tables.contains_key(name) {
            return Err(RmError::TableExists(name.to_owned()));
        }
        self.tables.insert(name.to_owned(), BTreeMap::new());
        Ok(())
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn get(&self, table: &str, key: &str) -> Result<Option<Record>, RmError> {
        Ok(self.table(table)?.get(key).cloned())
    }

    pub fn put(&mut self, table: &str, key: &str, rec: Record) -> Result<Option<Record>, RmError> {
        Ok(self.table_mut(table)?.insert(key.to_owned(), rec))
    }

    pub fn insert(&mut self, table: &str, key: &str, rec: Record) -> Result<(), RmError> {
        let t = self.table_mut(table)?;
        if t.contains_key(key) {
            return Err(RmError::DuplicateKey {
                table: table.to_owned(),
                key: key.to_owned(),
            });
        }
        t.insert(key.to_owned(), rec);
        Ok(())
    }

    pub fn delete(&mut self, table: &str, key: &str) -> Result<Option<Record>, RmError> {
        Ok(self.table_mut(table)?.remove(key))
    }

    pub fn scan(&self, table: &str) -> Result<Vec<(String, Record)>, RmError> {
        Ok(self
            .table(table)?
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect())
    }

    pub fn stats(&self) -> Vec<TableStats> {
        let mut out: Vec<_> = self
            .tables
            .iter()
            .map(|(name, t)| TableStats {
                name: name.clone(),
                records: t.len(),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    fn table(&self, name: &str) -> Result<&BTreeMap<String, Record>, RmError> {
        self.tables
            .get(name)
            .ok_or_else(|| RmError::NoSuchTable(name.to_owned()))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut BTreeMap<String, Record>, RmError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| RmError::NoSuchTable(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_duplicate_table() {
        let mut s = Store::default();
        s.create_table("t").unwrap();
        assert!(s.has_table("t"));
        assert_eq!(s.create_table("t"), Err(RmError::TableExists("t".into())));
    }

    #[test]
    fn crud_roundtrip() {
        let mut s = Store::default();
        s.create_table("t").unwrap();
        s.insert("t", "k", Record::new().with("v", 1i64)).unwrap();
        assert_eq!(s.get("t", "k").unwrap().unwrap().int("v"), Some(1));
        let old = s.put("t", "k", Record::new().with("v", 2i64)).unwrap();
        assert_eq!(old.unwrap().int("v"), Some(1));
        let removed = s.delete("t", "k").unwrap();
        assert_eq!(removed.unwrap().int("v"), Some(2));
        assert!(s.get("t", "k").unwrap().is_none());
    }

    #[test]
    fn insert_duplicate_key_fails() {
        let mut s = Store::default();
        s.create_table("t").unwrap();
        s.insert("t", "k", Record::new()).unwrap();
        assert!(matches!(
            s.insert("t", "k", Record::new()),
            Err(RmError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn missing_table_errors() {
        let s = Store::default();
        assert_eq!(s.get("nope", "k"), Err(RmError::NoSuchTable("nope".into())));
    }

    #[test]
    fn scan_is_key_ordered() {
        let mut s = Store::default();
        s.create_table("t").unwrap();
        s.insert("t", "b", Record::new()).unwrap();
        s.insert("t", "a", Record::new()).unwrap();
        let keys: Vec<_> = s.scan("t").unwrap().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn stats_reports_sizes() {
        let mut s = Store::default();
        s.create_table("b").unwrap();
        s.create_table("a").unwrap();
        s.insert("a", "1", Record::new()).unwrap();
        let st = s.stats();
        assert_eq!(st.len(), 2);
        assert_eq!(st[0].name, "a");
        assert_eq!(st[0].records, 1);
        assert_eq!(st[1].records, 0);
    }
}
