//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! This workspace builds without network access, so external crates are
//! provided as in-repo shims exposing exactly the surface the workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `random_range` / `random_bool`. The generator is SplitMix64 —
//! deterministic per seed, which the simulator relies on for reproducible
//! workloads. Not cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive integer
    /// ranges). Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<G: RngCore> Rng for G {}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange<T> {
    /// Draws one sample; panics if the range is empty.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),+) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $ty {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
            }
        }
    )+};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

pub mod rngs {
    //! Concrete generators (only `StdRng` is provided).

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`. Same seed → same stream, on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3u64..=9);
            assert!((3..=9).contains(&v));
            let w = rng.random_range(5usize..6);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..1000).filter(|_| rng.random_bool(0.5)).count();
        assert!((300..700).contains(&hits), "hits={hits}");
    }
}
