//! `promises-services` — example application services built on Promises.
//!
//! These are the paper's running examples (§1, §3, §7) implemented as
//! small domain services over a shared [`promises_core::PromiseManager`]:
//!
//! * [`Merchant`] — the §7/Figure 1 order process: anonymous stock
//!   promises, purchase-with-release, concurrent orders;
//! * [`Bank`] — §3.1 account-balance promises ("the bank is not obliged
//!   to set aside five specific $100 bills");
//! * [`Hotel`] — §3.3 property-view room promises (floor, view, class
//!   with ordered upgrades) and the room-512 re-arrangement example;
//! * [`Airline`] — §3.2 named seats coexisting with anonymous
//!   class-based promises on the same flight;
//! * [`Shipping`] — §7's "next-day delivery" promise over opaque carrier
//!   capacity, optionally *delegated* (§5) to an upstream carrier manager;
//! * [`TravelAgent`] — §4's flight+car+hotel multi-predicate atomic
//!   promise request;
//! * [`BookingDesk`] — an edge booking service whose real resources all
//!   live upstream: §5 delegation chains pointed at the per-shard
//!   managers of a cluster, rebindable across fail-over;
//! * [`OrderWorkflow`] — the long-running order process as an explicit
//!   event-driven state machine, substituting for the authors' GAT
//!   workflow engine \[5\].

#![warn(missing_docs)]

mod airline;
mod bank;
mod desk;
mod hotel;
mod merchant;
mod shipping;
mod travel;
mod workflow;

pub use airline::Airline;
pub use bank::Bank;
pub use desk::{BookingDesk, VOUCHER_POOL};
pub use hotel::{allocated_room, Hotel, RoomSpec, ROOM_POOL};
pub use merchant::Merchant;
pub use shipping::{standalone_carrier, Shipping, CARRIER_POOL, SHIPPING_POOL};
pub use travel::{TravelAgent, TravelBooking};
pub use workflow::{InvalidTransition, OrderEvent, OrderState, OrderWorkflow, WorkflowError};
