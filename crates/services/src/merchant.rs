//! The merchant order-handling process of §7 / Figure 1.
//!
//! "The merchant order-handling process ... can now ask the manager of
//! the stock resource for an initial promise that the goods required to
//! meet an order will not be sold to anyone else for the duration of the
//! order handling process."

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use promises_core::{
    Catalog, Environment, PoolSchema, Predicate, PromiseDecision, PromiseError, PromiseId,
    PromiseManager, PromiseRequestSpec, RejectReason,
};
use promises_rm::Record;

/// Table recording completed orders.
pub const ORDERS_TABLE: &str = "orders";

/// A merchant selling anonymous stock-keeping units.
pub struct Merchant {
    pm: Arc<PromiseManager>,
    next_order: AtomicU64,
}

impl Merchant {
    /// Creates a merchant over a promise manager; the order table is
    /// created eagerly.
    pub fn new(pm: Arc<PromiseManager>) -> Self {
        pm.rm().create_table(ORDERS_TABLE);
        Self {
            pm,
            next_order: AtomicU64::new(1),
        }
    }

    /// The promise manager this merchant uses.
    pub fn manager(&self) -> &Arc<PromiseManager> {
        &self.pm
    }

    /// Registers a stock-keeping unit with an initial quantity on hand.
    pub fn stock_sku(&self, sku: &str, qty: u64) -> Result<(), PromiseError> {
        self.pm.register_pool(PoolSchema::quantity(sku));
        self.pm.seed_quantity(sku, qty)
    }

    /// Current quantity on hand for a SKU.
    pub fn on_hand(&self, sku: &str) -> Result<u64, PromiseError> {
        let rm = self.pm.rm();
        let txn = rm.begin();
        let qty = rm
            .get(&txn, Catalog::QTY_TABLE, sku)?
            .and_then(|r| r.int("qty"))
            .map(|v| v.max(0) as u64)
            .unwrap_or(0);
        rm.commit(txn)?;
        Ok(qty)
    }

    /// Figure 1 step 1: request a promise that `qty` units of `sku` stay
    /// available for `duration_ms`. Returns the promise or the rejection
    /// reason (goods unavailable → "terminate order process").
    pub fn reserve_stock(
        &self,
        client: &str,
        sku: &str,
        qty: u64,
        duration_ms: u64,
    ) -> Result<Result<PromiseId, RejectReason>, PromiseError> {
        let order_no = self.next_order.fetch_add(1, Ordering::Relaxed);
        let resp = self.pm.request(
            PromiseRequestSpec::new(
                promises_core::RequestId(format!("order-{order_no}")),
                promises_core::ClientId(client.to_owned()),
            )
            .predicate(Predicate::qty_at_least(sku, qty))
            .duration_ms(duration_ms),
        )?;
        Ok(match resp.decision {
            PromiseDecision::Granted { promise, .. } => Ok(promise),
            PromiseDecision::Rejected { reason } => Err(reason),
        })
    }

    /// Figure 1 final step: "send 'purchase stock' request ... and release
    /// promise to keep stock level". Decrements stock and records the
    /// order, releasing the promise atomically with success.
    pub fn purchase(
        &self,
        promise: PromiseId,
        client: &str,
        sku: &str,
        qty: u64,
    ) -> Result<String, PromiseError> {
        let order_id = format!("o-{}", self.next_order.fetch_add(1, Ordering::Relaxed));
        let env = Environment::none().releasing(promise);
        let sku = sku.to_owned();
        let client = client.to_owned();
        let oid = order_id.clone();
        self.pm.execute(&env, move |rm, txn| {
            let current = rm
                .get(txn, Catalog::QTY_TABLE, &sku)
                .map_err(promises_core::ActionError::from)?
                .and_then(|r| r.int("qty"))
                .unwrap_or(0);
            if current < qty as i64 {
                return Err(format!("insufficient stock: {current} < {qty}").into());
            }
            rm.update(txn, Catalog::QTY_TABLE, &sku, |r| {
                r.set("qty", current - qty as i64);
            })
            .map_err(promises_core::ActionError::from)?;
            rm.insert(
                txn,
                ORDERS_TABLE,
                &oid,
                Record::new()
                    .with("client", client.as_str())
                    .with("sku", sku.as_str())
                    .with("qty", qty as i64),
            )
            .map_err(promises_core::ActionError::from)
        })?;
        Ok(order_id)
    }

    /// Abandons an order, releasing its stock promise.
    pub fn abandon(&self, promise: PromiseId) -> Result<(), PromiseError> {
        self.pm.release(promise)
    }

    /// Number of completed orders.
    pub fn order_count(&self) -> Result<usize, PromiseError> {
        let rm = self.pm.rm();
        let txn = rm.begin();
        let n = rm.scan(&txn, ORDERS_TABLE)?.len();
        rm.commit(txn)?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_core::SystemClock;
    use promises_rm::ResourceManager;

    fn merchant() -> Merchant {
        let rm = Arc::new(ResourceManager::new());
        let pm = Arc::new(PromiseManager::new(rm, Arc::new(SystemClock::new())));
        let m = Merchant::new(pm);
        m.stock_sku("pink-widgets", 20).unwrap();
        m
    }

    #[test]
    fn figure1_full_flow() {
        let m = merchant();
        let p = m
            .reserve_stock("alice", "pink-widgets", 5, 60_000)
            .unwrap()
            .expect("stock available");
        let order = m.purchase(p, "alice", "pink-widgets", 5).unwrap();
        assert!(order.starts_with("o-"));
        assert_eq!(m.on_hand("pink-widgets").unwrap(), 15);
        assert_eq!(m.order_count().unwrap(), 1);
        assert_eq!(m.manager().live_count(), 0);
    }

    #[test]
    fn concurrent_orders_share_stock_without_blocking() {
        let m = merchant();
        let a = m
            .reserve_stock("a", "pink-widgets", 10, 60_000)
            .unwrap()
            .unwrap();
        let b = m
            .reserve_stock("b", "pink-widgets", 10, 60_000)
            .unwrap()
            .unwrap();
        assert!(m
            .reserve_stock("c", "pink-widgets", 1, 60_000)
            .unwrap()
            .is_err());
        m.purchase(a, "a", "pink-widgets", 10).unwrap();
        m.purchase(b, "b", "pink-widgets", 10).unwrap();
        assert_eq!(m.on_hand("pink-widgets").unwrap(), 0);
    }

    #[test]
    fn abandon_frees_stock() {
        let m = merchant();
        let p = m
            .reserve_stock("a", "pink-widgets", 20, 60_000)
            .unwrap()
            .unwrap();
        m.abandon(p).unwrap();
        assert!(m
            .reserve_stock("b", "pink-widgets", 20, 60_000)
            .unwrap()
            .is_ok());
    }

    #[test]
    fn unknown_sku_rejects() {
        let m = merchant();
        let r = m.reserve_stock("a", "no-such-sku", 1, 60_000).unwrap();
        assert!(r.is_err());
    }
}
