//! The travel-planning example of §4: "a client may want a promise that a
//! flight and a rental car and a hotel room will all be available. By
//! treating the evaluation and granting of all the predicates carried in
//! a single promise request as an atomic unit, the client can ensure that
//! they will either get all the resources they need or none of them."

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use promises_core::{
    Catalog, Environment, PoolSchema, Predicate, PromiseDecision, PromiseError, PromiseId,
    PromiseManager, PromiseRequestSpec, PropExpr, PropertyDef, RejectReason,
};
use promises_rm::Record;

/// Pool names used by the agent.
const FLIGHTS: &str = "flight-seats";
const CARS: &str = "rental-cars";
const ROOMS: &str = "travel-rooms";

/// A confirmed, all-or-nothing travel booking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TravelBooking {
    /// The room instance booked.
    pub room: String,
}

/// A travel agent placing atomic flight+car+hotel promise requests.
pub struct TravelAgent {
    pm: Arc<PromiseManager>,
    next_req: AtomicU64,
}

impl TravelAgent {
    /// Creates the agent and its three resource pools: `flight_seats`
    /// anonymous seats, `cars` anonymous rental cars, and `rooms` hotel
    /// room instances (a view each).
    pub fn new(
        pm: Arc<PromiseManager>,
        flight_seats: u64,
        cars: u64,
        rooms: &[(&str, bool)],
    ) -> Result<Self, PromiseError> {
        pm.register_pool(PoolSchema::quantity(FLIGHTS));
        pm.seed_quantity(FLIGHTS, flight_seats)?;
        pm.register_pool(PoolSchema::quantity(CARS));
        pm.seed_quantity(CARS, cars)?;
        pm.register_pool(PoolSchema::instances(
            ROOMS,
            vec![PropertyDef::plain("view")],
        ));
        for (number, view) in rooms {
            pm.seed_instance(ROOMS, *number, Record::new().with("view", *view))?;
        }
        Ok(Self {
            pm,
            next_req: AtomicU64::new(1),
        })
    }

    /// The promise manager this agent uses.
    pub fn manager(&self) -> &Arc<PromiseManager> {
        &self.pm
    }

    /// Atomically promises one flight seat, one car, and one room
    /// (optionally with a view). All three or none (§4).
    pub fn promise_trip(
        &self,
        client: &str,
        want_view: bool,
        duration_ms: u64,
    ) -> Result<Result<PromiseId, RejectReason>, PromiseError> {
        let n = self.next_req.fetch_add(1, Ordering::Relaxed);
        let room_expr = if want_view {
            PropExpr::eq("view", true)
        } else {
            PropExpr::True
        };
        let resp = self.pm.request(
            PromiseRequestSpec::new(
                promises_core::RequestId(format!("trip-{n}")),
                promises_core::ClientId(client.to_owned()),
            )
            .predicate(Predicate::qty_at_least(FLIGHTS, 1))
            .predicate(Predicate::qty_at_least(CARS, 1))
            .predicate(Predicate::property(ROOMS, room_expr, 1))
            .duration_ms(duration_ms),
        )?;
        Ok(match resp.decision {
            PromiseDecision::Granted { promise, .. } => Ok(promise),
            PromiseDecision::Rejected { reason } => Err(reason),
        })
    }

    /// Confirms the whole trip: consumes a seat, a car, and the allocated
    /// room; releases the promise atomically with success.
    pub fn confirm(&self, promise: PromiseId) -> Result<TravelBooking, PromiseError> {
        let rec = self
            .pm
            .promise(promise)
            .ok_or(PromiseError::UnknownPromise(promise))?;
        let room = rec
            .allocated_in(&promises_core::PoolId::from(ROOMS))
            .first()
            .map(|i| i.0.clone())
            .ok_or_else(|| PromiseError::ActionFailed("no room allocation".into()))?;
        let booked = room.clone();
        let room_table = Catalog::instance_table(&promises_core::PoolId::from(ROOMS));
        self.pm
            .execute(&Environment::none().releasing(promise), move |rm, txn| {
                for pool in [FLIGHTS, CARS] {
                    rm.update(txn, Catalog::QTY_TABLE, pool, |r| {
                        let q = r.int("qty").unwrap_or(0);
                        r.set("qty", q - 1);
                    })
                    .map_err(promises_core::ActionError::from)?;
                }
                rm.update(txn, &room_table, &room, |r| {
                    r.set(Catalog::STATUS, promises_core::status::TAKEN);
                })
                .map_err(promises_core::ActionError::from)
            })?;
        Ok(TravelBooking { room: booked })
    }

    /// Abandons the trip.
    pub fn cancel(&self, promise: PromiseId) -> Result<(), PromiseError> {
        self.pm.release(promise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_core::SystemClock;
    use promises_rm::ResourceManager;

    fn agent(flights: u64, cars: u64) -> TravelAgent {
        let pm = Arc::new(PromiseManager::new(
            Arc::new(ResourceManager::new()),
            Arc::new(SystemClock::new()),
        ));
        TravelAgent::new(pm, flights, cars, &[("201", false), ("512", true)]).unwrap()
    }

    #[test]
    fn atomic_trip_grant_and_confirm() {
        let a = agent(2, 2);
        let p = a.promise_trip("alice", true, 60_000).unwrap().unwrap();
        let booking = a.confirm(p).unwrap();
        assert_eq!(booking.room, "512", "the view room");
        assert_eq!(a.manager().live_count(), 0);
    }

    #[test]
    fn missing_car_rejects_whole_trip() {
        let a = agent(5, 0);
        let reason = a.promise_trip("alice", false, 60_000).unwrap().unwrap_err();
        assert!(matches!(reason, RejectReason::InsufficientQuantity { .. }));
        // Nothing was partially held: a carless competitor can't exist, but
        // flights remain fully promisable via a second agent path.
        assert_eq!(a.manager().live_count(), 0);
    }

    #[test]
    fn two_view_trips_cannot_both_hold() {
        let a = agent(5, 5);
        let _p1 = a.promise_trip("alice", true, 60_000).unwrap().unwrap();
        let r = a.promise_trip("bob", true, 60_000).unwrap();
        assert!(r.is_err(), "only one view room exists");
        // A viewless trip still fits.
        let _p2 = a.promise_trip("bob", false, 60_000).unwrap().unwrap();
    }

    #[test]
    fn cancel_releases_everything() {
        let a = agent(1, 1);
        let p = a.promise_trip("alice", false, 60_000).unwrap().unwrap();
        a.cancel(p).unwrap();
        let p2 = a.promise_trip("bob", false, 60_000).unwrap().unwrap();
        a.confirm(p2).unwrap();
    }
}
