//! Airline seating: named and anonymous views coexisting (§3.2).
//!
//! "Each seat on a flight has a unique name (e.g. seat 24G on QF1
//! departing on 8/10/2007). Some client applications may let customers
//! try to book specific seats ... In many cases though, all economy seats
//! will be regarded as equivalent." A seat promised by name must never be
//! double-counted toward a class-based promise — the matching-based
//! checker guarantees this.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use promises_core::{
    status, Catalog, Environment, PoolId, PoolSchema, Predicate, PromiseDecision, PromiseError,
    PromiseId, PromiseManager, PromiseRequestSpec, PropExpr, PropertyDef, RejectReason,
};
use promises_rm::Record;

fn flight_pool(flight: &str) -> String {
    format!("seats:{flight}")
}

/// An airline selling seats on flights.
pub struct Airline {
    pm: Arc<PromiseManager>,
    next_req: AtomicU64,
}

impl Airline {
    /// Creates an airline over a promise manager.
    pub fn new(pm: Arc<PromiseManager>) -> Self {
        Self {
            pm,
            next_req: AtomicU64::new(1),
        }
    }

    /// The promise manager this airline uses.
    pub fn manager(&self) -> &Arc<PromiseManager> {
        &self.pm
    }

    /// Registers a flight with rows of seats: `(seat, class, window)`.
    pub fn add_flight(
        &self,
        flight: &str,
        seats: &[(&str, &str, bool)],
    ) -> Result<(), PromiseError> {
        self.pm.register_pool(PoolSchema::instances(
            flight_pool(flight).as_str(),
            vec![
                PropertyDef::ordered("class", &["economy", "premium", "business", "first"]),
                PropertyDef::plain("window"),
            ],
        ));
        for (seat, class, window) in seats {
            self.pm.seed_instance(
                flight_pool(flight).as_str(),
                *seat,
                Record::new().with("class", *class).with("window", *window),
            )?;
        }
        Ok(())
    }

    /// Promises a specific seat by name.
    pub fn promise_seat(
        &self,
        client: &str,
        flight: &str,
        seat: &str,
        duration_ms: u64,
    ) -> Result<Result<PromiseId, RejectReason>, PromiseError> {
        let n = self.next_req.fetch_add(1, Ordering::Relaxed);
        let resp = self.pm.request(
            PromiseRequestSpec::new(
                promises_core::RequestId(format!("seat-{n}")),
                promises_core::ClientId(client.to_owned()),
            )
            .predicate(Predicate::named(flight_pool(flight).as_str(), seat))
            .duration_ms(duration_ms),
        )?;
        Ok(match resp.decision {
            PromiseDecision::Granted { promise, .. } => Ok(promise),
            PromiseDecision::Rejected { reason } => Err(reason),
        })
    }

    /// Promises `count` seats of `class` *or better* (§3.3's ordered
    /// acceptability: "a customer who holds a promise for an economy
    /// class airline seat will not normally complain if ... upgraded").
    pub fn promise_class(
        &self,
        client: &str,
        flight: &str,
        class: &str,
        count: u32,
        duration_ms: u64,
    ) -> Result<Result<PromiseId, RejectReason>, PromiseError> {
        let n = self.next_req.fetch_add(1, Ordering::Relaxed);
        let resp = self.pm.request(
            PromiseRequestSpec::new(
                promises_core::RequestId(format!("class-{n}")),
                promises_core::ClientId(client.to_owned()),
            )
            .predicate(Predicate::property(
                flight_pool(flight).as_str(),
                PropExpr::at_least("class", class),
                count,
            ))
            .duration_ms(duration_ms),
        )?;
        Ok(match resp.decision {
            PromiseDecision::Granted { promise, .. } => Ok(promise),
            PromiseDecision::Rejected { reason } => Err(reason),
        })
    }

    /// Issues tickets for the seats allocated to a promise, releasing it.
    /// Returns the seat numbers ticketed.
    pub fn ticket(&self, flight: &str, promise: PromiseId) -> Result<Vec<String>, PromiseError> {
        let pool = PoolId::from(flight_pool(flight).as_str());
        let rec = self
            .pm
            .promise(promise)
            .ok_or(PromiseError::UnknownPromise(promise))?;
        let seats: Vec<String> = rec
            .allocated_in(&pool)
            .into_iter()
            .map(|i| i.0.clone())
            .collect();
        if seats.is_empty() {
            return Err(PromiseError::ActionFailed(
                "promise holds no seat allocations".into(),
            ));
        }
        let table = Catalog::instance_table(&pool);
        let to_take = seats.clone();
        self.pm
            .execute(&Environment::none().releasing(promise), move |rm, txn| {
                for seat in &to_take {
                    rm.update(txn, &table, seat, |r| {
                        r.set(Catalog::STATUS, status::TAKEN);
                    })
                    .map_err(promises_core::ActionError::from)?;
                }
                Ok(())
            })?;
        Ok(seats)
    }

    /// Seats still available on a flight.
    pub fn available_seats(&self, flight: &str) -> Result<usize, PromiseError> {
        let rm = self.pm.rm();
        let txn = rm.begin();
        let n = rm
            .scan(
                &txn,
                &Catalog::instance_table(&PoolId::from(flight_pool(flight).as_str())),
            )?
            .into_iter()
            .filter(|(_, r)| r.str(Catalog::STATUS) == Some(status::AVAILABLE))
            .count();
        rm.commit(txn)?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_core::SystemClock;
    use promises_rm::ResourceManager;

    fn airline() -> Airline {
        let rm = Arc::new(ResourceManager::new());
        let pm = Arc::new(PromiseManager::new(rm, Arc::new(SystemClock::new())));
        let a = Airline::new(pm);
        a.add_flight(
            "QF1",
            &[
                ("24G", "economy", false),
                ("24A", "economy", true),
                ("12A", "business", true),
            ],
        )
        .unwrap();
        a
    }

    #[test]
    fn named_seat_excluded_from_class_pool() {
        let a = airline();
        let _named = a
            .promise_seat("alice", "QF1", "24G", 60_000)
            .unwrap()
            .unwrap();
        // Only 24A remains in economy.
        let _class = a
            .promise_class("bob", "QF1", "economy", 1, 60_000)
            .unwrap()
            .unwrap();
        assert!(
            a.promise_class("carol", "QF1", "economy", 1, 60_000)
                .unwrap()
                .is_ok(),
            "carol can still be upgraded to business (economy-or-better)"
        );
        // A fourth economy-or-better request must fail: 3 seats, 3 promises.
        assert!(a
            .promise_class("dave", "QF1", "economy", 1, 60_000)
            .unwrap()
            .is_err());
    }

    #[test]
    fn upgrade_fulfils_economy_promise() {
        let a = airline();
        // Take both economy seats by name; an economy-or-better promise
        // must still be satisfiable via the business seat.
        a.promise_seat("x", "QF1", "24G", 60_000).unwrap().unwrap();
        a.promise_seat("y", "QF1", "24A", 60_000).unwrap().unwrap();
        let p = a
            .promise_class("z", "QF1", "economy", 1, 60_000)
            .unwrap()
            .unwrap();
        let seats = a.ticket("QF1", p).unwrap();
        assert_eq!(seats, vec!["12A".to_owned()], "upgraded to business");
    }

    #[test]
    fn business_promise_not_satisfied_by_economy() {
        let a = airline();
        let _b = a
            .promise_class("x", "QF1", "business", 1, 60_000)
            .unwrap()
            .unwrap();
        assert!(a
            .promise_class("y", "QF1", "business", 1, 60_000)
            .unwrap()
            .is_err());
    }

    #[test]
    fn ticketing_multiple_seats() {
        let a = airline();
        let p = a
            .promise_class("group", "QF1", "economy", 3, 60_000)
            .unwrap()
            .unwrap();
        let seats = a.ticket("QF1", p).unwrap();
        assert_eq!(seats.len(), 3);
        assert_eq!(a.available_seats("QF1").unwrap(), 0);
    }
}
