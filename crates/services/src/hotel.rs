//! Hotel booking over property-view promises (§3.3).
//!
//! Rooms expose floor / view / smoking / beds / class properties; clients
//! promise "a 5th-floor room" or "a non-smoking room with a view and twin
//! beds, ideally deluxe" and book whichever instance the manager's
//! tentative allocation settles on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use promises_core::{
    status, Catalog, Environment, InstanceId, PoolId, PoolSchema, Predicate, PromiseDecision,
    PromiseError, PromiseId, PromiseManager, PromiseRequestSpec, PropExpr, PropertyDef,
    RejectReason,
};
use promises_rm::Record;

/// The room pool id.
pub const ROOM_POOL: &str = "rooms";

/// Declarative room description for seeding.
#[derive(Debug, Clone)]
pub struct RoomSpec {
    /// Room number, e.g. "512".
    pub number: String,
    /// Floor.
    pub floor: i64,
    /// Has a view?
    pub view: bool,
    /// Smoking allowed?
    pub smoking: bool,
    /// Number of beds.
    pub beds: i64,
    /// `standard`, `deluxe`, or `suite`.
    pub class: String,
}

impl RoomSpec {
    /// Convenience constructor.
    pub fn new(
        number: &str,
        floor: i64,
        view: bool,
        smoking: bool,
        beds: i64,
        class: &str,
    ) -> Self {
        Self {
            number: number.to_owned(),
            floor,
            view,
            smoking,
            beds,
            class: class.to_owned(),
        }
    }
}

/// A hotel booking service.
pub struct Hotel {
    pm: Arc<PromiseManager>,
    next_req: AtomicU64,
}

impl Hotel {
    /// Creates the hotel and registers its room pool (tentative
    /// allocation, the §5 technique that matches the paper's room-512
    /// example).
    pub fn new(pm: Arc<PromiseManager>) -> Self {
        pm.register_pool(PoolSchema::instances(
            ROOM_POOL,
            vec![
                PropertyDef::plain("floor"),
                PropertyDef::plain("view"),
                PropertyDef::plain("smoking"),
                PropertyDef::plain("beds"),
                PropertyDef::ordered("class", &["standard", "deluxe", "suite"]),
            ],
        ));
        Self {
            pm,
            next_req: AtomicU64::new(1),
        }
    }

    /// The promise manager this hotel uses.
    pub fn manager(&self) -> &Arc<PromiseManager> {
        &self.pm
    }

    /// Adds a room.
    pub fn add_room(&self, spec: RoomSpec) -> Result<(), PromiseError> {
        self.pm.seed_instance(
            ROOM_POOL,
            spec.number.as_str(),
            Record::new()
                .with("floor", spec.floor)
                .with("view", spec.view)
                .with("smoking", spec.smoking)
                .with("beds", spec.beds)
                .with("class", spec.class.as_str()),
        )
    }

    /// Promises a room matching `requirements` (see
    /// [`promises_core::PropExpr`]) for `duration_ms`.
    pub fn promise_room(
        &self,
        client: &str,
        requirements: PropExpr,
        duration_ms: u64,
    ) -> Result<Result<PromiseId, RejectReason>, PromiseError> {
        let n = self.next_req.fetch_add(1, Ordering::Relaxed);
        let resp = self.pm.request(
            PromiseRequestSpec::new(
                promises_core::RequestId(format!("room-{n}")),
                promises_core::ClientId(client.to_owned()),
            )
            .predicate(Predicate::property(ROOM_POOL, requirements, 1))
            .duration_ms(duration_ms),
        )?;
        Ok(match resp.decision {
            PromiseDecision::Granted { promise, .. } => Ok(promise),
            PromiseDecision::Rejected { reason } => Err(reason),
        })
    }

    /// Promises one specific room by number (named view).
    pub fn promise_specific_room(
        &self,
        client: &str,
        number: &str,
        duration_ms: u64,
    ) -> Result<Result<PromiseId, RejectReason>, PromiseError> {
        let n = self.next_req.fetch_add(1, Ordering::Relaxed);
        let resp = self.pm.request(
            PromiseRequestSpec::new(
                promises_core::RequestId(format!("room-named-{n}")),
                promises_core::ClientId(client.to_owned()),
            )
            .predicate(Predicate::named(ROOM_POOL, number))
            .duration_ms(duration_ms),
        )?;
        Ok(match resp.decision {
            PromiseDecision::Granted { promise, .. } => Ok(promise),
            PromiseDecision::Rejected { reason } => Err(reason),
        })
    }

    /// Books the room currently allocated to the promise, marking it
    /// taken and releasing the promise atomically. Returns the room
    /// number booked — which instance fulfils the promise is decided by
    /// the manager, as the paper requires ("a room matching the
    /// requirements will be available, not that the client has been
    /// assigned room 512").
    pub fn book(&self, promise: PromiseId) -> Result<String, PromiseError> {
        let rec = self
            .pm
            .promise(promise)
            .ok_or(PromiseError::UnknownPromise(promise))?;
        let room = rec
            .allocated_in(&PoolId::from(ROOM_POOL))
            .first()
            .map(|i| i.0.clone())
            .ok_or_else(|| PromiseError::ActionFailed("promise holds no room allocation".into()))?;
        let table = Catalog::instance_table(&PoolId::from(ROOM_POOL));
        let booked = room.clone();
        self.pm
            .execute(&Environment::none().releasing(promise), move |rm, txn| {
                rm.update(txn, &table, &room, |r| {
                    r.set(Catalog::STATUS, status::TAKEN);
                })
                .map_err(promises_core::ActionError::from)
            })?;
        Ok(booked)
    }

    /// Cancels a room promise.
    pub fn cancel(&self, promise: PromiseId) -> Result<(), PromiseError> {
        self.pm.release(promise)
    }

    /// Opens a booking calendar date: §3.2's *virtual resources*, where
    /// "'Room 212, Sydney Hilton, 12/3/2007' names a specific room
    /// instance, and the date is the necessary part of the unique
    /// identifier". Each date gets its own instance pool holding one
    /// virtual instance per room night.
    pub fn open_date(&self, date: &str) {
        self.pm.register_pool(PoolSchema::instances(
            Self::date_pool(date).as_str(),
            vec![
                PropertyDef::plain("floor"),
                PropertyDef::plain("view"),
                PropertyDef::plain("smoking"),
                PropertyDef::plain("beds"),
                PropertyDef::ordered("class", &["standard", "deluxe", "suite"]),
            ],
        ));
    }

    fn date_pool(date: &str) -> String {
        format!("{ROOM_POOL}@{date}")
    }

    /// Adds one room-night: the room's availability on an opened date.
    pub fn add_room_night(&self, date: &str, spec: &RoomSpec) -> Result<(), PromiseError> {
        self.pm.seed_instance(
            Self::date_pool(date).as_str(),
            spec.number.as_str(),
            Record::new()
                .with("floor", spec.floor)
                .with("view", spec.view)
                .with("smoking", spec.smoking)
                .with("beds", spec.beds)
                .with("class", spec.class.as_str()),
        )
    }

    /// Promises a specific room on a specific date — one named virtual
    /// resource. The same room on a different date is a different
    /// resource, so bookings on distinct dates never conflict.
    pub fn promise_room_night(
        &self,
        client: &str,
        number: &str,
        date: &str,
        duration_ms: u64,
    ) -> Result<Result<PromiseId, RejectReason>, PromiseError> {
        let n = self.next_req.fetch_add(1, Ordering::Relaxed);
        let resp = self.pm.request(
            PromiseRequestSpec::new(
                promises_core::RequestId(format!("night-{n}")),
                promises_core::ClientId(client.to_owned()),
            )
            .predicate(Predicate::named(Self::date_pool(date).as_str(), number))
            .duration_ms(duration_ms),
        )?;
        Ok(match resp.decision {
            PromiseDecision::Granted { promise, .. } => Ok(promise),
            PromiseDecision::Rejected { reason } => Err(reason),
        })
    }

    /// Atomically promises the same room for every night of a stay (§4's
    /// all-or-nothing multi-predicate request across several pools).
    pub fn promise_stay(
        &self,
        client: &str,
        number: &str,
        dates: &[&str],
        duration_ms: u64,
    ) -> Result<Result<PromiseId, RejectReason>, PromiseError> {
        let n = self.next_req.fetch_add(1, Ordering::Relaxed);
        let mut spec = PromiseRequestSpec::new(
            promises_core::RequestId(format!("stay-{n}")),
            promises_core::ClientId(client.to_owned()),
        )
        .duration_ms(duration_ms);
        for date in dates {
            spec = spec.predicate(Predicate::named(Self::date_pool(date).as_str(), number));
        }
        let resp = self.pm.request(spec)?;
        Ok(match resp.decision {
            PromiseDecision::Granted { promise, .. } => Ok(promise),
            PromiseDecision::Rejected { reason } => Err(reason),
        })
    }

    /// Confirms a stay: takes every promised room-night, releasing the
    /// promise atomically with success.
    pub fn book_stay(&self, promise: PromiseId) -> Result<usize, PromiseError> {
        let rec = self
            .pm
            .promise(promise)
            .ok_or(PromiseError::UnknownPromise(promise))?;
        let nights: Vec<(String, String)> = rec
            .allocations
            .iter()
            .filter_map(|a| {
                rec.predicates
                    .get(a.pred_idx)
                    .map(|p| (Catalog::instance_table(p.pool()), a.instance.0.clone()))
            })
            .collect();
        if nights.is_empty() {
            return Err(PromiseError::ActionFailed("promise holds no nights".into()));
        }
        let count = nights.len();
        self.pm
            .execute(&Environment::none().releasing(promise), move |rm, txn| {
                for (table, instance) in &nights {
                    rm.update(txn, table, instance, |r| {
                        r.set(Catalog::STATUS, status::TAKEN);
                    })
                    .map_err(promises_core::ActionError::from)?;
                }
                Ok(())
            })?;
        Ok(count)
    }

    /// Rooms currently available (not promised, not taken).
    pub fn available_rooms(&self) -> Result<Vec<String>, PromiseError> {
        let rm = self.pm.rm();
        let txn = rm.begin();
        let rooms = rm
            .scan(&txn, &Catalog::instance_table(&PoolId::from(ROOM_POOL)))?
            .into_iter()
            .filter(|(_, r)| r.str(Catalog::STATUS) == Some(status::AVAILABLE))
            .map(|(k, _)| k)
            .collect();
        rm.commit(txn)?;
        Ok(rooms)
    }
}

/// The room instance a promise is currently (tentatively) assigned.
pub fn allocated_room(pm: &PromiseManager, promise: PromiseId) -> Option<InstanceId> {
    pm.promise(promise)?
        .allocated_in(&PoolId::from(ROOM_POOL))
        .first()
        .map(|i| (*i).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_core::SystemClock;
    use promises_rm::ResourceManager;

    fn hotel() -> Hotel {
        let rm = Arc::new(ResourceManager::new());
        let pm = Arc::new(PromiseManager::new(rm, Arc::new(SystemClock::new())));
        let h = Hotel::new(pm);
        h.add_room(RoomSpec::new("101", 1, false, false, 1, "standard"))
            .unwrap();
        h.add_room(RoomSpec::new("512", 5, true, false, 2, "standard"))
            .unwrap();
        h.add_room(RoomSpec::new("610", 6, true, false, 2, "deluxe"))
            .unwrap();
        h
    }

    #[test]
    fn paper_room_512_rearrangement() {
        let h = hotel();
        let view = h
            .promise_room("alice", PropExpr::eq("view", true), 60_000)
            .unwrap()
            .unwrap();
        let fifth = h
            .promise_room("bob", PropExpr::eq("floor", 5i64), 60_000)
            .unwrap()
            .unwrap();
        // Bob must end with 512 (only 5th-floor room); Alice with 610.
        let alice_room = h.book(view).unwrap();
        let bob_room = h.book(fifth).unwrap();
        assert_eq!(bob_room, "512");
        assert_eq!(alice_room, "610");
    }

    #[test]
    fn booking_marks_taken_and_releases() {
        let h = hotel();
        let p = h
            .promise_specific_room("alice", "101", 60_000)
            .unwrap()
            .unwrap();
        let room = h.book(p).unwrap();
        assert_eq!(room, "101");
        assert!(!h.available_rooms().unwrap().contains(&"101".to_owned()));
        assert_eq!(h.manager().live_count(), 0);
    }

    #[test]
    fn negotiation_style_requirements() {
        let h = hotel();
        let p = h
            .promise_room(
                "alice",
                PropExpr::all([
                    PropExpr::eq("smoking", false),
                    PropExpr::eq("beds", 2i64),
                    PropExpr::at_least("class", "deluxe"),
                ]),
                60_000,
            )
            .unwrap()
            .unwrap();
        assert_eq!(h.book(p).unwrap(), "610");
    }

    #[test]
    fn cancel_returns_room_to_pool() {
        let h = hotel();
        let p = h
            .promise_specific_room("a", "512", 60_000)
            .unwrap()
            .unwrap();
        assert!(!h.available_rooms().unwrap().contains(&"512".to_owned()));
        h.cancel(p).unwrap();
        assert!(h.available_rooms().unwrap().contains(&"512".to_owned()));
    }

    #[test]
    fn sold_out_rejects() {
        let h = hotel();
        for _ in 0..3 {
            h.promise_room("x", PropExpr::True, 60_000)
                .unwrap()
                .unwrap();
        }
        assert!(h
            .promise_room("y", PropExpr::True, 60_000)
            .unwrap()
            .is_err());
    }
}

#[cfg(test)]
mod calendar_tests {
    use super::*;
    use promises_core::SystemClock;
    use promises_rm::ResourceManager;

    fn calendar_hotel() -> Hotel {
        let rm = Arc::new(ResourceManager::new());
        let pm = Arc::new(PromiseManager::new(rm, Arc::new(SystemClock::new())));
        let h = Hotel::new(pm);
        let room212 = RoomSpec::new("212", 2, false, false, 2, "standard");
        let room512 = RoomSpec::new("512", 5, true, false, 2, "deluxe");
        for date in ["2007-03-12", "2007-03-13", "2007-03-14"] {
            h.open_date(date);
            h.add_room_night(date, &room212).unwrap();
            h.add_room_night(date, &room512).unwrap();
        }
        h
    }

    #[test]
    fn same_room_different_dates_do_not_conflict() {
        // §3.2: the date is part of the identifier, so these are distinct
        // virtual resources.
        let h = calendar_hotel();
        let a = h
            .promise_room_night("alice", "212", "2007-03-12", 60_000)
            .unwrap()
            .unwrap();
        let _b = h
            .promise_room_night("bob", "212", "2007-03-13", 60_000)
            .unwrap()
            .unwrap();
        // But the same room-night conflicts.
        assert!(h
            .promise_room_night("carol", "212", "2007-03-12", 60_000)
            .unwrap()
            .is_err());
        h.cancel(a).unwrap();
        assert!(h
            .promise_room_night("carol", "212", "2007-03-12", 60_000)
            .unwrap()
            .is_ok());
    }

    #[test]
    fn multi_night_stay_is_all_or_nothing() {
        let h = calendar_hotel();
        // Block the middle night for room 212.
        let _mid = h
            .promise_room_night("x", "212", "2007-03-13", 60_000)
            .unwrap()
            .unwrap();
        // A three-night stay in 212 must be rejected wholesale...
        assert!(h
            .promise_stay(
                "alice",
                "212",
                &["2007-03-12", "2007-03-13", "2007-03-14"],
                60_000
            )
            .unwrap()
            .is_err());
        // ...leaving all of room 512's nights available for the same stay.
        let stay = h
            .promise_stay(
                "alice",
                "512",
                &["2007-03-12", "2007-03-13", "2007-03-14"],
                60_000,
            )
            .unwrap()
            .unwrap();
        assert_eq!(h.book_stay(stay).unwrap(), 3);
        assert_eq!(h.manager().live_count(), 1, "only x's night remains");
    }

    #[test]
    fn booked_stay_consumes_every_night() {
        let h = calendar_hotel();
        let stay = h
            .promise_stay("alice", "212", &["2007-03-12", "2007-03-13"], 60_000)
            .unwrap()
            .unwrap();
        h.book_stay(stay).unwrap();
        for date in ["2007-03-12", "2007-03-13"] {
            assert!(h
                .promise_room_night("bob", "212", date, 60_000)
                .unwrap()
                .is_err());
        }
        // The unbooked third night is still free.
        assert!(h
            .promise_room_night("bob", "212", "2007-03-14", 60_000)
            .unwrap()
            .is_ok());
    }
}
