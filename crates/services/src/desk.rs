//! A booking desk: the §5 delegation chain as a front-office service.
//!
//! Where [`crate::TravelAgent`] drives one promise manager that owns every
//! pool, the booking desk models the production topology: an *edge*
//! service with only a small local voucher pool of its own, which
//! delegates every real resource (flight seats, rental cars, …) to the
//! upstream managers that actually own them — in a sharded deployment,
//! the per-shard promise managers. A booking is one atomic multi-predicate
//! request (§4): the desk's manager acquires a backing promise from every
//! upstream first and compensates them all if any leg fails, so the
//! customer sees all-or-nothing even though no upstream knows about the
//! others.
//!
//! When an upstream shard fails over to a promoted warm follower, the
//! desk re-points its delegation with [`BookingDesk::rebind`]
//! ([`PromiseManager::rebind_upstream`]): backing promise ids survive
//! journal replay unchanged, so live chains keep cascading releases to
//! the promoted node.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use promises_core::{
    ClientId, PoolId, PoolSchema, Predicate, PromiseDecision, PromiseError, PromiseId,
    PromiseManager, PromiseRequestSpec, RejectReason, RequestId,
};

/// The desk's own local pool: one voucher is consumed per booking, so
/// even a fully-delegated booking has a local footprint (and a local
/// journal record) at the edge.
pub const VOUCHER_POOL: &str = "desk-vouchers";

/// An edge booking service whose real resources live upstream.
pub struct BookingDesk {
    pm: Arc<PromiseManager>,
    next_req: AtomicU64,
}

impl BookingDesk {
    /// Creates a desk with `vouchers` units of local booking capacity on
    /// the given (usually edge-local) promise manager.
    pub fn new(pm: Arc<PromiseManager>, vouchers: u64) -> Result<Self, PromiseError> {
        pm.register_pool(PoolSchema::quantity(VOUCHER_POOL));
        pm.seed_quantity(VOUCHER_POOL, vouchers)?;
        Ok(Self {
            pm,
            next_req: AtomicU64::new(1),
        })
    }

    /// Routes bookings touching `pool` to the upstream manager that owns
    /// it (§5 delegation).
    pub fn delegate(&self, pool: impl Into<PoolId>, upstream: Arc<PromiseManager>) {
        self.pm.delegate_pool(pool, upstream);
    }

    /// Re-points an existing delegation after the upstream failed over to
    /// a promoted replacement manager, keeping live chains intact.
    pub fn rebind(&self, pool: impl Into<PoolId>, upstream: Arc<PromiseManager>) {
        self.pm.rebind_upstream(pool, upstream);
    }

    /// The desk's promise manager.
    pub fn manager(&self) -> &Arc<PromiseManager> {
        &self.pm
    }

    /// Books the given `(pool, units)` legs plus one local voucher as a
    /// single atomic promise under an explicit request id — retries with
    /// the same id are deduplicated end to end (desk and upstreams alike),
    /// so a nervous client can resend without double-booking.
    pub fn book(
        &self,
        client: &str,
        request: &str,
        legs: &[(String, u64)],
        duration_ms: u64,
    ) -> Result<Result<PromiseId, RejectReason>, PromiseError> {
        let mut spec =
            PromiseRequestSpec::new(RequestId(request.to_owned()), ClientId(client.to_owned()))
                .predicate(Predicate::qty_at_least(VOUCHER_POOL, 1))
                .duration_ms(duration_ms);
        for (pool, units) in legs {
            spec = spec.predicate(Predicate::qty_at_least(pool.as_str(), *units));
        }
        let resp = self.pm.request(spec)?;
        Ok(match resp.decision {
            PromiseDecision::Granted { promise, .. } => Ok(promise),
            PromiseDecision::Rejected { reason } => Err(reason),
        })
    }

    /// [`BookingDesk::book`] with a desk-generated request id, for callers
    /// that do not manage their own retry identity.
    pub fn book_auto(
        &self,
        client: &str,
        legs: &[(String, u64)],
        duration_ms: u64,
    ) -> Result<Result<PromiseId, RejectReason>, PromiseError> {
        let n = self.next_req.fetch_add(1, Ordering::Relaxed);
        self.book(client, &format!("desk-{n}"), legs, duration_ms)
    }

    /// Cancels a booking: releasing the desk promise cascades the release
    /// to every upstream backing promise.
    pub fn cancel(&self, booking: PromiseId) -> Result<(), PromiseError> {
        self.pm.release(booking)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_core::SystemClock;
    use promises_rm::ResourceManager;

    fn pm() -> Arc<PromiseManager> {
        Arc::new(PromiseManager::new(
            Arc::new(ResourceManager::new()),
            Arc::new(SystemClock::new()),
        ))
    }

    fn upstream(pool: &str, qty: u64) -> Arc<PromiseManager> {
        let m = pm();
        m.register_pool(PoolSchema::quantity(pool));
        m.seed_quantity(pool, qty).unwrap();
        m
    }

    #[test]
    fn booking_spans_all_upstreams_atomically() {
        let flights = upstream("flights", 1);
        let cars = upstream("cars", 10);
        let desk = BookingDesk::new(pm(), 10).unwrap();
        desk.delegate("flights", Arc::clone(&flights));
        desk.delegate("cars", Arc::clone(&cars));

        let legs = vec![("flights".to_owned(), 1), ("cars".to_owned(), 1)];
        let b1 = desk.book("a", "r1", &legs, 60_000).unwrap().unwrap();
        assert_eq!(flights.live_count(), 1);
        assert_eq!(cars.live_count(), 1);

        // Flight exhausted: the whole booking fails and the car promise
        // acquired first is compensated, not leaked.
        let reason = desk.book("b", "r2", &legs, 60_000).unwrap().unwrap_err();
        assert!(matches!(reason, RejectReason::UpstreamRejected { .. }));
        assert_eq!(cars.live_count(), 1, "failed booking compensated the car");

        desk.cancel(b1).unwrap();
        assert_eq!(flights.live_count(), 0, "cancel cascades upstream");
        assert_eq!(cars.live_count(), 0);
    }

    #[test]
    fn retried_booking_is_deduplicated() {
        let flights = upstream("flights", 5);
        let desk = BookingDesk::new(pm(), 10).unwrap();
        desk.delegate("flights", Arc::clone(&flights));
        let legs = vec![("flights".to_owned(), 1)];
        let b1 = desk.book("a", "r1", &legs, 60_000).unwrap().unwrap();
        let b2 = desk.book("a", "r1", &legs, 60_000).unwrap().unwrap();
        assert_eq!(b1, b2, "same request id converges on one booking");
        assert_eq!(flights.live_count(), 1, "no duplicate backing promise");
    }

    #[test]
    fn rebind_keeps_cancel_cascading_after_upstream_swap() {
        let flights = upstream("flights", 5);
        let desk = BookingDesk::new(pm(), 10).unwrap();
        desk.delegate("flights", Arc::clone(&flights));
        let legs = vec![("flights".to_owned(), 1)];
        let booking = desk.book("a", "r1", &legs, 60_000).unwrap().unwrap();

        // Model a fail-over: a replacement manager recovered to the same
        // state (same backing promise id) takes over the pool.
        let replacement = upstream("flights", 5);
        let backing = replacement
            .request(
                PromiseRequestSpec::new("a::delegated::flights", "a")
                    .predicate(Predicate::qty_at_least("flights", 1))
                    .duration_ms(60_000),
            )
            .unwrap();
        assert!(matches!(backing.decision, PromiseDecision::Granted { .. }));
        desk.rebind("flights", Arc::clone(&replacement));

        desk.cancel(booking).unwrap();
        assert_eq!(
            replacement.live_count(),
            0,
            "cascade reached the replacement"
        );
    }
}
