//! Banking over anonymous balance promises (§3.1).
//!
//! "If a promise is made that a client application will be able to
//! withdraw $500 from an account, the bank is not obliged to set aside
//! five specific $100 bills ... our bank can grant many promises against
//! Alice's account, just as long as the account will not be overdrawn if
//! all of these promises are followed by withdrawal requests."

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use promises_core::{
    Catalog, Environment, PoolSchema, Predicate, PromiseDecision, PromiseError, PromiseId,
    PromiseManager, PromiseRequestSpec, RejectReason,
};

fn account_pool(name: &str) -> String {
    format!("acct:{name}")
}

/// A bank whose account balances are promise-protected quantity pools.
pub struct Bank {
    pm: Arc<PromiseManager>,
    next_req: AtomicU64,
}

impl Bank {
    /// Creates a bank over a promise manager.
    pub fn new(pm: Arc<PromiseManager>) -> Self {
        Self {
            pm,
            next_req: AtomicU64::new(1),
        }
    }

    /// The promise manager this bank uses.
    pub fn manager(&self) -> &Arc<PromiseManager> {
        &self.pm
    }

    /// Opens an account with an initial balance (in cents).
    pub fn open_account(&self, name: &str, balance: u64) -> Result<(), PromiseError> {
        self.pm
            .register_pool(PoolSchema::quantity(account_pool(name).as_str()));
        self.pm.seed_quantity(account_pool(name).as_str(), balance)
    }

    /// Current balance.
    pub fn balance(&self, name: &str) -> Result<u64, PromiseError> {
        let rm = self.pm.rm();
        let txn = rm.begin();
        let v = rm
            .get(&txn, Catalog::QTY_TABLE, &account_pool(name))?
            .and_then(|r| r.int("qty"))
            .map(|v| v.max(0) as u64)
            .unwrap_or(0);
        rm.commit(txn)?;
        Ok(v)
    }

    /// Promises that `amount` will be withdrawable from `account` for
    /// `duration_ms` (the §4 "balance of at least $100" guarantee).
    pub fn promise_funds(
        &self,
        client: &str,
        account: &str,
        amount: u64,
        duration_ms: u64,
    ) -> Result<Result<PromiseId, RejectReason>, PromiseError> {
        let n = self.next_req.fetch_add(1, Ordering::Relaxed);
        let resp = self.pm.request(
            PromiseRequestSpec::new(
                promises_core::RequestId(format!("funds-{n}")),
                promises_core::ClientId(client.to_owned()),
            )
            .predicate(Predicate::qty_at_least(
                account_pool(account).as_str(),
                amount,
            ))
            .duration_ms(duration_ms),
        )?;
        Ok(match resp.decision {
            PromiseDecision::Granted { promise, .. } => Ok(promise),
            PromiseDecision::Rejected { reason } => Err(reason),
        })
    }

    /// Upgrades or weakens an existing funds promise atomically (§4:
    /// "their anticipated later withdrawal has changed to $200 ... or to
    /// $50"). Returns the replacement promise, or the reason the old one
    /// was kept.
    pub fn change_promise(
        &self,
        client: &str,
        account: &str,
        old: PromiseId,
        new_amount: u64,
        duration_ms: u64,
    ) -> Result<Result<PromiseId, RejectReason>, PromiseError> {
        let n = self.next_req.fetch_add(1, Ordering::Relaxed);
        let resp = self.pm.modify(
            &[old],
            PromiseRequestSpec::new(
                promises_core::RequestId(format!("funds-mod-{n}")),
                promises_core::ClientId(client.to_owned()),
            )
            .predicate(Predicate::qty_at_least(
                account_pool(account).as_str(),
                new_amount,
            ))
            .duration_ms(duration_ms),
        )?;
        Ok(match resp.decision {
            PromiseDecision::Granted { promise, .. } => Ok(promise),
            PromiseDecision::Rejected { reason } => Err(reason),
        })
    }

    /// Withdraws under a funds promise, releasing it atomically.
    pub fn withdraw(
        &self,
        promise: PromiseId,
        account: &str,
        amount: u64,
    ) -> Result<(), PromiseError> {
        let pool = account_pool(account);
        self.pm
            .execute(&Environment::none().releasing(promise), move |rm, txn| {
                let bal = rm
                    .get(txn, Catalog::QTY_TABLE, &pool)
                    .map_err(promises_core::ActionError::from)?
                    .and_then(|r| r.int("qty"))
                    .unwrap_or(0);
                if bal < amount as i64 {
                    return Err(format!("overdraft: {bal} < {amount}").into());
                }
                rm.update(txn, Catalog::QTY_TABLE, &pool, |r| {
                    r.set("qty", bal - amount as i64);
                })
                .map_err(promises_core::ActionError::from)
            })
    }

    /// Deposits (an unprotected action; can never violate balance
    /// promises since it only increases headroom).
    pub fn deposit(&self, account: &str, amount: u64) -> Result<(), PromiseError> {
        let pool = account_pool(account);
        self.pm.execute(&Environment::none(), move |rm, txn| {
            rm.update(txn, Catalog::QTY_TABLE, &pool, |r| {
                let bal = r.int("qty").unwrap_or(0);
                r.set("qty", bal + amount as i64);
            })
            .map_err(promises_core::ActionError::from)
        })
    }

    /// Releases a funds promise without withdrawing.
    pub fn release(&self, promise: PromiseId) -> Result<(), PromiseError> {
        self.pm.release(promise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_core::SystemClock;
    use promises_rm::ResourceManager;

    fn bank() -> Bank {
        let rm = Arc::new(ResourceManager::new());
        let pm = Arc::new(PromiseManager::new(rm, Arc::new(SystemClock::new())));
        let b = Bank::new(pm);
        b.open_account("alice", 10_000).unwrap();
        b
    }

    #[test]
    fn promise_then_withdraw() {
        let b = bank();
        let p = b
            .promise_funds("shop", "alice", 5_000, 60_000)
            .unwrap()
            .unwrap();
        b.withdraw(p, "alice", 5_000).unwrap();
        assert_eq!(b.balance("alice").unwrap(), 5_000);
    }

    #[test]
    fn many_promises_bounded_by_balance() {
        // §3.1: many promises as long as the sum cannot overdraw.
        let b = bank();
        let _p1 = b
            .promise_funds("s1", "alice", 4_000, 60_000)
            .unwrap()
            .unwrap();
        let _p2 = b
            .promise_funds("s2", "alice", 4_000, 60_000)
            .unwrap()
            .unwrap();
        assert!(b
            .promise_funds("s3", "alice", 4_000, 60_000)
            .unwrap()
            .is_err());
        let _p3 = b
            .promise_funds("s3", "alice", 2_000, 60_000)
            .unwrap()
            .unwrap();
    }

    #[test]
    fn deposits_never_violate() {
        let b = bank();
        let _p = b
            .promise_funds("s", "alice", 10_000, 60_000)
            .unwrap()
            .unwrap();
        b.deposit("alice", 1).unwrap();
        assert_eq!(b.balance("alice").unwrap(), 10_001);
    }

    #[test]
    fn paper_upgrade_and_weaken_examples() {
        // §4: promise for >=100 changed to >=200 needs only 200 on hand;
        // weakening to >=50 must also be atomic.
        let b = bank();
        let p100 = b.promise_funds("s", "alice", 100, 60_000).unwrap().unwrap();
        // Upgrade: total demand during the exchange is 200, not 300.
        let _other = b
            .promise_funds("t", "alice", 9_800, 60_000)
            .unwrap()
            .unwrap();
        let p200 = b
            .change_promise("s", "alice", p100, 200, 60_000)
            .unwrap()
            .unwrap();
        // Weaken.
        let p50 = b
            .change_promise("s", "alice", p200, 50, 60_000)
            .unwrap()
            .unwrap();
        b.withdraw(p50, "alice", 50).unwrap();
    }

    #[test]
    fn overdraft_protected_by_promise_of_other_client() {
        let b = bank();
        let _hold = b
            .promise_funds("s", "alice", 10_000, 60_000)
            .unwrap()
            .unwrap();
        // An unprotected withdrawal would break the hold: rolled back.
        let p = b.promise_funds("t", "alice", 1, 60_000).unwrap();
        assert!(p.is_err(), "no headroom for further promises");
    }
}
