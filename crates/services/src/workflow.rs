//! An event-driven order workflow: the paper's long-running business
//! process made explicit.
//!
//! The authors' prototype ran on their GAT event-driven workflow engine
//! [5]; this module substitutes a small explicit state machine with the
//! same shape: a multi-step process that obtains its promises up front
//! (stock + shipping), holds them across intermediate steps (payment),
//! and finally performs the consuming action atomically with the promise
//! releases. Every §4 atomicity rule is visible in the transitions:
//!
//! ```text
//! New --reserve--> Reserved --pay--> Paid --ship+purchase--> Completed
//!   \                |                 |
//!    \(rejected)     |(abandon)        |(action fails: promises retained,
//!     v              v                 |  retry possible)
//!   Rejected      Abandoned <----------+--(give up)
//! ```

use std::sync::Arc;

use promises_core::{PromiseError, PromiseId, RejectReason};

use crate::merchant::Merchant;
use crate::shipping::Shipping;

/// Current state of one order workflow instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderState {
    /// Created; nothing promised yet.
    New,
    /// Stock and shipping promised; payment outstanding.
    Reserved {
        /// Stock promise.
        stock: PromiseId,
        /// Next-day-shipping promise.
        shipping: PromiseId,
    },
    /// Payment settled; awaiting fulfilment.
    Paid {
        /// Stock promise (still held).
        stock: PromiseId,
        /// Shipping promise (still held).
        shipping: PromiseId,
    },
    /// Fulfilled: stock consumed, shipment booked, promises released.
    Completed {
        /// The merchant's order id.
        order_id: String,
    },
    /// The initial promise request was rejected — the Figure 1 "terminate
    /// order process saying goods unavailable" branch.
    Rejected(RejectReason),
    /// Abandoned by the customer; promises released.
    Abandoned,
}

/// Events driving the workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderEvent {
    /// Customer placed the order: reserve stock and shipping.
    Place,
    /// Payment arrived.
    PaymentReceived,
    /// Payment failed or customer walked away.
    Cancel,
    /// Fulfil: purchase the stock and ship, releasing all promises.
    Fulfil,
}

/// Errors from illegal transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidTransition {
    /// The state the event arrived in.
    pub state: String,
    /// The offending event.
    pub event: String,
}

impl std::fmt::Display for InvalidTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event {} not valid in state {}", self.event, self.state)
    }
}

impl std::error::Error for InvalidTransition {}

/// Workflow-level errors.
#[derive(Debug)]
pub enum WorkflowError {
    /// Illegal event for the current state.
    Invalid(InvalidTransition),
    /// Underlying promise-layer failure.
    Promise(PromiseError),
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::Invalid(e) => write!(f, "{e}"),
            WorkflowError::Promise(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

impl From<PromiseError> for WorkflowError {
    fn from(e: PromiseError) -> Self {
        WorkflowError::Promise(e)
    }
}

/// One long-running order process over a merchant and a shipping service
/// (both fronted by promise managers; they may share one or use two).
pub struct OrderWorkflow {
    merchant: Arc<Merchant>,
    shipping: Arc<Shipping>,
    client: String,
    sku: String,
    qty: u64,
    duration_ms: u64,
    state: OrderState,
}

impl OrderWorkflow {
    /// Creates a workflow instance in [`OrderState::New`].
    pub fn new(
        merchant: Arc<Merchant>,
        shipping: Arc<Shipping>,
        client: &str,
        sku: &str,
        qty: u64,
        duration_ms: u64,
    ) -> Self {
        Self {
            merchant,
            shipping,
            client: client.to_owned(),
            sku: sku.to_owned(),
            qty,
            duration_ms,
            state: OrderState::New,
        }
    }

    /// Current state.
    pub fn state(&self) -> &OrderState {
        &self.state
    }

    /// Feeds one event into the state machine, performing the associated
    /// promise operations, and returns the new state.
    pub fn handle(&mut self, event: OrderEvent) -> Result<&OrderState, WorkflowError> {
        let invalid = |state: &OrderState, event: &OrderEvent| {
            WorkflowError::Invalid(InvalidTransition {
                state: format!("{state:?}"),
                event: format!("{event:?}"),
            })
        };
        self.state = match (&self.state, &event) {
            (OrderState::New, OrderEvent::Place) => {
                // Obtain BOTH promises; compensate the first if the second
                // is rejected so placement stays all-or-nothing.
                match self.merchant.reserve_stock(
                    &self.client,
                    &self.sku,
                    self.qty,
                    self.duration_ms,
                )? {
                    Err(reason) => OrderState::Rejected(reason),
                    Ok(stock) => {
                        match self
                            .shipping
                            .promise_next_day(&self.client, self.duration_ms)?
                        {
                            Ok(shipping) => OrderState::Reserved { stock, shipping },
                            Err(reason) => {
                                self.merchant.abandon(stock)?;
                                OrderState::Rejected(reason)
                            }
                        }
                    }
                }
            }
            (OrderState::Reserved { stock, shipping }, OrderEvent::PaymentReceived) => {
                // Payment is external to the resource pools; the promises
                // simply persist across this step.
                OrderState::Paid {
                    stock: *stock,
                    shipping: *shipping,
                }
            }
            (
                OrderState::Reserved { stock, shipping } | OrderState::Paid { stock, shipping },
                OrderEvent::Cancel,
            ) => {
                self.merchant.abandon(*stock)?;
                self.shipping.manager().release(*shipping)?;
                OrderState::Abandoned
            }
            (OrderState::Paid { stock, shipping }, OrderEvent::Fulfil) => {
                // Two §4 atomic units: purchase+release(stock) at the
                // merchant, ship+release(shipping) at the shipper. Each is
                // atomic within its own trust domain — exactly the paper's
                // scoping ("the transaction is local to a trust domain").
                let order_id = self
                    .merchant
                    .purchase(*stock, &self.client, &self.sku, self.qty)?;
                self.shipping.ship(*shipping)?;
                OrderState::Completed { order_id }
            }
            (state, event) => return Err(invalid(state, event)),
        };
        Ok(&self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_core::{PromiseManager, SystemClock};
    use promises_rm::ResourceManager;

    fn services(stock: u64, slots: u64) -> (Arc<Merchant>, Arc<Shipping>) {
        let pm = Arc::new(PromiseManager::new(
            Arc::new(ResourceManager::new()),
            Arc::new(SystemClock::new()),
        ));
        let merchant = Arc::new(Merchant::new(Arc::clone(&pm)));
        merchant.stock_sku("widgets", stock).unwrap();
        let shipping = Arc::new(Shipping::new(pm, slots).unwrap());
        (merchant, shipping)
    }

    fn flow(stock: u64, slots: u64) -> OrderWorkflow {
        let (m, s) = services(stock, slots);
        OrderWorkflow::new(m, s, "alice", "widgets", 5, 60_000)
    }

    #[test]
    fn happy_path_to_completion() {
        let mut wf = flow(10, 2);
        assert!(matches!(
            wf.handle(OrderEvent::Place).unwrap(),
            OrderState::Reserved { .. }
        ));
        assert!(matches!(
            wf.handle(OrderEvent::PaymentReceived).unwrap(),
            OrderState::Paid { .. }
        ));
        let done = wf.handle(OrderEvent::Fulfil).unwrap().clone();
        let OrderState::Completed { order_id } = done else {
            panic!("expected completion");
        };
        assert!(order_id.starts_with("o-"));
        assert_eq!(wf.merchant.on_hand("widgets").unwrap(), 5);
        assert_eq!(wf.shipping.capacity().unwrap(), 1);
        assert_eq!(wf.merchant.manager().live_count(), 0);
    }

    #[test]
    fn rejected_when_out_of_stock() {
        let mut wf = flow(3, 2);
        assert!(matches!(
            wf.handle(OrderEvent::Place).unwrap(),
            OrderState::Rejected(RejectReason::InsufficientQuantity { .. })
        ));
    }

    #[test]
    fn shipping_rejection_compensates_stock_promise() {
        let mut wf = flow(10, 0);
        assert!(matches!(
            wf.handle(OrderEvent::Place).unwrap(),
            OrderState::Rejected(_)
        ));
        // The stock promise was compensated away: all 10 promisable again.
        assert!(wf
            .merchant
            .reserve_stock("bob", "widgets", 10, 60_000)
            .unwrap()
            .is_ok());
    }

    #[test]
    fn cancel_releases_everything() {
        let mut wf = flow(5, 1);
        wf.handle(OrderEvent::Place).unwrap();
        wf.handle(OrderEvent::Cancel).unwrap();
        assert_eq!(wf.state(), &OrderState::Abandoned);
        assert_eq!(wf.merchant.manager().live_count(), 0);
        // Capacity untouched.
        assert_eq!(wf.shipping.capacity().unwrap(), 1);
        assert_eq!(wf.merchant.on_hand("widgets").unwrap(), 5);
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        let mut wf = flow(10, 1);
        assert!(matches!(
            wf.handle(OrderEvent::Fulfil),
            Err(WorkflowError::Invalid(_))
        ));
        wf.handle(OrderEvent::Place).unwrap();
        assert!(matches!(
            wf.handle(OrderEvent::Place),
            Err(WorkflowError::Invalid(_))
        ));
        // Fulfil before payment is not allowed.
        assert!(matches!(
            wf.handle(OrderEvent::Fulfil),
            Err(WorkflowError::Invalid(_))
        ));
    }

    #[test]
    fn concurrent_workflows_compete_for_stock_and_slots() {
        let (m, s) = services(10, 1);
        let mut a = OrderWorkflow::new(Arc::clone(&m), Arc::clone(&s), "a", "widgets", 5, 60_000);
        let mut b = OrderWorkflow::new(Arc::clone(&m), Arc::clone(&s), "b", "widgets", 5, 60_000);
        a.handle(OrderEvent::Place).unwrap();
        // b gets stock but not the single shipping slot; its stock promise
        // must be compensated, leaving a's promises intact.
        assert!(matches!(
            b.handle(OrderEvent::Place).unwrap(),
            OrderState::Rejected(_)
        ));
        a.handle(OrderEvent::PaymentReceived).unwrap();
        assert!(matches!(
            a.handle(OrderEvent::Fulfil).unwrap(),
            OrderState::Completed { .. }
        ));
    }
}
