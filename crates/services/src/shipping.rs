//! Next-day shipping promises (§7, second example) with §5 delegation.
//!
//! "The order process asks the promise manager for the shipping component
//! for a promise of next day delivery, with the predicate making no
//! assumptions about how this promise will be implemented ... The
//! merchant may even have a number of shipping alternatives available
//! ... This flexibility is not visible to the order process or the
//! customer."
//!
//! The shipping component's capacity is an opaque quantity pool; when the
//! component itself outsources to a carrier, its promise manager
//! *delegates* the carrier pool upstream — "a purchase order can be
//! accepted by the merchant if it has received a promise from the
//! distributor that a backorder will be fulfilled on time" (§5).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use promises_core::{
    Catalog, Environment, PoolSchema, Predicate, PromiseDecision, PromiseError, PromiseId,
    PromiseManager, PromiseRequestSpec, RejectReason,
};

/// Pool name the shipping service uses for delegated carrier capacity.
pub const CARRIER_POOL: &str = "carrier-capacity";

/// Local shipping capacity pool (per service instance).
pub const SHIPPING_POOL: &str = "shipping-slots";

/// The shipping component.
pub struct Shipping {
    pm: Arc<PromiseManager>,
    next_req: AtomicU64,
    /// Whether next-day promises additionally require delegated carrier
    /// capacity (one unit per shipment).
    uses_carrier: bool,
}

impl Shipping {
    /// Creates a shipping service with `slots` units of its own next-day
    /// capacity.
    pub fn new(pm: Arc<PromiseManager>, slots: u64) -> Result<Self, PromiseError> {
        pm.register_pool(PoolSchema::quantity(SHIPPING_POOL));
        pm.seed_quantity(SHIPPING_POOL, slots)?;
        Ok(Self {
            pm,
            next_req: AtomicU64::new(1),
            uses_carrier: false,
        })
    }

    /// Routes one unit of carrier capacity per shipment to an upstream
    /// carrier's promise manager (delegation). The upstream manager must
    /// have a quantity pool named [`CARRIER_POOL`].
    pub fn with_carrier(mut self, carrier: Arc<PromiseManager>) -> Self {
        self.pm.delegate_pool(CARRIER_POOL, carrier);
        self.uses_carrier = true;
        self
    }

    /// The promise manager this service uses.
    pub fn manager(&self) -> &Arc<PromiseManager> {
        &self.pm
    }

    /// Promises next-day delivery for one shipment.
    pub fn promise_next_day(
        &self,
        client: &str,
        duration_ms: u64,
    ) -> Result<Result<PromiseId, RejectReason>, PromiseError> {
        let n = self.next_req.fetch_add(1, Ordering::Relaxed);
        let mut spec = PromiseRequestSpec::new(
            promises_core::RequestId(format!("ship-{n}")),
            promises_core::ClientId(client.to_owned()),
        )
        .predicate(Predicate::qty_at_least(SHIPPING_POOL, 1))
        .duration_ms(duration_ms);
        if self.uses_carrier {
            spec = spec.predicate(Predicate::qty_at_least(CARRIER_POOL, 1));
        }
        let resp = self.pm.request(spec)?;
        Ok(match resp.decision {
            PromiseDecision::Granted { promise, .. } => Ok(promise),
            PromiseDecision::Rejected { reason } => Err(reason),
        })
    }

    /// Ships under a next-day promise, consuming one capacity slot and
    /// releasing the promise.
    pub fn ship(&self, promise: PromiseId) -> Result<(), PromiseError> {
        self.pm
            .execute(&Environment::none().releasing(promise), |rm, txn| {
                rm.update(txn, Catalog::QTY_TABLE, SHIPPING_POOL, |r| {
                    let q = r.int("qty").unwrap_or(0);
                    r.set("qty", q - 1);
                })
                .map_err(promises_core::ActionError::from)
            })
    }

    /// Remaining local capacity.
    pub fn capacity(&self) -> Result<u64, PromiseError> {
        let rm = self.pm.rm();
        let txn = rm.begin();
        let v = rm
            .get(&txn, Catalog::QTY_TABLE, SHIPPING_POOL)?
            .and_then(|r| r.int("qty"))
            .map(|v| v.max(0) as u64)
            .unwrap_or(0);
        rm.commit(txn)?;
        Ok(v)
    }
}

/// Builds a standalone carrier (upstream delegate) with the given
/// capacity, on its own resource manager and clock.
pub fn standalone_carrier(capacity: u64) -> Arc<PromiseManager> {
    use promises_core::SystemClock;
    use promises_rm::ResourceManager;
    let pm = Arc::new(PromiseManager::new(
        Arc::new(ResourceManager::new()),
        Arc::new(SystemClock::new()),
    ));
    pm.register_pool(PoolSchema::quantity(CARRIER_POOL));
    pm.seed_quantity(CARRIER_POOL, capacity)
        .expect("seeding a fresh carrier cannot fail");
    pm
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_core::SystemClock;
    use promises_rm::ResourceManager;

    fn pm() -> Arc<PromiseManager> {
        Arc::new(PromiseManager::new(
            Arc::new(ResourceManager::new()),
            Arc::new(SystemClock::new()),
        ))
    }

    #[test]
    fn local_capacity_promises() {
        let s = Shipping::new(pm(), 2).unwrap();
        let p1 = s.promise_next_day("a", 60_000).unwrap().unwrap();
        let _p2 = s.promise_next_day("b", 60_000).unwrap().unwrap();
        assert!(s.promise_next_day("c", 60_000).unwrap().is_err());
        s.ship(p1).unwrap();
        assert_eq!(s.capacity().unwrap(), 1);
        // Shipping released one slot's promise but consumed the slot:
        // still no room for a third client.
        assert!(s.promise_next_day("c", 60_000).unwrap().is_err());
    }

    #[test]
    fn delegated_carrier_capacity_bounds_promises() {
        let carrier = standalone_carrier(1);
        let s = Shipping::new(pm(), 10)
            .unwrap()
            .with_carrier(Arc::clone(&carrier));
        let p1 = s.promise_next_day("a", 60_000).unwrap().unwrap();
        assert_eq!(carrier.live_count(), 1);
        // Plenty of local slots, but the carrier is exhausted.
        let reason = s.promise_next_day("b", 60_000).unwrap().unwrap_err();
        assert!(matches!(reason, RejectReason::UpstreamRejected { .. }));
        s.ship(p1).unwrap();
        assert_eq!(carrier.live_count(), 0, "carrier promise released");
        let _p2 = s.promise_next_day("b", 60_000).unwrap().unwrap();
    }

    #[test]
    fn chained_delegation() {
        // merchant-shipping → regional carrier → national carrier.
        let national = standalone_carrier(1);
        let regional = standalone_carrier(100);
        regional.delegate_pool("national-capacity", Arc::clone(&national));
        // The regional's next-day promise needs national capacity too:
        // model by asking regional for both pools via a shipping facade.
        let s = Shipping::new(pm(), 10)
            .unwrap()
            .with_carrier(Arc::clone(&regional));
        let _p = s.promise_next_day("a", 60_000).unwrap().unwrap();
        assert_eq!(regional.live_count(), 1);
    }
}
