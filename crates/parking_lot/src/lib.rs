//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of external dependencies are provided as small in-repo
//! shims with the same API surface the workspace actually uses. This one
//! wraps `std::sync` primitives behind `parking_lot`'s ergonomics:
//!
//! * `lock()` / `read()` / `write()` return guards directly (poisoning is
//!   swallowed — a panicking holder does not poison the primitive);
//! * `Condvar::wait` takes `&mut MutexGuard` instead of consuming it.
//!
//! Only the subset used by this repository is implemented.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion primitive (see [`std::sync::Mutex`]).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take ownership of the
    // inner std guard; it is `Some` at all other times.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Unlike `std`, a
    /// poisoned mutex is recovered rather than panicking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A reader-writer lock (see [`std::sync::RwLock`]).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable paired with [`Mutex`] (see [`std::sync::Condvar`]).
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Atomically releases the guard's mutex and blocks until notified;
    /// the guard is re-acquired before returning (parking_lot-style
    /// in-place wait).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present outside wait");
        guard.inner = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(sync::PoisonError::into_inner),
        );
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            *pair2.0.lock() = true;
            pair2.1.notify_all();
        });
        let mut done = pair.0.lock();
        while !*done {
            pair.1.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }
}
