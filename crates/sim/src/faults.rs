//! Failure workloads: fault sweeps, kill-the-client, and crash–restart.
//!
//! These drive the full wire pipeline — retrying client → faulty bus →
//! gateway → promise manager over a journalled table and a fault-hooked
//! resource manager — under a seeded [`FaultScenario`], and then *audit*
//! the paper's guarantees after the dust settles:
//!
//! * **no violations** — per pool, quantity promised to live promises
//!   never exceeds quantity on hand;
//! * **no double grants** — a retried/duplicated grant request (same
//!   `(client, request-id)`) produces exactly one `Grant` journal record;
//! * **no leaks** — promises held by killed clients are reclaimed by
//!   expiry, so the table drains once their durations pass.
//!
//! Everything is deterministic per seed: the workload mix, the jitter, and
//! the entire fault sequence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use promises_core::{
    Catalog, CompactionCrash, ManualClock, PoolSchema, PromiseError, PromiseJournal,
    PromiseManager, RecoveryReport,
};
use promises_faults::{FaultInjector, FaultScenario, FaultStats};
use promises_rm::ResourceManager;
use promises_telemetry::Telemetry;
use promises_wire::{
    ActionRequest, EnvEntry, EnvRef, Envelope, EnvironmentHeader, InMemoryBus, PromiseGateway,
    PromiseRequestHeader, PromiseResult, RetryPolicy, RetryingClient,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::workload::pool_name;

/// Bus endpoint name of the promise gateway.
pub const PM_ENDPOINT: &str = "pm";

/// Everything a failure workload needs: the faulty bus, the injector, the
/// journalled promise manager, and its manual clock.
pub struct FaultHarness {
    /// The bus carrying every message (faults installed).
    pub bus: Arc<InMemoryBus>,
    /// The shared injector (bus + RM storage hook draw from it).
    pub injector: Arc<FaultInjector>,
    /// The promise manager behind the gateway.
    pub pm: Arc<PromiseManager>,
    /// The manager's clock (manual, so expiry is driven deterministically).
    pub clock: Arc<ManualClock>,
    /// The manager's durable journal.
    pub journal: Arc<PromiseJournal>,
    /// The resource manager (for post-run audits).
    pub rm: Arc<ResourceManager>,
    /// Telemetry registry shared by PM, RM and bus, when the harness was
    /// built instrumented.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl FaultHarness {
    /// Turns all fault injection off (bus and RM hook), so post-run audits
    /// and recovery run on a quiet system.
    pub fn quiesce(&self) {
        self.bus.set_fault_injector(None);
        self.rm.set_storage_fault_hook(None);
    }
}

/// Builds a journalled PM + gateway + faulty bus over `pools` quantity
/// pools of `qty` units each. Seeding happens before the fault hooks are
/// installed, so setup is always clean.
pub fn fault_harness(scenario: FaultScenario, pools: usize, qty: u64) -> FaultHarness {
    fault_harness_with(scenario, pools, qty, None)
}

/// [`fault_harness`] with an optional telemetry registry attached to the
/// resource manager, the promise manager, and the bus — so every span the
/// pipeline records (including injected-fault tags) lands in one ring.
pub fn fault_harness_with(
    scenario: FaultScenario,
    pools: usize,
    qty: u64,
    telemetry: Option<Arc<Telemetry>>,
) -> FaultHarness {
    let rm = Arc::new(ResourceManager::new());
    let clock = Arc::new(ManualClock::new());
    let journal = Arc::new(PromiseJournal::new());
    let pm = Arc::new(
        PromiseManager::new(
            Arc::clone(&rm),
            Arc::clone(&clock) as Arc<dyn promises_core::Clock>,
        )
        .with_journal(Arc::clone(&journal)),
    );
    for i in 0..pools {
        pm.register_pool(PoolSchema::quantity(pool_name(i)));
        pm.seed_quantity(pool_name(i), qty).expect("seed pool");
    }
    let injector = Arc::new(FaultInjector::new(scenario));
    rm.set_storage_fault_hook(Some(injector.rm_hook()));

    let gateway = Arc::new(PromiseGateway::new(Arc::clone(&pm)));
    gateway.register_handler(
        "merchant",
        "purchase",
        Arc::new(|rm, txn, action| {
            let pool = action
                .get("pool")
                .ok_or_else(|| promises_core::ActionError::App("missing pool".into()))?
                .to_owned();
            let qty: i64 = action
                .get("qty")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| promises_core::ActionError::App("missing qty".into()))?;
            rm.update(txn, Catalog::QTY_TABLE, &pool, |r| {
                let q = r.int("qty").unwrap_or(0);
                r.set("qty", q - qty);
            })?;
            Ok(vec![("taken".into(), qty.to_string())])
        }),
    );
    let bus = Arc::new(InMemoryBus::new());
    bus.register(PM_ENDPOINT, gateway);
    bus.set_fault_injector(Some(Arc::clone(&injector)));
    if let Some(tel) = &telemetry {
        rm.set_telemetry(Some(Arc::clone(tel)));
        pm.set_telemetry(Some(Arc::clone(tel)));
        bus.set_telemetry(Some(Arc::clone(tel)));
    }
    FaultHarness {
        bus,
        injector,
        pm,
        clock,
        journal,
        rm,
        telemetry,
    }
}

/// Shape of a fault-sweep workload.
#[derive(Debug, Clone, Copy)]
pub struct FaultSweepConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Grant+purchase operations per client.
    pub ops_per_client: usize,
    /// Quantity pools.
    pub pools: usize,
    /// Units seeded per pool.
    pub qty: u64,
    /// Per-op amount is uniform in `1..=amount_max`.
    pub amount_max: u64,
    /// Probability a client "dies" after its grant (kill-the-client:
    /// never purchases, never releases — expiry must reclaim).
    pub kill_probability: f64,
    /// Master seed for workload mix and client jitter.
    pub seed: u64,
}

impl Default for FaultSweepConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            ops_per_client: 25,
            pools: 2,
            qty: 100_000,
            amount_max: 3,
            kill_probability: 0.1,
            seed: 42,
        }
    }
}

/// Outcome of one fault-sweep run, including the post-run audits.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultRunReport {
    /// Grant requests attempted.
    pub attempts: u64,
    /// Grants confirmed to a client.
    pub granted: u64,
    /// Grants rejected by the manager (insufficient stock, overload, ...).
    pub rejected: u64,
    /// Purchases confirmed applied (client saw `ok`).
    pub purchased_ops: u64,
    /// Promises released standalone (no purchase): the client changed its
    /// mind and returned the reservation over the wire, exercising the
    /// `pm.release` path the action-attached `release_after` flag skips.
    pub released: u64,
    /// Units the clients confirmed purchasing.
    pub confirmed_units: u64,
    /// Retried actions answered "unknown promise": the first delivery had
    /// already applied the action and released the promise, so the retry
    /// confirms completion rather than re-applying.
    pub already_applied: u64,
    /// Operations that failed with "promise-expired".
    pub expired: u64,
    /// Actions that failed for any other reason.
    pub action_failed: u64,
    /// Sends abandoned after the retry budget was exhausted.
    pub gave_up: u64,
    /// Clients killed after their grant (leak test input).
    pub killed: u64,
    /// Units actually removed from the pools (server-side truth).
    pub units_taken: u64,
    /// Pools where promised quantity exceeded on-hand after the run — the
    /// paper's guarantee says this is **always zero**.
    pub violations: u64,
    /// `(client, request)` pairs with more than one `Grant` journal record
    /// — retried grants must dedup, so this is **always zero**.
    pub double_grants: u64,
    /// Grant requests answered from the manager's request-id index.
    pub deduped: u64,
    /// Transport retries performed by the client.
    pub retries: u64,
    /// Faults that actually fired.
    pub faults: FaultStats,
    /// Promises still live after the post-run expiry reap (leak audit —
    /// zero when expiry reclaims everything the killed clients held).
    pub live_after_reap: usize,
    /// Wall-clock duration of the workload phase.
    pub elapsed: Duration,
}

/// Drives `cfg.clients` concurrent grant→purchase clients through the full
/// wire pipeline under `scenario`, then audits violations, double grants
/// and leaks. See the module docs for the guarantees checked.
pub fn run_fault_sweep(scenario: FaultScenario, cfg: &FaultSweepConfig) -> FaultRunReport {
    run_fault_sweep_with(scenario, cfg, None).0
}

/// [`run_fault_sweep`] with an optional telemetry registry threaded
/// through client, bus, PM and RM; returns the quiesced harness so
/// callers can run further audits (journal, spans) after the sweep.
pub fn run_fault_sweep_with(
    scenario: FaultScenario,
    cfg: &FaultSweepConfig,
    telemetry: Option<Arc<Telemetry>>,
) -> (FaultRunReport, FaultHarness) {
    let h = fault_harness_with(scenario, cfg.pools, cfg.qty, telemetry);
    let mut client =
        RetryingClient::new(Arc::clone(&h.bus), RetryPolicy::new(cfg.seed ^ 0xC1_1E57));
    if let Some(tel) = &h.telemetry {
        client = client.with_telemetry(Arc::clone(tel));
    }
    let client = Arc::new(client);

    let granted = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let purchased_ops = AtomicU64::new(0);
    let released = AtomicU64::new(0);
    let confirmed_units = AtomicU64::new(0);
    let already_applied = AtomicU64::new(0);
    let expired = AtomicU64::new(0);
    let action_failed = AtomicU64::new(0);
    let gave_up = AtomicU64::new(0);
    let killed = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..cfg.clients {
            let client = Arc::clone(&client);
            let granted = &granted;
            let rejected = &rejected;
            let purchased_ops = &purchased_ops;
            let released = &released;
            let confirmed_units = &confirmed_units;
            let already_applied = &already_applied;
            let expired = &expired;
            let action_failed = &action_failed;
            let gave_up = &gave_up;
            let killed = &killed;
            let cfg = *cfg;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(c as u64 * 7919));
                for op in 0..cfg.ops_per_client {
                    let pool = pool_name(rng.random_range(0..cfg.pools));
                    let amount = rng.random_range(1..=cfg.amount_max);
                    let kill = rng.random_bool(cfg.kill_probability);
                    let request_id = format!("c{c}-o{op}");
                    let grant = Envelope::new().with_promise_request(PromiseRequestHeader {
                        request_id: request_id.clone(),
                        client: format!("client-{c}"),
                        predicates: vec![format!("qty('{pool}') >= {amount}")],
                        // Killed clients get a short promise so expiry can
                        // reclaim it; live clients a long one.
                        duration_ms: if kill { 10 } else { 3_600_000 },
                        exchange: vec![],
                        negotiate: false,
                        prepare: false,
                    });
                    let reply = match client.send(PM_ENDPOINT, &grant) {
                        Ok(r) => r,
                        Err(_) => {
                            gave_up.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    };
                    let promise_id = match reply.response_for(&request_id) {
                        Some(resp) if matches!(resp.result, PromiseResult::Rejected(_)) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        Some(resp) => match resp.promise_id {
                            Some(id) => {
                                granted.fetch_add(1, Ordering::Relaxed);
                                id
                            }
                            None => {
                                action_failed.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        },
                        None => {
                            gave_up.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    };
                    if kill {
                        // The client dies holding its promise: no release,
                        // no purchase. Expiry is the only way back.
                        killed.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if op % 5 == 4 {
                        // Every fifth op changes its mind: release the
                        // promise standalone instead of purchasing, so the
                        // pm.release histogram sees real wire traffic (the
                        // action path's release_after flag bypasses it).
                        match client.send(PM_ENDPOINT, &Envelope::new().with_release(promise_id)) {
                            Ok(_) => {
                                released.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                gave_up.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        continue;
                    }
                    let action = Envelope::new()
                        .with_environment(EnvironmentHeader {
                            entries: vec![EnvEntry {
                                reference: EnvRef::Id(promise_id),
                                release_after: true,
                            }],
                        })
                        .with_action(
                            ActionRequest::new("merchant", "purchase")
                                .param("pool", &pool)
                                .param("qty", amount),
                        );
                    match client.send(PM_ENDPOINT, &action) {
                        Err(_) => {
                            gave_up.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(reply) => match reply.action_response {
                            Some(resp) if resp.ok => {
                                purchased_ops.fetch_add(1, Ordering::Relaxed);
                                confirmed_units.fetch_add(amount, Ordering::Relaxed);
                            }
                            Some(resp) => {
                                let msg = resp.error.unwrap_or_default();
                                if msg.contains("unknown promise") {
                                    // The action+release already committed
                                    // on a delivery whose reply was lost;
                                    // the released promise id proves it.
                                    already_applied.fetch_add(1, Ordering::Relaxed);
                                    purchased_ops.fetch_add(1, Ordering::Relaxed);
                                    confirmed_units.fetch_add(amount, Ordering::Relaxed);
                                } else if msg.contains("promise-expired") {
                                    expired.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    action_failed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            None => {
                                action_failed.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();

    // ---- Audits run on a quiet system. ----
    h.quiesce();
    let mut report = FaultRunReport {
        attempts: (cfg.clients * cfg.ops_per_client) as u64,
        granted: granted.into_inner(),
        rejected: rejected.into_inner(),
        purchased_ops: purchased_ops.into_inner(),
        released: released.into_inner(),
        confirmed_units: confirmed_units.into_inner(),
        already_applied: already_applied.into_inner(),
        expired: expired.into_inner(),
        action_failed: action_failed.into_inner(),
        gave_up: gave_up.into_inner(),
        killed: killed.into_inner(),
        deduped: h.pm.metrics().grants_deduped,
        retries: client.stats().retries,
        faults: h.injector.stats(),
        elapsed,
        ..FaultRunReport::default()
    };

    // Violation audit: promised quantity must never exceed on-hand.
    let promised = h.pm.promised_quantities();
    for (pool, demanded) in &promised {
        let on_hand = h.pm.quantity_on_hand(pool.clone()).unwrap_or(0);
        if *demanded > on_hand {
            report.violations += 1;
        }
    }
    // Server-side truth of units taken.
    let mut final_total = 0u64;
    for i in 0..cfg.pools {
        final_total += h.pm.quantity_on_hand(pool_name(i)).unwrap_or(0);
    }
    report.units_taken = (cfg.pools as u64 * cfg.qty).saturating_sub(final_total);

    // Double-grant audit straight from the journal: every (client,
    // request) pair must have at most one Grant record.
    let mut grant_counts: std::collections::HashMap<(String, String), u32> =
        std::collections::HashMap::new();
    if let Ok(entries) = h.journal.entries() {
        for entry in entries {
            if let promises_core::JournalOp::Grant(rec) = entry.op {
                *grant_counts
                    .entry((rec.client.0.clone(), rec.request.0.clone()))
                    .or_insert(0) += 1;
            }
        }
    }
    report.double_grants = grant_counts.values().filter(|&&n| n > 1).count() as u64;

    // Leak audit: advance past every duration; expiry must reclaim the
    // killed clients' promises (and any grants whose replies were lost).
    h.clock.advance(4_000_000);
    let _ = h.pm.prune_expired();
    report.live_after_reap = h.pm.live_count();
    (report, h)
}

/// Outcome of a crash–restart run.
#[derive(Debug, Clone)]
pub struct CrashRestartReport {
    /// Digest of the manager state immediately before the crash.
    pub pre_digest: String,
    /// Digest after [`PromiseManager::recover`] on a fresh manager.
    pub post_digest: String,
    /// What recovery did.
    pub recovery: RecoveryReport,
    /// Promises that expired *while the manager was down* and were pruned
    /// during recovery.
    pub pruned_while_down: usize,
}

impl CrashRestartReport {
    /// True if the recovered state is byte-equivalent to the pre-crash
    /// state (after accounting for down-time expiry).
    pub fn state_matches(&self) -> bool {
        self.pre_digest == self.post_digest
    }
}

/// Grants a mixed batch of promises across two pools under fault
/// injection, crashes the manager (drops it, keeping only the journal and
/// the RM), recovers a fresh manager from the journal, and compares state
/// digests. With `down_ms > 0` the clock advances while the manager is
/// down, so promises with short durations expire in the gap and must be
/// pruned — not resurrected — by recovery.
pub fn run_crash_restart(seed: u64, grants: usize, down_ms: u64) -> CrashRestartReport {
    let h = fault_harness(FaultScenario::quiet(seed), 2, 10_000);
    let client = RetryingClient::new(Arc::clone(&h.bus), RetryPolicy::new(seed));
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..grants {
        let pool = pool_name(rng.random_range(0..2usize));
        let amount = rng.random_range(1..=4u64);
        // A third of the grants are short-lived so down-time can expire
        // them; the rest outlive any plausible down-time.
        let duration_ms = if i % 3 == 0 { 50 } else { 10_000_000 };
        let envelope = Envelope::new().with_promise_request(PromiseRequestHeader {
            request_id: format!("r{i}"),
            client: "crash-client".into(),
            predicates: vec![format!("qty('{pool}') >= {amount}")],
            duration_ms,
            exchange: vec![],
            negotiate: false,
            prepare: false,
        });
        let _ = client.send(PM_ENDPOINT, &envelope);
    }

    // "Crash": the manager's in-memory table dies with it. Only the
    // journal and the resource manager survive.
    let journal = Arc::clone(&h.journal);
    let rm = Arc::clone(&h.rm);
    let clock = Arc::clone(&h.clock);
    let pre_digest_at_crash = h.pm.state_digest();
    drop(h);

    clock.advance(down_ms);

    let pm2 = Arc::new(PromiseManager::new(
        Arc::clone(&rm),
        Arc::clone(&clock) as Arc<dyn promises_core::Clock>,
    ));
    pm2.register_pool(PoolSchema::quantity(pool_name(0)));
    pm2.register_pool(PoolSchema::quantity(pool_name(1)));
    let recovery = pm2
        .recover(Arc::clone(&journal))
        .expect("recovery succeeds");
    let post_digest = pm2.state_digest();

    // When nothing expired in the gap the recovered digest must equal the
    // pre-crash digest byte for byte. When down-time expired promises the
    // reference is a *second* recovery over the extended journal (now
    // carrying the new-generation Expire records): replay is idempotent,
    // so a clean re-recovery is the ground truth the first must match.
    let pre_digest = if recovery.pruned == 0 {
        pre_digest_at_crash
    } else {
        let pm3 = PromiseManager::new(
            Arc::clone(&rm),
            Arc::clone(&clock) as Arc<dyn promises_core::Clock>,
        );
        pm3.register_pool(PoolSchema::quantity(pool_name(0)));
        pm3.register_pool(PoolSchema::quantity(pool_name(1)));
        pm3.recover(journal).expect("re-recovery succeeds");
        pm3.state_digest()
    };

    CrashRestartReport {
        pre_digest,
        post_digest,
        recovery,
        pruned_while_down: recovery.pruned,
    }
}

/// Outcome of a compaction crash–restart run.
#[derive(Debug, Clone)]
pub struct CompactionCrashReport {
    /// Digest of recovery over the *uncompacted* journal — the ground
    /// truth any post-compaction recovery must reproduce byte for byte.
    pub reference_digest: String,
    /// Digest of recovery over whatever the (possibly interrupted)
    /// compaction left behind.
    pub recovered_digest: String,
    /// Journal records before compaction ran.
    pub journal_len_before: usize,
    /// Journal records the recovery actually replayed.
    pub journal_len_after: usize,
    /// True when an armed [`CompactionCrash`] fired mid-compaction.
    pub interrupted: bool,
    /// Live promises after recovery.
    pub live: usize,
}

impl CompactionCrashReport {
    /// True when recovery after (interrupted) compaction is
    /// byte-equivalent to recovery over the full uncompacted history.
    pub fn state_matches(&self) -> bool {
        self.reference_digest == self.recovered_digest
    }
}

/// Builds real grant/release history through the wire pipeline, snapshots
/// the uncompacted journal as ground truth, then compacts — optionally
/// dying at an armed [`CompactionCrash`] point — crashes the manager, and
/// recovers a fresh one from whatever the journal holds. Whether the
/// crash fired before the swap (old journal intact) or after it (the
/// checkpoint is durable), the recovered digest must equal the
/// uncompacted reference.
pub fn run_compaction_crash_restart(
    seed: u64,
    grants: usize,
    crash: Option<CompactionCrash>,
) -> CompactionCrashReport {
    let h = fault_harness(FaultScenario::quiet(seed), 2, 10_000);
    let client = RetryingClient::new(Arc::clone(&h.bus), RetryPolicy::new(seed));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut held = Vec::new();
    for i in 0..grants {
        let pool = pool_name(rng.random_range(0..2usize));
        let amount = rng.random_range(1..=4u64);
        let request_id = format!("r{i}");
        let envelope = Envelope::new().with_promise_request(PromiseRequestHeader {
            request_id: request_id.clone(),
            client: "compact-client".into(),
            predicates: vec![format!("qty('{pool}') >= {amount}")],
            duration_ms: 10_000_000,
            exchange: vec![],
            negotiate: false,
            prepare: false,
        });
        if let Ok(reply) = client.send(PM_ENDPOINT, &envelope) {
            if let Some(id) = reply.response_for(&request_id).and_then(|r| r.promise_id) {
                held.push(id);
            }
        }
    }
    // Release roughly half the holds so the journal carries dead history
    // beyond the live set — the records compaction exists to drop.
    for id in held.iter().step_by(2) {
        let _ = client.send(PM_ENDPOINT, &Envelope::new().with_release(*id));
    }
    let journal_len_before = h.journal.len();

    // Ground truth: a recovery over the full uncompacted history.
    let reference_journal =
        Arc::new(PromiseJournal::from_lines(&h.journal.lines()).expect("journal parses"));
    let reference_pm = PromiseManager::new(
        Arc::clone(&h.rm),
        Arc::clone(&h.clock) as Arc<dyn promises_core::Clock>,
    );
    reference_pm.register_pool(PoolSchema::quantity(pool_name(0)));
    reference_pm.register_pool(PoolSchema::quantity(pool_name(1)));
    reference_pm
        .recover(reference_journal)
        .expect("reference recovery succeeds");
    let reference_digest = reference_pm.state_digest();

    if let Some(point) = crash {
        h.pm.arm_compaction_crash(point);
    }
    let interrupted = match h.pm.compact() {
        Ok(_) => false,
        Err(PromiseError::CompactionInterrupted) => true,
        Err(e) => panic!("unexpected compaction failure: {e}"),
    };
    assert_eq!(interrupted, crash.is_some(), "armed crashes must fire");

    // The real crash: only the journal, the RM, and the clock survive.
    let journal = Arc::clone(&h.journal);
    let rm = Arc::clone(&h.rm);
    let clock = Arc::clone(&h.clock);
    drop(h);

    let pm2 = PromiseManager::new(
        Arc::clone(&rm),
        Arc::clone(&clock) as Arc<dyn promises_core::Clock>,
    );
    pm2.register_pool(PoolSchema::quantity(pool_name(0)));
    pm2.register_pool(PoolSchema::quantity(pool_name(1)));
    pm2.recover(Arc::clone(&journal))
        .expect("post-compaction recovery succeeds");
    CompactionCrashReport {
        reference_digest,
        recovered_digest: pm2.state_digest(),
        journal_len_before,
        journal_len_after: journal.len(),
        interrupted,
        live: pm2.live_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_sweep_is_clean() {
        let cfg = FaultSweepConfig {
            clients: 3,
            ops_per_client: 15,
            ..FaultSweepConfig::default()
        };
        let report = run_fault_sweep(FaultScenario::quiet(1), &cfg);
        assert_eq!(report.violations, 0);
        assert_eq!(report.double_grants, 0);
        assert_eq!(report.gave_up, 0);
        assert_eq!(
            report.live_after_reap, 0,
            "expiry reclaims kill-client promises"
        );
        assert!(report.purchased_ops > 0);
        assert_eq!(report.units_taken, report.confirmed_units);
    }

    #[test]
    fn faulty_sweep_holds_invariants() {
        let cfg = FaultSweepConfig {
            clients: 4,
            ops_per_client: 20,
            ..FaultSweepConfig::default()
        };
        let report = run_fault_sweep(
            FaultScenario::uniform(7, 0.15).with_storage_errors(0.05),
            &cfg,
        );
        assert_eq!(report.violations, 0, "promises must never be violated");
        assert_eq!(report.double_grants, 0, "retried grants must dedup");
        assert_eq!(report.live_after_reap, 0, "expiry reclaims everything");
        assert!(report.purchased_ops > 0, "goodput survives faults");
        assert!(
            report.units_taken >= report.confirmed_units,
            "server cannot have taken less than clients confirmed"
        );
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let cfg = FaultSweepConfig {
            clients: 1,
            ops_per_client: 30,
            ..FaultSweepConfig::default()
        };
        let scenario = FaultScenario::uniform(11, 0.2);
        let a = run_fault_sweep(scenario.clone(), &cfg);
        let b = run_fault_sweep(scenario, &cfg);
        // Single-threaded: the whole run is a pure function of the seeds.
        assert_eq!(a.granted, b.granted);
        assert_eq!(a.purchased_ops, b.purchased_ops);
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn crash_restart_preserves_state() {
        let report = run_crash_restart(5, 12, 0);
        assert_eq!(report.pruned_while_down, 0);
        assert!(report.recovery.recovered > 0);
        assert!(
            report.state_matches(),
            "pre:\n{}\npost:\n{}",
            report.pre_digest,
            report.post_digest
        );
    }

    #[test]
    fn crash_restart_prunes_downtime_expiry() {
        let report = run_crash_restart(9, 12, 3_700_000);
        assert!(
            report.pruned_while_down > 0,
            "short grants expired in the gap"
        );
        assert!(report.state_matches());
    }

    #[test]
    fn compaction_then_crash_recovers_identical_state() {
        let report = run_compaction_crash_restart(13, 16, None);
        assert!(!report.interrupted);
        assert!(
            report.journal_len_after < report.journal_len_before,
            "compaction must shrink the journal: {} -> {}",
            report.journal_len_before,
            report.journal_len_after
        );
        assert!(
            report.state_matches(),
            "ref:\n{}\ngot:\n{}",
            report.reference_digest,
            report.recovered_digest
        );
        assert!(report.live > 0, "live holds survive compaction");
    }

    #[test]
    fn crash_before_swap_leaves_old_journal_recoverable() {
        let report = run_compaction_crash_restart(17, 16, Some(CompactionCrash::BeforeSwap));
        assert!(report.interrupted);
        assert_eq!(
            report.journal_len_after, report.journal_len_before,
            "the swap never happened: old journal intact"
        );
        assert!(report.state_matches());
    }

    #[test]
    fn crash_after_swap_recovers_from_the_checkpoint() {
        let report = run_compaction_crash_restart(19, 16, Some(CompactionCrash::AfterSwap));
        assert!(report.interrupted);
        assert!(
            report.journal_len_after < report.journal_len_before,
            "the swap was durable before the crash"
        );
        assert!(report.state_matches());
    }
}
