//! `promises-sim` — deterministic concurrent workload harness for the
//! Promises evaluation.
//!
//! The CIDR'07 paper is a position paper with no measured evaluation;
//! this crate supplies the workload machinery that turns its qualitative
//! claims into measurable experiments (DESIGN.md E2–E9):
//!
//! * [`WorkloadConfig`] — reproducible client mixes: pool count, hotspot
//!   skew, think time, abandonment rate, single- or multi-pool
//!   operations, all derived from a seed;
//! * [`run_qty_workload`] — drives any [`promises_baselines::QtyReserver`]
//!   (lock-based, optimistic, escrow, or the promise-manager adapter)
//!   with N concurrent clients and reports throughput and failure
//!   taxonomy;
//! * [`PromiseQtyReserver`] — the adapter exposing a
//!   [`promises_core::PromiseManager`] through the same reserve/consume
//!   interface the baselines implement.

#![warn(missing_docs)]

mod adapter;
mod cluster;
mod doctor;
mod driver;
mod faults;
mod instances;
mod metrics;
mod obs;
mod workload;

pub use adapter::{promise_reserver, promise_reserver_with_mode, PromiseQtyReserver};
pub use cluster::{
    cluster_harness, run_cluster_crash_restart, run_cluster_fault_sweep, run_failover_sweep,
    run_lease_sweep, ClusterCrashReport, ClusterRunReport, ClusterSweepConfig, FailoverDigests,
    FailoverSweepReport, LeaseSweepReport, RestartTarget,
};
pub use doctor::{
    run_doctor_failover_sweep, run_doctor_fault_sweep, run_doctor_lease_sweep, DoctorReport,
};
pub use driver::{run_qty_workload, seed_pools};
pub use faults::{
    fault_harness, fault_harness_with, run_compaction_crash_restart, run_crash_restart,
    run_fault_sweep, run_fault_sweep_with, CompactionCrashReport, CrashRestartReport, FaultHarness,
    FaultRunReport, FaultSweepConfig, PM_ENDPOINT,
};
pub use instances::{
    instance_name, promise_instance_reserver, run_instance_workload, seed_instances,
    PromiseInstanceReserver, INSTANCE_POOL,
};
pub use metrics::RunReport;
pub use obs::{journal_facts, run_obs_sweep, ObsReport};
pub use workload::{pool_name, sample_zipf, zipf_cdf, WorkloadConfig};
