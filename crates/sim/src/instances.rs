//! Named-instance workloads: concurrent clients reserving and taking
//! specific instances (the §3.2 named view), driven over any
//! [`InstanceReserver`] — the soft-lock baseline or the promise manager.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use promises_baselines::{InstanceReserver, ReserveFailure};
use promises_core::{
    status, Catalog, Environment, PoolSchema, Predicate, PromiseDecision, PromiseError, PromiseId,
    PromiseManager, PromiseRequestSpec, SystemClock,
};
use promises_rm::{Record, ResourceManager, RmError};

use crate::metrics::{Counters, RunReport};
use crate::workload::WorkloadConfig;

/// Name of the instance pool used by instance workloads.
pub const INSTANCE_POOL: &str = "instances";

/// Name of the i-th instance.
pub fn instance_name(i: usize) -> String {
    format!("inst-{i:05}")
}

/// Promise-manager-backed named-instance reservations.
pub struct PromiseInstanceReserver {
    pm: Arc<PromiseManager>,
    next_req: std::sync::atomic::AtomicU64,
    /// Promise duration per reservation.
    pub duration_ms: u64,
}

/// One named-instance promise.
#[derive(Debug)]
pub struct PromiseInstanceToken {
    promise: PromiseId,
    pool: String,
    instance: String,
}

impl PromiseInstanceReserver {
    /// Wraps an existing manager (the pool must be registered).
    pub fn new(pm: Arc<PromiseManager>) -> Self {
        Self {
            pm,
            next_req: std::sync::atomic::AtomicU64::new(1),
            duration_ms: 60_000,
        }
    }

    /// The underlying manager.
    pub fn manager(&self) -> &Arc<PromiseManager> {
        &self.pm
    }
}

impl InstanceReserver for PromiseInstanceReserver {
    type Token = PromiseInstanceToken;

    fn reserve_instance(&self, pool: &str, instance: &str) -> Result<Self::Token, ReserveFailure> {
        let n = self.next_req.fetch_add(1, Ordering::Relaxed);
        let resp = self
            .pm
            .request(
                PromiseRequestSpec::new(
                    promises_core::RequestId(format!("inst-{n}")),
                    promises_core::ClientId("sim".into()),
                )
                .predicate(Predicate::named(pool, instance))
                .duration_ms(self.duration_ms),
            )
            .map_err(|e| match e {
                PromiseError::Rm(RmError::Deadlock { .. }) => ReserveFailure::Deadlock,
                PromiseError::Rm(other) => ReserveFailure::Rm(other),
                _ => ReserveFailure::LateConflict,
            })?;
        match resp.decision {
            PromiseDecision::Granted { promise, .. } => Ok(PromiseInstanceToken {
                promise,
                pool: pool.to_owned(),
                instance: instance.to_owned(),
            }),
            PromiseDecision::Rejected { .. } => Err(ReserveFailure::Insufficient),
        }
    }

    fn consume(&self, token: Self::Token) -> Result<(), ReserveFailure> {
        let table = Catalog::instance_table(&promises_core::PoolId(token.pool.clone()));
        let instance = token.instance.clone();
        self.pm
            .execute(
                &Environment::none().releasing(token.promise),
                move |rm, txn| {
                    rm.update(txn, &table, &instance, |r| {
                        r.set(Catalog::STATUS, status::TAKEN);
                    })
                    .map_err(promises_core::ActionError::from)
                },
            )
            .map(|_| ())
            .map_err(|e| match e {
                PromiseError::Rm(RmError::Deadlock { .. }) => ReserveFailure::Deadlock,
                PromiseError::Rm(other) => ReserveFailure::Rm(other),
                _ => ReserveFailure::LateConflict,
            })
    }

    fn cancel(&self, token: Self::Token) {
        let _ = self.pm.release(token.promise);
    }
}

/// Builds a promise manager with `instances` available instances in
/// [`INSTANCE_POOL`] and returns a reserver over it.
pub fn promise_instance_reserver(instances: usize) -> PromiseInstanceReserver {
    let rm = Arc::new(ResourceManager::new());
    let pm = Arc::new(PromiseManager::new(rm, Arc::new(SystemClock::new())));
    pm.register_pool(PoolSchema::instances(INSTANCE_POOL, vec![]));
    for i in 0..instances {
        pm.seed_instance(INSTANCE_POOL, instance_name(i).as_str(), Record::new())
            .expect("seeding a fresh pool cannot fail");
    }
    PromiseInstanceReserver::new(pm)
}

/// Seeds a bare RM with the same instance layout for the soft-lock
/// baseline (same table naming and `_status` field).
pub fn seed_instances(rm: &ResourceManager, instances: usize) {
    let table = format!("inst:{INSTANCE_POOL}");
    rm.create_table(&table);
    let tx = rm.begin();
    for i in 0..instances {
        let _ = rm.insert(
            &tx,
            &table,
            &instance_name(i),
            Record::new().with("_status", "available"),
        );
    }
    rm.commit(tx).expect("seeding commit");
}

/// Runs a reserve–think–take workload over named instances: each client
/// repeatedly picks an instance (hotspot-skewed towards low indices),
/// reserves it, thinks, then takes or abandons it. `instances` bounds the
/// identifier space; contention comes from collisions on the same names.
pub fn run_instance_workload<R>(
    reserver: Arc<R>,
    cfg: &WorkloadConfig,
    instances: usize,
) -> RunReport
where
    R: InstanceReserver + Send + Sync + 'static,
{
    let counters = Arc::new(Counters::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..cfg.clients {
            let reserver = Arc::clone(&reserver);
            let counters = Arc::clone(&counters);
            let ops = cfg.ops_for_client(client);
            let think = cfg.think;
            let real_think = cfg.real_time_think;
            // See `run_qty_workload`: virtual think sleeps nothing but
            // still counts toward latencies past the hold window.
            let vthink = if real_think {
                std::time::Duration::ZERO
            } else {
                think
            };
            scope.spawn(move || {
                for (i, op) in ops.iter().enumerate() {
                    counters.attempts.fetch_add(1, Ordering::Relaxed);
                    let op_start = Instant::now();
                    // Map the generated pool/amount onto an instance index:
                    // hotspot ops hit the low indices.
                    let idx = if op.pools[0] == 0 {
                        (client + i) % (instances / 4).max(1)
                    } else {
                        (client * 31 + i * 7) % instances
                    };
                    let token = match reserver.reserve_instance(INSTANCE_POOL, &instance_name(idx))
                    {
                        Ok(t) => t,
                        Err(ReserveFailure::Insufficient) => {
                            counters.failed_fast.fetch_add(1, Ordering::Relaxed);
                            counters.failed_op(op_start.elapsed());
                            continue;
                        }
                        Err(ReserveFailure::Deadlock) => {
                            counters.deadlocks.fetch_add(1, Ordering::Relaxed);
                            counters.failed_op(op_start.elapsed());
                            continue;
                        }
                        Err(ReserveFailure::LateConflict) => {
                            counters.failed_late.fetch_add(1, Ordering::Relaxed);
                            counters.failed_op(op_start.elapsed());
                            continue;
                        }
                        Err(ReserveFailure::Rm(_)) => {
                            counters.errors.fetch_add(1, Ordering::Relaxed);
                            counters.failed_op(op_start.elapsed());
                            continue;
                        }
                    };
                    if real_think && !think.is_zero() {
                        std::thread::sleep(think);
                    }
                    if op.abandon {
                        reserver.cancel(token);
                        counters.abandoned.fetch_add(1, Ordering::Relaxed);
                    } else {
                        match reserver.consume(token) {
                            Ok(()) => counters.succeeded(op_start.elapsed() + vthink),
                            Err(ReserveFailure::Deadlock) => {
                                counters.deadlocks.fetch_add(1, Ordering::Relaxed);
                                counters.failed_op(op_start.elapsed() + vthink);
                            }
                            Err(ReserveFailure::LateConflict) => {
                                counters.failed_late.fetch_add(1, Ordering::Relaxed);
                                counters.failed_op(op_start.elapsed() + vthink);
                            }
                            Err(_) => {
                                counters.errors.fetch_add(1, Ordering::Relaxed);
                                counters.failed_op(op_start.elapsed() + vthink);
                            }
                        }
                    }
                }
            });
        }
    });
    counters.report(start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_baselines::SoftLockReserver;
    use std::time::Duration;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            clients: 4,
            ops_per_client: 15,
            pools: 2,
            hotspot_probability: 0.5,
            zipf_exponent: 0.0,
            amount_max: 1,
            think: Duration::from_micros(200),
            real_time_think: true,
            abandon_probability: 0.2,
            multi_pool: false,
            pinned_pools: false,
            seed: 11,
        }
    }

    #[test]
    fn promise_instance_workload_is_consistent() {
        const N: usize = 40;
        let r = Arc::new(promise_instance_reserver(N));
        let pm = Arc::clone(r.manager());
        let report = run_instance_workload(r, &cfg(), N);
        assert!(report.completed > 0);
        assert_eq!(pm.live_count(), 0, "no leaked promises");
        // Taken instances equal completed operations.
        let rm = pm.rm();
        let txn = rm.begin();
        let taken = rm
            .scan(&txn, &format!("inst:{INSTANCE_POOL}"))
            .unwrap()
            .iter()
            .filter(|(_, rec)| rec.str("_status") == Some("taken"))
            .count() as u64;
        rm.commit(txn).unwrap();
        assert_eq!(taken, report.completed);
    }

    #[test]
    fn soft_lock_instance_workload_is_consistent() {
        const N: usize = 40;
        let rm = Arc::new(ResourceManager::new());
        seed_instances(&rm, N);
        let report =
            run_instance_workload(Arc::new(SoftLockReserver::new(Arc::clone(&rm))), &cfg(), N);
        assert!(report.completed > 0);
        let txn = rm.begin();
        let taken = rm
            .scan(&txn, &format!("inst:{INSTANCE_POOL}"))
            .unwrap()
            .iter()
            .filter(|(_, rec)| rec.str("_status") == Some("taken"))
            .count() as u64;
        rm.commit(txn).unwrap();
        assert_eq!(taken, report.completed);
    }

    #[test]
    fn both_systems_admit_comparably_on_the_same_workload() {
        // Soft locks are the §5 "allocated tags" technique without a
        // manager; on a pure named-view workload (no rogue writers) the
        // two admit the same operations.
        const N: usize = 40;
        let r = Arc::new(promise_instance_reserver(N));
        let promises = run_instance_workload(r, &cfg(), N);

        let rm = Arc::new(ResourceManager::new());
        seed_instances(&rm, N);
        let soft =
            run_instance_workload(Arc::new(SoftLockReserver::new(Arc::clone(&rm))), &cfg(), N);
        assert_eq!(promises.attempts, soft.attempts);
        // Identical deterministic workloads; small divergence possible only
        // from scheduling (both must stay in the same ballpark).
        let diff = promises.completed.abs_diff(soft.completed);
        assert!(
            diff <= promises.attempts / 5,
            "promises={} soft={}",
            promises.completed,
            soft.completed
        );
    }
}
