//! Doctor sweeps: fault-injection scenarios with the health plane armed,
//! gated on a confusion matrix (DESIGN §17, E17).
//!
//! Each sweep drives a known fault class against an instrumented system
//! with the anomaly watchdogs watching, and reports which watchdogs
//! tripped against which were *expected* to trip:
//!
//! * [`run_doctor_fault_sweep`] — bus delay faults large enough to blow
//!   the latency SLO; the **slo-burn-rate** monitor must trip (and, when
//!   `fail_fast` is set, drive the manager into degraded fail-fast mode
//!   until the burn recovers);
//! * [`run_doctor_lease_sweep`] — an armed mid-rebalance crash strands
//!   lease headroom; the **lease-sum-invariant** probe must trip, and
//!   fall silent again after the next cycle's heal pass;
//! * [`run_doctor_failover_sweep`] — a saturated replication drop wedges
//!   a follower (**stalled-replication**), then a coordinator crash
//!   leaves prepared holds aging past the limit (**in-doubt-age**); both
//!   must clear after the faults are lifted and recovery runs.
//!
//! At `fault_rate == 0` every sweep runs the same workload with no fault
//! armed, and **no** watchdog may trip — the false-positive half of the
//! confusion matrix. Every trip cuts a flight-recorder incident report;
//! the `--doctor` experiments gate re-validates each one as JSON.

use std::sync::Arc;
use std::time::Duration;

use promises_cluster::{ClusterDecision, CoordError, CrashPoint, PromiseCluster};
use promises_faults::FaultScenario;
use promises_telemetry::{
    FlightRecorder, HealthState, IncidentReport, Telemetry, Watchdog, WatchdogConfig, WatchdogTrip,
};
use promises_wire::{Envelope, PromiseRequestHeader, PromiseResult, RetryPolicy, RetryingClient};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::cluster::{cluster_harness, ClusterSweepConfig};
use crate::faults::{fault_harness_with, PM_ENDPOINT};
use crate::workload::{pool_name, sample_zipf, zipf_cdf};

/// Outcome of one doctor sweep: the confusion-matrix row for one
/// `(scenario, fault_rate)` cell.
#[derive(Debug, Clone)]
pub struct DoctorReport {
    /// Which sweep ran (`"fault"`, `"lease"`, `"failover"`).
    pub sweep: &'static str,
    /// Workload seed.
    pub seed: u64,
    /// Injected fault rate (0.0 = clean run).
    pub fault_rate: f64,
    /// Health-plane ticks taken.
    pub ticks: usize,
    /// Watchdogs this scenario *must* trip (empty on clean runs).
    pub expected: Vec<&'static str>,
    /// Watchdog names that actually tripped, first-trip order, deduped.
    pub tripped: Vec<String>,
    /// One incident-report JSON per trip, in trip order.
    pub incidents: Vec<String>,
    /// Whether the burn trip drove the manager into degraded fail-fast
    /// mode (fault sweep with `fail_fast` only).
    pub fail_fast_engaged: bool,
    /// Whether degraded mode was lifted after the burn recovered.
    pub fail_fast_cleared: bool,
}

impl DoctorReport {
    fn new(sweep: &'static str, seed: u64, fault_rate: f64, expected: Vec<&'static str>) -> Self {
        Self {
            sweep,
            seed,
            fault_rate,
            ticks: 0,
            expected,
            tripped: Vec::new(),
            incidents: Vec::new(),
            fail_fast_engaged: false,
            fail_fast_cleared: false,
        }
    }

    /// Folds one tick's trips (and their incident reports) in.
    fn note(&mut self, trips: &[(WatchdogTrip, IncidentReport)]) {
        self.ticks += 1;
        for (trip, incident) in trips {
            let name = trip.watchdog.name();
            if !self.tripped.iter().any(|t| t == name) {
                self.tripped.push(name.to_string());
            }
            self.incidents.push(incident.to_json());
        }
    }

    /// Expected watchdogs that never tripped (missed detections).
    pub fn missed(&self) -> Vec<&'static str> {
        self.expected
            .iter()
            .copied()
            .filter(|e| !self.tripped.iter().any(|t| t == e))
            .collect()
    }

    /// Tripped watchdogs that were not expected (false positives).
    pub fn unexpected(&self) -> Vec<String> {
        self.tripped
            .iter()
            .filter(|t| !self.expected.iter().any(|e| e == t))
            .cloned()
            .collect()
    }

    /// True when the confusion-matrix cell is perfect: every expected
    /// watchdog tripped and nothing else did.
    pub fn clean(&self) -> bool {
        self.missed().is_empty() && self.unexpected().is_empty()
    }
}

/// Ticks `state` over `snap`-shaped telemetry and folds the trips (each
/// paired with an incident cut from `recorder`) into `report`.
fn tick(
    report: &mut DoctorReport,
    state: &mut HealthState,
    recorder: &FlightRecorder,
    tel: &Telemetry,
) -> Vec<Watchdog> {
    let snap = tel.snapshot();
    let trips = state.observe(&snap);
    let kinds: Vec<Watchdog> = trips.iter().map(|t| t.watchdog).collect();
    let paired: Vec<(WatchdogTrip, IncidentReport)> = trips
        .into_iter()
        .map(|trip| {
            let reason = format!("watchdog:{} {}", trip.watchdog.name(), trip.subject);
            let incident = recorder.incident(&reason, &snap);
            (trip, incident)
        })
        .collect();
    report.note(&paired);
    kinds
}

/// The E11-doctor scenario: a single journalled promise manager behind a
/// bus that delays `fault_rate` of all messages by up to 24 ms — an order
/// of magnitude over the ~2 ms latency SLO — while the two-window burn
/// monitor watches `client.send`. At any non-zero rate the over-SLO
/// fraction dwarfs the 1% error budget, so **slo-burn-rate** must trip;
/// at rate 0 every send is microseconds and nothing may.
///
/// With `fail_fast`, the first burn trip flips the manager into degraded
/// mode (new grants fail fast with an overload rejection); once the
/// post-quiesce rounds bring the burn back under both thresholds the
/// sweep lifts degraded mode — the overload loop the position paper's §6
/// "manager may refuse" escape hatch sketches.
pub fn run_doctor_fault_sweep(seed: u64, fault_rate: f64, fail_fast: bool) -> DoctorReport {
    const ROUNDS: usize = 8;
    const OPS_PER_ROUND: usize = 50;
    const POOLS: usize = 2;

    let mut expected = Vec::new();
    if fault_rate > 0.0 {
        expected.push(Watchdog::SloBurnRate.name());
    }
    let mut report = DoctorReport::new("fault", seed, fault_rate, expected);

    let mut scenario = FaultScenario::quiet(seed);
    scenario.delay_probability = fault_rate;
    scenario.max_delay = Duration::from_millis(24);
    let tel = Telemetry::shared();
    let h = fault_harness_with(scenario, POOLS, 1_000_000, Some(Arc::clone(&tel)));
    let client = Arc::new(
        RetryingClient::new(Arc::clone(&h.bus), RetryPolicy::new(seed ^ 0xD0C7))
            .with_telemetry(Arc::clone(&tel)),
    );
    let recorder = FlightRecorder::new("doctor-pm");
    let mut state = HealthState::new(WatchdogConfig::default());
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));

    let run_round = |round: usize, rng: &mut StdRng| {
        recorder.record("workload.round", format!("round {round}"));
        for op in 0..OPS_PER_ROUND {
            let pool = pool_name(rng.random_range(0..POOLS));
            let amount = rng.random_range(1..=3u64);
            let request_id = format!("d{round}-o{op}");
            let grant = Envelope::new().with_promise_request(PromiseRequestHeader {
                request_id: request_id.clone(),
                client: "doctor".into(),
                predicates: vec![format!("qty('{pool}') >= {amount}")],
                duration_ms: 60_000,
                exchange: vec![],
                negotiate: false,
                prepare: false,
            });
            let Ok(reply) = client.send(PM_ENDPOINT, &grant) else {
                continue;
            };
            let promise_id = reply.response_for(&request_id).and_then(|resp| {
                if matches!(resp.result, PromiseResult::Rejected(_)) {
                    None
                } else {
                    resp.promise_id
                }
            });
            if let Some(id) = promise_id {
                let _ = client.send(PM_ENDPOINT, &Envelope::new().with_release(id));
            }
        }
    };

    for round in 0..ROUNDS {
        run_round(round, &mut rng);
        let kinds = tick(&mut report, &mut state, &recorder, &tel);
        if fail_fast && kinds.contains(&Watchdog::SloBurnRate) && !h.pm.is_degraded() {
            h.pm.set_degraded(true);
            report.fail_fast_engaged = true;
            recorder.record("overload.fail_fast", "burn trip: degraded mode on");
        }
    }

    // Lift the faults; fast in-SLO rounds flush the burn windows. Once
    // a tick passes without the burn tripping, degraded mode comes off.
    h.quiesce();
    for round in ROUNDS..(ROUNDS * 3) {
        if !h.pm.is_degraded() {
            break;
        }
        run_round(round, &mut rng);
        let kinds = tick(&mut report, &mut state, &recorder, &tel);
        if !kinds.contains(&Watchdog::SloBurnRate) {
            h.pm.set_degraded(false);
            report.fail_fast_cleared = true;
            recorder.record("overload.recover", "burn recovered: degraded mode off");
        }
    }

    // Reap so the harness ends leak-free, as every sweep in this crate
    // leaves its system quiesced.
    h.clock.advance(4_000_000);
    let _ = h.pm.prune_expired();
    report
}

/// The E15-doctor scenario: a leased cluster under a Zipf-skewed grant
/// workload. At a non-zero `fault_rate` the sweep arms the mid-rebalance
/// crash — withdraws land, deposits die — so the cluster-wide lease sum
/// transiently shrinks below the registered total, and the
/// **lease-sum-invariant** probe must trip on the next health tick. The
/// following cycle's heal pass re-credits the stranded units and the
/// probe must fall silent. At rate 0 the identical workload (no armed
/// crash) may trip nothing.
pub fn run_doctor_lease_sweep(seed: u64, fault_rate: f64) -> DoctorReport {
    const ROUNDS: usize = 3;
    const OPS_PER_CLIENT: usize = 12;

    let mut expected = Vec::new();
    if fault_rate > 0.0 {
        expected.push(Watchdog::LeaseSumInvariant.name());
    }
    let mut report = DoctorReport::new("lease", seed, fault_rate, expected);

    let cfg = ClusterSweepConfig {
        shards: 4,
        clients: 4,
        pools: 4,
        qty: 10_000,
        leases: true,
        seed,
        ..ClusterSweepConfig::default()
    };
    let cluster = cluster_harness(FaultScenario::quiet(seed), &cfg);
    cluster.bus.set_fault_injector(None);
    let mut state = HealthState::new(WatchdogConfig::default());
    let cdf = zipf_cdf(cfg.pools, 1.1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1EA5E);

    let run_round = |round: usize, rng: &mut StdRng| {
        for c in 0..cfg.clients {
            let client = format!("client-{c}");
            for op in 0..OPS_PER_CLIENT {
                let pool = pool_name(sample_zipf(&cdf, rng));
                let amount = rng.random_range(1..=cfg.amount_max);
                let rid = format!("d{round}-c{c}-o{op}");
                match cluster.coordinator.grant(
                    &client,
                    &rid,
                    &[format!("qty('{pool}') >= {amount}")],
                    3_600_000,
                ) {
                    Ok(ClusterDecision::Granted { parts }) => cluster.coordinator.release(&parts),
                    Ok(ClusterDecision::Rejected { .. }) => {}
                    Err(e) => panic!("quiet-bus doctor lease sweep errored: {e}"),
                }
            }
        }
    };

    for round in 0..ROUNDS {
        run_round(round, &mut rng);
        if round + 1 < ROUNDS {
            // Clean rebalance cycles between rounds: headroom chases the
            // Zipf head, the lease sum stays at the total.
            cluster.advance_and_prune(10_000);
        }
        report.note(&cluster.health_tick(&mut state));
    }

    if fault_rate > 0.0 {
        // Final-round demand is still pending; the armed cycle withdraws
        // the surplus headroom and dies before any deposit.
        cluster.arm_rebalance_crash();
        let crash = cluster.rebalance_leases().expect("leases are enabled");
        assert!(crash.crashed, "armed rebalance crash must fire");
        report.note(&cluster.health_tick(&mut state));

        // The next cycle's heal pass re-credits the stranded units; the
        // probe must clear.
        cluster.rebalance_leases().expect("leases are enabled");
        report.note(&cluster.health_tick(&mut state));
    }

    cluster.advance_and_prune(4_000_000);
    report
}

/// The E16-doctor scenario: a replicated 2-shard cluster. At a non-zero
/// `fault_rate` two fault classes fire in sequence:
///
/// 1. a **saturated replication drop** wedges shard 0's follower — the
///    leader's tip keeps advancing while the watermark freezes, and the
///    **stalled-replication** watchdog must trip within two ticks; the
///    drop is then lifted, one sync drains the backlog, and the watchdog
///    must clear;
/// 2. a coordinator crash **after Prepare** leaves prepared holds on both
///    shards; the clock advances past the in-doubt age limit and
///    **in-doubt-age** must trip; coordinator recovery then resolves the
///    holds (presumed abort) and the watchdog must clear.
///
/// The sweep finishes with a kill + follower promotion on shard 0 and a
/// final tick that must be silent — fail-over itself is not an anomaly.
/// At rate 0 the same steady traffic runs with no fault and nothing may
/// trip.
pub fn run_doctor_failover_sweep(seed: u64, fault_rate: f64) -> DoctorReport {
    const SHARDS: usize = 2;

    let mut expected = Vec::new();
    if fault_rate > 0.0 {
        expected.push(Watchdog::StalledReplication.name());
        expected.push(Watchdog::InDoubtAge.name());
    }
    let mut report = DoctorReport::new("failover", seed, fault_rate, expected);

    let cfg = ClusterSweepConfig {
        shards: SHARDS,
        clients: 2,
        pools: SHARDS,
        qty: 10_000,
        seed,
        ..ClusterSweepConfig::default()
    };
    let mut cluster = cluster_harness(FaultScenario::quiet(seed), &cfg);
    cluster.bus.set_fault_injector(None);
    cluster.enable_replication();
    let mut state = HealthState::new(WatchdogConfig::default());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA11);
    let mut op = 0usize;

    let run_round = |cluster: &PromiseCluster, rng: &mut StdRng, op: &mut usize| {
        for _ in 0..6 {
            let pool = pool_name(rng.random_range(0..SHARDS));
            let amount = rng.random_range(1..=3u64);
            let rid = format!("d-o{op}");
            *op += 1;
            match cluster.coordinator.grant(
                "doctor",
                &rid,
                &[format!("qty('{pool}') >= {amount}")],
                3_600_000,
            ) {
                Ok(ClusterDecision::Granted { parts }) => cluster.coordinator.release(&parts),
                Ok(ClusterDecision::Rejected { .. }) => {}
                Err(e) => panic!("quiet-bus doctor failover sweep errored: {e}"),
            }
        }
    };

    // Steady traffic, replication healthy: ticks must be silent.
    for _ in 0..2 {
        run_round(&cluster, &mut rng, &mut op);
        cluster.sync_replication();
        report.note(&cluster.health_tick(&mut state));
    }

    if fault_rate > 0.0 {
        // ---- Fault class 1: wedged follower. ----
        // A saturated drop rate (the non-converging regime MAX_SHIP_ATTEMPTS
        // documents) freezes the watermark while grants advance the tip.
        cluster.set_replication_faults(Some(Arc::new(promises_faults::FaultInjector::new(
            FaultScenario::quiet(seed ^ 0xD20).with_replication_faults(1.0, 0.0),
        ))));
        for _ in 0..3 {
            run_round(&cluster, &mut rng, &mut op);
            cluster.sync_replication();
            report.note(&cluster.health_tick(&mut state));
        }
        assert!(
            report
                .tripped
                .iter()
                .any(|t| t == Watchdog::StalledReplication.name()),
            "saturated drop must wedge the watermark: {report:?}"
        );
        // Lift the drop; one sync drains the backlog and the stall clears.
        cluster.set_replication_faults(None);
        cluster.sync_replication();
        report.note(&cluster.health_tick(&mut state));

        // ---- Fault class 2: aging in-doubt holds. ----
        cluster
            .coordinator
            .set_crash_point(Some(CrashPoint::AfterPrepare));
        let err = cluster
            .coordinator
            .grant(
                "doomed",
                "dx",
                &[
                    format!("qty('{}') >= 2", pool_name(0)),
                    format!("qty('{}') >= 2", pool_name(1)),
                ],
                3_600_000,
            )
            .expect_err("armed coordinator crash fires");
        assert!(matches!(err, CoordError::Crashed(_)), "{err:?}");
        // The prepared holds age past the watchdog's limit.
        cluster.clock.advance(6_000);
        report.note(&cluster.health_tick(&mut state));

        // Recovery resolves the in-doubt holds (presumed abort); silent.
        cluster
            .coordinator
            .recover()
            .expect("coordinator recovery succeeds");
        cluster.sync_replication();
        report.note(&cluster.health_tick(&mut state));

        // ---- Fail-over is not an anomaly. ----
        cluster.kill_shard(0);
        cluster.promote_follower(0);
        run_round(&cluster, &mut rng, &mut op);
        cluster.sync_replication();
        report.note(&cluster.health_tick(&mut state));
    }

    cluster.advance_and_prune(4_000_000);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_telemetry::export::validate_json;

    #[test]
    fn clean_runs_trip_no_watchdog() {
        for (label, report) in [
            ("fault", run_doctor_fault_sweep(7, 0.0, false)),
            ("lease", run_doctor_lease_sweep(7, 0.0)),
            ("failover", run_doctor_failover_sweep(7, 0.0)),
        ] {
            assert!(
                report.tripped.is_empty(),
                "{label} clean run tripped {:?}",
                report.tripped
            );
            assert!(report.clean(), "{label}: {report:?}");
            assert!(report.ticks > 0);
        }
    }

    #[test]
    fn delay_faults_trip_the_burn_monitor() {
        let report = run_doctor_fault_sweep(11, 0.2, false);
        assert!(report.clean(), "{report:?}");
        assert_eq!(report.tripped, vec![Watchdog::SloBurnRate.name()]);
        assert!(!report.incidents.is_empty());
        for incident in &report.incidents {
            validate_json(incident).expect("incident JSON must parse");
        }
    }

    #[test]
    fn burn_trip_drives_fail_fast_and_recovers() {
        let report = run_doctor_fault_sweep(13, 0.2, true);
        assert!(report.clean(), "{report:?}");
        assert!(report.fail_fast_engaged, "{report:?}");
        assert!(report.fail_fast_cleared, "{report:?}");
    }

    #[test]
    fn stranded_rebalance_trips_the_lease_probe_then_heals() {
        let report = run_doctor_lease_sweep(11, 0.1);
        assert!(report.clean(), "{report:?}");
        assert_eq!(report.tripped, vec![Watchdog::LeaseSumInvariant.name()]);
        for incident in &report.incidents {
            validate_json(incident).expect("incident JSON must parse");
            assert!(
                incident.contains("lease-sum-invariant"),
                "incident names its watchdog"
            );
        }
    }

    #[test]
    fn wedged_follower_and_aging_holds_trip_their_watchdogs() {
        let report = run_doctor_failover_sweep(11, 0.1);
        assert!(report.clean(), "{report:?}");
        assert!(report
            .tripped
            .iter()
            .any(|t| t == Watchdog::StalledReplication.name()));
        assert!(report
            .tripped
            .iter()
            .any(|t| t == Watchdog::InDoubtAge.name()));
        for incident in &report.incidents {
            validate_json(incident).expect("incident JSON must parse");
        }
    }
}
