//! Adapter exposing a [`PromiseManager`] through the baseline
//! reserve/consume interface so the same workload drives all systems.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use promises_baselines::{QtyReserver, ReserveFailure, QTY_TABLE};
use promises_core::{
    Environment, LockingMode, PoolSchema, Predicate, PromiseDecision, PromiseError, PromiseId,
    PromiseManager, PromiseRequestSpec, SystemClock,
};
use promises_rm::{ResourceManager, RmError};

/// Promise-manager-backed quantity reservations.
pub struct PromiseQtyReserver {
    pm: Arc<PromiseManager>,
    next_req: AtomicU64,
    /// Promise duration for each reservation.
    pub duration_ms: u64,
}

/// One promise per reserved pool.
#[derive(Debug)]
pub struct PromiseToken {
    holds: Vec<(PromiseId, String, u64)>,
}

impl PromiseQtyReserver {
    /// Wraps an existing manager.
    pub fn new(pm: Arc<PromiseManager>) -> Self {
        Self {
            pm,
            next_req: AtomicU64::new(1),
            duration_ms: 60_000,
        }
    }

    /// The underlying manager (metrics access).
    pub fn manager(&self) -> &Arc<PromiseManager> {
        &self.pm
    }

    fn promise_error(e: PromiseError) -> ReserveFailure {
        match e {
            PromiseError::Rm(RmError::Deadlock { .. }) => ReserveFailure::Deadlock,
            PromiseError::Rm(other) => ReserveFailure::Rm(other),
            PromiseError::ViolationRolledBack { .. } => ReserveFailure::LateConflict,
            _ => ReserveFailure::LateConflict,
        }
    }
}

impl QtyReserver for PromiseQtyReserver {
    type Token = PromiseToken;

    fn reserve(&self, pool: &str, amount: u64) -> Result<Self::Token, ReserveFailure> {
        let mut token = PromiseToken { holds: Vec::new() };
        self.extend(&mut token, pool, amount)?;
        Ok(token)
    }

    fn extend(
        &self,
        token: &mut Self::Token,
        pool: &str,
        amount: u64,
    ) -> Result<(), ReserveFailure> {
        let n = self.next_req.fetch_add(1, Ordering::Relaxed);
        let resp = self
            .pm
            .request(
                PromiseRequestSpec::new(
                    promises_core::RequestId(format!("sim-{n}")),
                    promises_core::ClientId("sim".into()),
                )
                .predicate(Predicate::qty_at_least(pool, amount))
                .duration_ms(self.duration_ms),
            )
            .map_err(Self::promise_error)?;
        match resp.decision {
            PromiseDecision::Granted { promise, .. } => {
                token.holds.push((promise, pool.to_owned(), amount));
                Ok(())
            }
            PromiseDecision::Rejected { .. } => Err(ReserveFailure::Insufficient),
        }
    }

    fn consume(&self, token: Self::Token) -> Result<(), ReserveFailure> {
        let mut env = Environment::none();
        for (id, _, _) in &token.holds {
            env = env.releasing(*id);
        }
        let holds = token.holds.clone();
        self.pm
            .execute(&env, move |rm, txn| {
                for (_, pool, amount) in &holds {
                    rm.update(txn, QTY_TABLE, pool, |rec| {
                        let q = rec.int("qty").unwrap_or(0);
                        rec.set("qty", q - *amount as i64);
                    })
                    .map_err(promises_core::ActionError::from)?;
                }
                Ok(())
            })
            .map(|_| ())
            .map_err(Self::promise_error)
    }

    fn cancel(&self, token: Self::Token) {
        for (id, _, _) in &token.holds {
            let _ = self.pm.release(*id);
        }
    }
}

/// Builds a promise manager with `pools` quantity pools of `qty` each and
/// returns the reserver over it (default locking mode).
pub fn promise_reserver(pools: usize, qty: u64) -> PromiseQtyReserver {
    promise_reserver_with_mode(pools, qty, LockingMode::default())
}

/// [`promise_reserver`] with an explicit [`LockingMode`], for comparing
/// footprint-scoped locking against the global-sync-point baseline.
pub fn promise_reserver_with_mode(pools: usize, qty: u64, mode: LockingMode) -> PromiseQtyReserver {
    let rm = Arc::new(ResourceManager::new());
    let pm =
        Arc::new(PromiseManager::new(rm, Arc::new(SystemClock::new())).with_locking_mode(mode));
    for i in 0..pools {
        let name = crate::workload::pool_name(i);
        pm.register_pool(PoolSchema::quantity(name.as_str()));
        pm.seed_quantity(name.as_str(), qty)
            .expect("seeding a fresh pool cannot fail");
    }
    PromiseQtyReserver::new(pm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_reserve_consume() {
        let r = promise_reserver(2, 10);
        let mut t = r.reserve("pool-0", 4).unwrap();
        r.extend(&mut t, "pool-1", 2).unwrap();
        r.consume(t).unwrap();
        assert_eq!(r.manager().metrics().granted, 2);
        assert_eq!(r.manager().metrics().executions, 1);
        assert_eq!(r.manager().live_count(), 0);
    }

    #[test]
    fn adapter_rejects_fast() {
        let r = promise_reserver(1, 3);
        assert_eq!(
            r.reserve("pool-0", 4).unwrap_err(),
            ReserveFailure::Insufficient
        );
    }

    #[test]
    fn adapter_cancel_releases() {
        let r = promise_reserver(1, 3);
        let t = r.reserve("pool-0", 3).unwrap();
        r.cancel(t);
        assert!(r.reserve("pool-0", 3).is_ok());
    }
}
