//! Run-level metrics collected by the driver.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared atomic counters written by client threads.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub attempts: AtomicU64,
    pub completed: AtomicU64,
    pub abandoned: AtomicU64,
    pub failed_fast: AtomicU64,
    pub failed_late: AtomicU64,
    pub deadlocks: AtomicU64,
    pub errors: AtomicU64,
    pub latency_us: AtomicU64,
}

/// Final report of one workload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Operations attempted.
    pub attempts: u64,
    /// Operations that reserved and consumed successfully.
    pub completed: u64,
    /// Operations abandoned by the client (reservation cancelled).
    pub abandoned: u64,
    /// Reservations refused immediately (promise rejection / escrow
    /// headroom / lock-time insufficiency).
    pub failed_fast: u64,
    /// Failures discovered only at consume time (optimistic baseline's
    /// late conflicts) — the failure mode promises eliminate.
    pub failed_late: u64,
    /// Deadlock-victim aborts observed by clients.
    pub deadlocks: u64,
    /// Other errors.
    pub errors: u64,
    /// Mean end-to-end latency of completed operations.
    pub avg_latency: Duration,
    /// Completed operations per second.
    pub throughput: f64,
}

impl Counters {
    pub(crate) fn report(&self, wall: Duration) -> RunReport {
        let completed = self.completed.load(Ordering::Relaxed);
        let latency_us = self.latency_us.load(Ordering::Relaxed);
        RunReport {
            wall,
            attempts: self.attempts.load(Ordering::Relaxed),
            completed,
            abandoned: self.abandoned.load(Ordering::Relaxed),
            failed_fast: self.failed_fast.load(Ordering::Relaxed),
            failed_late: self.failed_late.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            avg_latency: latency_us
                .checked_div(completed)
                .map(Duration::from_micros)
                .unwrap_or(Duration::ZERO),
            throughput: if wall.as_secs_f64() > 0.0 {
                completed as f64 / wall.as_secs_f64()
            } else {
                0.0
            },
        }
    }
}

impl RunReport {
    /// Fraction of attempts that completed.
    pub fn goodput_ratio(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.completed as f64 / self.attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_computes_ratios() {
        let c = Counters::default();
        c.attempts.store(10, Ordering::Relaxed);
        c.completed.store(5, Ordering::Relaxed);
        c.latency_us.store(5_000, Ordering::Relaxed);
        let r = c.report(Duration::from_secs(2));
        assert_eq!(r.completed, 5);
        assert!((r.throughput - 2.5).abs() < 1e-9);
        assert_eq!(r.avg_latency, Duration::from_micros(1_000));
        assert!((r.goodput_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_sane() {
        let c = Counters::default();
        let r = c.report(Duration::ZERO);
        assert_eq!(r.throughput, 0.0);
        assert_eq!(r.avg_latency, Duration::ZERO);
        assert_eq!(r.goodput_ratio(), 0.0);
    }
}
