//! Run-level metrics collected by the driver.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use promises_telemetry::{Histogram, HistogramSnapshot};

/// Shared atomic counters written by client threads.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub attempts: AtomicU64,
    pub completed: AtomicU64,
    pub abandoned: AtomicU64,
    pub failed_fast: AtomicU64,
    pub failed_late: AtomicU64,
    pub deadlocks: AtomicU64,
    pub errors: AtomicU64,
    /// End-to-end latency of completed operations.
    pub latency: Histogram,
    /// End-to-end latency of operations that failed (any taxonomy bucket)
    /// — kept apart so failure latency never dilutes the success numbers.
    pub failed_latency: Histogram,
}

/// Final report of one workload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Operations attempted.
    pub attempts: u64,
    /// Operations that reserved and consumed successfully.
    pub completed: u64,
    /// Operations abandoned by the client (reservation cancelled).
    pub abandoned: u64,
    /// Reservations refused immediately (promise rejection / escrow
    /// headroom / lock-time insufficiency).
    pub failed_fast: u64,
    /// Failures discovered only at consume time (optimistic baseline's
    /// late conflicts) — the failure mode promises eliminate.
    pub failed_late: u64,
    /// Deadlock-victim aborts observed by clients.
    pub deadlocks: u64,
    /// Other errors.
    pub errors: u64,
    /// Mean end-to-end latency of completed operations; `None` when
    /// nothing completed (an all-failure run has no success latency, and
    /// reporting zero would fake an infinitely fast system).
    pub avg_latency: Option<Duration>,
    /// Mean end-to-end latency of failed operations; `None` when nothing
    /// failed.
    pub avg_failed_latency: Option<Duration>,
    /// Latency distribution of completed operations (p50/p95/p99 via
    /// [`HistogramSnapshot::quantile_ns`]).
    pub latency: HistogramSnapshot,
    /// Latency distribution of failed operations.
    pub failed_latency: HistogramSnapshot,
    /// Completed operations per second.
    pub throughput: f64,
}

impl Counters {
    /// Counts a completed operation and its latency.
    pub(crate) fn succeeded(&self, elapsed: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record_duration(elapsed);
    }

    /// Records the latency of a failed operation (the taxonomy counter is
    /// incremented separately by the caller).
    pub(crate) fn failed_op(&self, elapsed: Duration) {
        self.failed_latency.record_duration(elapsed);
    }

    pub(crate) fn report(&self, wall: Duration) -> RunReport {
        let completed = self.completed.load(Ordering::Relaxed);
        let latency = self.latency.snapshot();
        let failed_latency = self.failed_latency.snapshot();
        RunReport {
            wall,
            attempts: self.attempts.load(Ordering::Relaxed),
            completed,
            abandoned: self.abandoned.load(Ordering::Relaxed),
            failed_fast: self.failed_fast.load(Ordering::Relaxed),
            failed_late: self.failed_late.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            avg_latency: latency.mean_ns().map(Duration::from_nanos),
            avg_failed_latency: failed_latency.mean_ns().map(Duration::from_nanos),
            latency,
            failed_latency,
            throughput: if wall.as_secs_f64() > 0.0 {
                completed as f64 / wall.as_secs_f64()
            } else {
                0.0
            },
        }
    }
}

impl RunReport {
    /// Fraction of attempts that completed.
    pub fn goodput_ratio(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.completed as f64 / self.attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_computes_ratios() {
        let c = Counters::default();
        c.attempts.store(10, Ordering::Relaxed);
        for _ in 0..5 {
            c.succeeded(Duration::from_micros(1_000));
        }
        let r = c.report(Duration::from_secs(2));
        assert_eq!(r.completed, 5);
        assert!((r.throughput - 2.5).abs() < 1e-9);
        assert_eq!(r.avg_latency, Some(Duration::from_micros(1_000)));
        assert_eq!(r.avg_failed_latency, None);
        assert!((r.goodput_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(r.latency.count, 5);
    }

    #[test]
    fn empty_report_is_sane() {
        let c = Counters::default();
        let r = c.report(Duration::ZERO);
        assert_eq!(r.throughput, 0.0);
        assert_eq!(r.avg_latency, None, "no completions, no latency claim");
        assert_eq!(r.goodput_ratio(), 0.0);
    }

    #[test]
    fn all_failure_run_reports_failed_latency_not_zero_success() {
        let c = Counters::default();
        c.attempts.store(3, Ordering::Relaxed);
        for _ in 0..3 {
            c.failed_fast.fetch_add(1, Ordering::Relaxed);
            c.failed_op(Duration::from_micros(400));
        }
        let r = c.report(Duration::from_secs(1));
        assert_eq!(r.avg_latency, None);
        assert_eq!(r.avg_failed_latency, Some(Duration::from_micros(400)));
        assert_eq!(r.failed_latency.count, 3);
    }
}
