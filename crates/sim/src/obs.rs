//! Observability harness: an instrumented fault sweep plus the
//! trace-replay lifecycle audit.
//!
//! [`run_obs_sweep`] drives the full wire pipeline (retrying client →
//! faulty bus → gateway → PM → RM) with one shared [`Telemetry`] registry
//! attached at every layer, then:
//!
//! 1. digests the promise journal into [`JournalFacts`] (ground truth:
//!    which ids were granted / released / expired);
//! 2. replays the span ring through
//!    [`promises_telemetry::audit_lifecycles`], asserting every observed
//!    promise lifecycle (requested→granted→checked→released/expired)
//!    against that ground truth;
//! 3. snapshots every histogram and counter for per-stage reporting.

use std::sync::Arc;

use promises_core::{JournalOp, PromiseJournal};
use promises_faults::FaultScenario;
use promises_telemetry::{
    audit_lifecycles, JournalFacts, LifecycleReport, Telemetry, TelemetrySnapshot,
};

use crate::faults::{run_fault_sweep_with, FaultRunReport, FaultSweepConfig};

/// Digests `journal` into the id sets the lifecycle auditor checks spans
/// against.
pub fn journal_facts(journal: &PromiseJournal) -> JournalFacts {
    let mut facts = JournalFacts::default();
    if let Ok(entries) = journal.entries() {
        for entry in entries {
            match entry.op {
                JournalOp::Grant(rec) => {
                    facts.granted.insert(rec.id.0);
                }
                JournalOp::Release(id) => {
                    facts.released.insert(id.0);
                }
                JournalOp::Expire(id) => {
                    facts.expired.insert(id.0);
                }
                _ => {}
            }
        }
    }
    facts
}

/// Everything one instrumented sweep produces.
#[derive(Debug)]
pub struct ObsReport {
    /// The fault sweep's own invariant audits (violations, double grants,
    /// leaks).
    pub sweep: FaultRunReport,
    /// Every histogram and counter at end of run.
    pub snapshot: TelemetrySnapshot,
    /// Journal-derived ground truth the spans were audited against.
    pub facts: JournalFacts,
    /// The trace-replay lifecycle audit.
    pub lifecycle: LifecycleReport,
    /// The registry itself, for span-level drill-down.
    pub telemetry: Arc<Telemetry>,
}

impl ObsReport {
    /// True when both the sweep invariants and the lifecycle audit held.
    pub fn ok(&self) -> bool {
        self.sweep.violations == 0 && self.sweep.double_grants == 0 && self.lifecycle.ok()
    }
}

/// Runs one fault sweep with telemetry attached at every layer and audits
/// the recorded spans against the journal.
pub fn run_obs_sweep(scenario: FaultScenario, cfg: &FaultSweepConfig) -> ObsReport {
    let telemetry = Telemetry::shared();
    let (sweep, harness) = run_fault_sweep_with(scenario, cfg, Some(Arc::clone(&telemetry)));
    let facts = journal_facts(&harness.journal);
    let lifecycle = audit_lifecycles(&telemetry.spans(), &facts);
    ObsReport {
        sweep,
        snapshot: telemetry.snapshot(),
        facts,
        lifecycle,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_telemetry::{FaultTag, SpanKind};

    #[test]
    fn quiet_obs_sweep_audits_clean_and_fills_stages() {
        let cfg = FaultSweepConfig {
            clients: 3,
            ops_per_client: 12,
            ..FaultSweepConfig::default()
        };
        let obs = run_obs_sweep(FaultScenario::quiet(3), &cfg);
        assert!(obs.ok(), "violations: {:?}", obs.lifecycle.violations);
        assert!(obs.lifecycle.promises > 0, "spans observed promises");
        assert!(obs.lifecycle.complete > 0, "full lifecycles reconstructed");
        for stage in [
            "bus.deliver",
            "pm.grant",
            "pm.check",
            "pm.release",
            "rm.txn",
        ] {
            let h = obs.snapshot.histogram(stage).unwrap_or_else(|| {
                panic!(
                    "stage {stage} missing: {:?}",
                    obs.snapshot.histograms.keys()
                )
            });
            assert!(!h.is_empty(), "stage {stage} recorded no samples");
        }
        assert!(!obs.facts.granted.is_empty());
    }

    #[test]
    fn faulty_obs_sweep_tags_spans_and_still_audits_clean() {
        let cfg = FaultSweepConfig {
            clients: 3,
            ops_per_client: 15,
            ..FaultSweepConfig::default()
        };
        let obs = run_obs_sweep(
            FaultScenario::uniform(13, 0.2).with_storage_errors(0.05),
            &cfg,
        );
        assert!(
            obs.lifecycle.ok(),
            "lifecycle violations under faults: {:?}",
            obs.lifecycle.violations
        );
        assert_eq!(obs.sweep.violations, 0);
        assert_eq!(obs.sweep.double_grants, 0);
        let spans = obs.telemetry.spans();
        let tagged = spans.iter().filter(|s| s.fault.is_some()).count();
        assert!(tagged > 0, "injected faults must show up as span tags");
        // Goodput loss is attributable: every fault tag names its kind.
        let drop_tags = spans
            .iter()
            .filter(|s| {
                s.kind == SpanKind::BusDeliver
                    && matches!(
                        s.fault,
                        Some(FaultTag::DropRequest) | Some(FaultTag::DropReply)
                    )
            })
            .count();
        assert!(
            drop_tags > 0,
            "a 20% drop sweep must tag dropped deliveries"
        );
    }
}
