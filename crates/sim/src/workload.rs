//! Workload configuration and deterministic operation generation.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Name of the i-th quantity pool.
pub fn pool_name(i: usize) -> String {
    format!("pool-{i}")
}

/// A reproducible reserve-think-consume workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Operations each client attempts.
    pub ops_per_client: usize,
    /// Number of quantity pools.
    pub pools: usize,
    /// Probability an operation targets pool 0 (hotspot); the rest of the
    /// probability mass is uniform over all pools.
    pub hotspot_probability: f64,
    /// Amounts are drawn uniformly from `1..=amount_max`.
    pub amount_max: u64,
    /// Simulated long-running work between reserve and consume.
    pub think: Duration,
    /// Probability a reservation is abandoned instead of consumed.
    pub abandon_probability: f64,
    /// If true, each operation reserves *two* distinct pools before
    /// consuming either — half the clients in one order, half in the
    /// opposite order (the classic deadlock shape for lock-based
    /// reservations).
    pub multi_pool: bool,
    /// If true, client `t` works exclusively on pool `t % pools`
    /// (perfectly disjoint footprints when `clients <= pools`). Overrides
    /// the hotspot and multi-pool pool selection; amounts and abandonment
    /// still follow the PRNG.
    pub pinned_pools: bool,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            clients: 8,
            ops_per_client: 50,
            pools: 4,
            hotspot_probability: 0.5,
            amount_max: 3,
            think: Duration::from_millis(1),
            abandon_probability: 0.1,
            multi_pool: false,
            pinned_pools: false,
            seed: 42,
        }
    }
}

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// Pools to reserve, in order. One entry unless `multi_pool`.
    pub pools: Vec<usize>,
    /// Units per pool.
    pub amount: u64,
    /// Abandon instead of consuming?
    pub abandon: bool,
}

impl WorkloadConfig {
    /// Generates client `client`'s operation stream (deterministic in
    /// `(seed, client)`).
    pub fn ops_for_client(&self, client: usize) -> Vec<Op> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (client as u64).wrapping_mul(0x9E3779B9));
        (0..self.ops_per_client)
            .map(|_| {
                let first = if self.pinned_pools {
                    client % self.pools.max(1)
                } else {
                    self.pick_pool(&mut rng)
                };
                let pools = if self.multi_pool && !self.pinned_pools && self.pools >= 2 {
                    let mut second = self.pick_pool(&mut rng);
                    while second == first {
                        second = self.pick_pool(&mut rng);
                    }
                    // Opposite lock orders by client parity.
                    let (a, b) = (first.min(second), first.max(second));
                    if client.is_multiple_of(2) {
                        vec![a, b]
                    } else {
                        vec![b, a]
                    }
                } else {
                    vec![first]
                };
                Op {
                    pools,
                    amount: rng.random_range(1..=self.amount_max.max(1)),
                    abandon: rng.random_bool(self.abandon_probability.clamp(0.0, 1.0)),
                }
            })
            .collect()
    }

    fn pick_pool(&self, rng: &mut StdRng) -> usize {
        if self.pools <= 1 {
            return 0;
        }
        if rng.random_bool(self.hotspot_probability.clamp(0.0, 1.0)) {
            0
        } else {
            rng.random_range(0..self.pools)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::default();
        assert_eq!(cfg.ops_for_client(3), cfg.ops_for_client(3));
        assert_ne!(cfg.ops_for_client(3), cfg.ops_for_client(4));
    }

    #[test]
    fn hotspot_skews_to_pool_zero() {
        let cfg = WorkloadConfig {
            hotspot_probability: 0.9,
            ops_per_client: 1000,
            ..WorkloadConfig::default()
        };
        let ops = cfg.ops_for_client(0);
        let hot = ops.iter().filter(|o| o.pools[0] == 0).count();
        assert!(hot > 850, "hot={hot} of 1000");
    }

    #[test]
    fn multi_pool_orders_differ_by_parity() {
        let cfg = WorkloadConfig {
            multi_pool: true,
            pools: 2,
            hotspot_probability: 0.0,
            ..WorkloadConfig::default()
        };
        let even = cfg.ops_for_client(0);
        let odd = cfg.ops_for_client(1);
        assert!(even.iter().all(|o| o.pools == vec![0, 1]));
        assert!(odd.iter().all(|o| o.pools == vec![1, 0]));
    }

    #[test]
    fn pinned_clients_never_leave_their_pool() {
        let cfg = WorkloadConfig {
            pinned_pools: true,
            pools: 8,
            clients: 8,
            multi_pool: true, // pinning wins: single-pool ops only
            ops_per_client: 50,
            ..WorkloadConfig::default()
        };
        for client in 0..cfg.clients {
            for op in cfg.ops_for_client(client) {
                assert_eq!(op.pools, vec![client % cfg.pools]);
            }
        }
    }

    #[test]
    fn amounts_in_range() {
        let cfg = WorkloadConfig {
            amount_max: 5,
            ops_per_client: 500,
            ..WorkloadConfig::default()
        };
        for op in cfg.ops_for_client(7) {
            assert!((1..=5).contains(&op.amount));
            assert_eq!(op.pools.len(), 1);
        }
    }
}
