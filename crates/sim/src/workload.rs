//! Workload configuration and deterministic operation generation.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Name of the i-th quantity pool.
pub fn pool_name(i: usize) -> String {
    format!("pool-{i}")
}

/// A reproducible reserve-think-consume workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Operations each client attempts.
    pub ops_per_client: usize,
    /// Number of quantity pools.
    pub pools: usize,
    /// Probability an operation targets pool 0 (hotspot); the rest of the
    /// probability mass is uniform over all pools. Ignored when
    /// `zipf_exponent` is set.
    pub hotspot_probability: f64,
    /// When > 0, pool selection follows a Zipfian distribution over pool
    /// rank: pool `i` is drawn with probability ∝ 1/(i+1)^s. This is the
    /// skew shape of flash-sale and hot-SKU traffic (E15); 0 disables it
    /// and keeps the hotspot/uniform selection.
    pub zipf_exponent: f64,
    /// Amounts are drawn uniformly from `1..=amount_max`.
    pub amount_max: u64,
    /// Simulated long-running work between reserve and consume.
    pub think: Duration,
    /// Spend `think` as real wall-clock (`thread::sleep`) in the hold
    /// window. Default `false`: think is modeled in *virtual time* — the
    /// driver never sleeps, but the think duration still counts toward
    /// every recorded op latency — so high-client closed-loop runs stop
    /// burning wall-clock. Set `true` to reproduce the original timing,
    /// where lock-hold windows really overlap in wall-clock (required by
    /// the deadlock-interleaving tests and the historical E4–E6 benches).
    pub real_time_think: bool,
    /// Probability a reservation is abandoned instead of consumed.
    pub abandon_probability: f64,
    /// If true, each operation reserves *two* distinct pools before
    /// consuming either — half the clients in one order, half in the
    /// opposite order (the classic deadlock shape for lock-based
    /// reservations).
    pub multi_pool: bool,
    /// If true, client `t` works exclusively on pool `t % pools`
    /// (perfectly disjoint footprints when `clients <= pools`). Overrides
    /// the hotspot and multi-pool pool selection; amounts and abandonment
    /// still follow the PRNG.
    pub pinned_pools: bool,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            clients: 8,
            ops_per_client: 50,
            pools: 4,
            hotspot_probability: 0.5,
            zipf_exponent: 0.0,
            amount_max: 3,
            think: Duration::from_millis(1),
            real_time_think: false,
            abandon_probability: 0.1,
            multi_pool: false,
            pinned_pools: false,
            seed: 42,
        }
    }
}

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// Pools to reserve, in order. One entry unless `multi_pool`.
    pub pools: Vec<usize>,
    /// Units per pool.
    pub amount: u64,
    /// Abandon instead of consuming?
    pub abandon: bool,
}

impl WorkloadConfig {
    /// Generates client `client`'s operation stream (deterministic in
    /// `(seed, client)`).
    pub fn ops_for_client(&self, client: usize) -> Vec<Op> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (client as u64).wrapping_mul(0x9E3779B9));
        (0..self.ops_per_client)
            .map(|_| {
                let first = if self.pinned_pools {
                    client % self.pools.max(1)
                } else {
                    self.pick_pool(&mut rng)
                };
                let pools = if self.multi_pool && !self.pinned_pools && self.pools >= 2 {
                    let mut second = self.pick_pool(&mut rng);
                    while second == first {
                        second = self.pick_pool(&mut rng);
                    }
                    // Opposite lock orders by client parity.
                    let (a, b) = (first.min(second), first.max(second));
                    if client.is_multiple_of(2) {
                        vec![a, b]
                    } else {
                        vec![b, a]
                    }
                } else {
                    vec![first]
                };
                Op {
                    pools,
                    amount: rng.random_range(1..=self.amount_max.max(1)),
                    abandon: rng.random_bool(self.abandon_probability.clamp(0.0, 1.0)),
                }
            })
            .collect()
    }

    fn pick_pool(&self, rng: &mut StdRng) -> usize {
        if self.pools <= 1 {
            return 0;
        }
        if self.zipf_exponent > 0.0 {
            return sample_zipf(&zipf_cdf(self.pools, self.zipf_exponent), rng);
        }
        if rng.random_bool(self.hotspot_probability.clamp(0.0, 1.0)) {
            0
        } else {
            rng.random_range(0..self.pools)
        }
    }
}

/// Cumulative distribution of a Zipfian law over `pools` ranks with
/// exponent `s`: P(i) ∝ 1/(i+1)^s. Shared by the workload generator and
/// any scenario that needs the raw CDF (e.g. to compute expected hot-pool
/// mass).
pub fn zipf_cdf(pools: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..pools.max(1))
        .map(|i| 1.0 / ((i + 1) as f64).powf(s))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Draws a rank from a precomputed [`zipf_cdf`].
pub fn sample_zipf(cdf: &[f64], rng: &mut StdRng) -> usize {
    // Uniform in [0, 1) from 53 high bits, same construction the RNG's
    // own `random_bool` uses.
    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::default();
        assert_eq!(cfg.ops_for_client(3), cfg.ops_for_client(3));
        assert_ne!(cfg.ops_for_client(3), cfg.ops_for_client(4));
    }

    #[test]
    fn hotspot_skews_to_pool_zero() {
        let cfg = WorkloadConfig {
            hotspot_probability: 0.9,
            ops_per_client: 1000,
            ..WorkloadConfig::default()
        };
        let ops = cfg.ops_for_client(0);
        let hot = ops.iter().filter(|o| o.pools[0] == 0).count();
        assert!(hot > 850, "hot={hot} of 1000");
    }

    #[test]
    fn multi_pool_orders_differ_by_parity() {
        let cfg = WorkloadConfig {
            multi_pool: true,
            pools: 2,
            hotspot_probability: 0.0,
            ..WorkloadConfig::default()
        };
        let even = cfg.ops_for_client(0);
        let odd = cfg.ops_for_client(1);
        assert!(even.iter().all(|o| o.pools == vec![0, 1]));
        assert!(odd.iter().all(|o| o.pools == vec![1, 0]));
    }

    #[test]
    fn pinned_clients_never_leave_their_pool() {
        let cfg = WorkloadConfig {
            pinned_pools: true,
            pools: 8,
            clients: 8,
            multi_pool: true, // pinning wins: single-pool ops only
            ops_per_client: 50,
            ..WorkloadConfig::default()
        };
        for client in 0..cfg.clients {
            for op in cfg.ops_for_client(client) {
                assert_eq!(op.pools, vec![client % cfg.pools]);
            }
        }
    }

    #[test]
    fn zipf_skew_is_rank_ordered_and_deterministic() {
        let cfg = WorkloadConfig {
            zipf_exponent: 1.1,
            pools: 8,
            ops_per_client: 2000,
            ..WorkloadConfig::default()
        };
        assert_eq!(cfg.ops_for_client(5), cfg.ops_for_client(5));
        let mut counts = vec![0usize; cfg.pools];
        for op in cfg.ops_for_client(0) {
            counts[op.pools[0]] += 1;
        }
        // Rank 0 dominates, and the head outweighs the tail the way a
        // Zipf(1.1) law over 8 ranks must (pool 0 carries ~37% of mass).
        assert!(
            counts[0] > counts[1] && counts[1] > counts[4],
            "counts not rank-skewed: {counts:?}"
        );
        assert!(counts[0] > 2000 * 3 / 10, "head too light: {counts:?}");
        // Zipf selection overrides the hotspot knob but not pinning.
        let pinned = WorkloadConfig {
            pinned_pools: true,
            clients: 4,
            ..cfg
        };
        assert!(pinned.ops_for_client(3).iter().all(|o| o.pools == vec![3]));
    }

    #[test]
    fn zipf_cdf_is_normalised_and_monotonic() {
        let cdf = zipf_cdf(16, 1.1);
        assert_eq!(cdf.len(), 16);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        assert!((cdf[15] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn amounts_in_range() {
        let cfg = WorkloadConfig {
            amount_max: 5,
            ops_per_client: 500,
            ..WorkloadConfig::default()
        };
        for op in cfg.ops_for_client(7) {
            assert!((1..=5).contains(&op.amount));
            assert_eq!(op.pools.len(), 1);
        }
    }
}
