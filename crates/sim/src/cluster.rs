//! Cluster failure workloads: fault sweeps over the cross-shard
//! coordinator and shard crash–restart.
//!
//! These drive a [`PromiseCluster`] — N autonomous shard nodes behind one
//! faulty bus, coordinated by the prepare/commit protocol — and audit the
//! §4 unit guarantee *as extended across shards* after the dust settles:
//!
//! * **no partial grants** — every transaction's observable outcome is
//!   all-or-nothing: a confirmed grant's parts are all live and committed;
//!   a rejected or aborted transaction never leaves a *committed* hold on
//!   any shard (an unresolved *prepared* hold is in doubt, unusable, and
//!   reclaimed by expiry — the leak audit covers it);
//! * **no double grants** — per shard, every `(client, request)` pair has
//!   at most one grant-like journal record, however many times the
//!   retrying client resent it;
//! * **no oversells** — per shard, quantity promised to live promises
//!   never exceeds quantity on hand;
//! * **no leaks** — after every duration passes, expiry reclaims every
//!   hold the sweep abandoned (crashed coordinators included, once
//!   recovery has run).
//!
//! With [`ClusterSweepConfig::leases`] the same sweep runs over per-shard
//! escrow leases and adds two lease audits: per shard, promised quantity
//! never exceeds the shard's lease slice (**no lease oversells**); per
//! pool, the cluster-wide lease sum never exceeds the registered quantity
//! (**no minting**). [`run_lease_sweep`] is the dedicated lease scenario:
//! a Zipf-skewed workload interleaved with rebalance cycles, an armed
//! mid-rebalance crash, per-shard crash–restart with digest comparison,
//! and a heal check that the lease sum returns to the pool total.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use promises_cluster::{ClusterDecision, CoordError, CrashPoint, GrantPart, PromiseCluster};
use promises_core::{
    ClientId, Clock, JournalOp, PoolSchema, PromiseId, PromiseJournal, PromiseManager, RequestId,
};
use promises_faults::{FaultInjector, FaultScenario};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Shape of a cluster fault-sweep workload.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSweepConfig {
    /// Shard count.
    pub shards: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Grant attempts per client.
    pub ops_per_client: usize,
    /// Quantity pools, spread round-robin over the shards.
    pub pools: usize,
    /// Units seeded per pool.
    pub qty: u64,
    /// Per-predicate amount is uniform in `1..=amount_max`.
    pub amount_max: u64,
    /// Probability an op requests a *cross-shard* footprint (two pools on
    /// different shards) instead of the single-shard fast path.
    pub cross_shard_probability: f64,
    /// Probability a cross-shard op arms an injected coordinator crash.
    pub crash_probability: f64,
    /// Probability a granted promise is released (the rest are abandoned,
    /// for the leak audit).
    pub release_probability: f64,
    /// Run the cluster with per-shard escrow leases: every pool is hosted
    /// on every shard, clients are pinned home shard `c % shards`, and the
    /// lease audits join the post-run checks.
    pub leases: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for ClusterSweepConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            clients: 4,
            ops_per_client: 25,
            pools: 4,
            qty: 100_000,
            amount_max: 3,
            cross_shard_probability: 0.4,
            crash_probability: 0.05,
            release_probability: 0.6,
            leases: false,
            seed: 42,
        }
    }
}

/// Outcome of one cluster sweep, including the post-run audits.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterRunReport {
    /// Grant attempts.
    pub attempts: u64,
    /// Unit grants confirmed (single- and cross-shard).
    pub granted: u64,
    /// Cross-shard grants among `granted`.
    pub cross_shard_granted: u64,
    /// Unit rejections.
    pub rejected: u64,
    /// Coordinator crashes injected (transactions left for recovery).
    pub crashed: u64,
    /// Transport-level failures surfaced by the coordinator.
    pub transport_failures: u64,
    /// Undecided transactions recovery presumed aborted.
    pub presumed_aborted: u64,
    /// Committed transactions whose resolutions recovery resent.
    pub commits_resent: u64,
    /// Transactions whose observable outcome was not all-or-nothing.
    /// The §4 unit guarantee says **always zero**.
    pub partial_grants: u64,
    /// Per-shard `(client, request)` pairs with more than one grant-like
    /// journal record. **Always zero.**
    pub double_grants: u64,
    /// Shards whose promised quantity exceeded on-hand. **Always zero.**
    pub oversells: u64,
    /// Promises still live after recovery + full expiry. **Always zero.**
    pub live_after_reap: usize,
    /// Coordinator dedup entries surviving past every retry window.
    /// Bounded state says **always zero** once duration + grace pass.
    pub dedup_after_reap: usize,
    /// Shard grant-index tombstones surviving past the eviction grace.
    /// **Always zero.**
    pub tombstones_after_reap: usize,
    /// Shards whose promised quantity exceeded their lease slice (leases
    /// only). **Always zero.**
    pub lease_oversells: u64,
    /// Pools whose cluster-wide lease sum exceeded the registered quantity
    /// (leases only — lease units must never be minted). **Always zero.**
    pub lease_sum_violations: u64,
    /// Orphan Abort records recovery replay tolerated (counted, not
    /// swallowed).
    pub orphan_aborts: u64,
    /// Wall-clock duration of the workload phase.
    pub elapsed: Duration,
}

impl ClusterRunReport {
    /// True when every audited guarantee held.
    pub fn clean(&self) -> bool {
        self.partial_grants == 0
            && self.double_grants == 0
            && self.oversells == 0
            && self.live_after_reap == 0
            && self.dedup_after_reap == 0
            && self.tombstones_after_reap == 0
            && self.lease_oversells == 0
            && self.lease_sum_violations == 0
    }
}

/// Builds a cluster per `cfg` with `scenario` installed on the bus. With
/// `cfg.leases` the cluster runs per-shard escrow leases and client `c` is
/// pinned to home shard `c % shards`.
pub fn cluster_harness(scenario: FaultScenario, cfg: &ClusterSweepConfig) -> PromiseCluster {
    let cluster = PromiseCluster::build(cfg.shards, cfg.seed);
    if cfg.leases {
        let dir = cluster.enable_leases();
        for c in 0..cfg.clients {
            dir.pin_home(&format!("client-{c}"), c % cfg.shards.max(1));
        }
    }
    for i in 0..cfg.pools {
        cluster.register_quantity_pool(&crate::workload::pool_name(i), cfg.qty);
    }
    cluster
        .bus
        .set_fault_injector(Some(Arc::new(FaultInjector::new(scenario))));
    cluster
}

/// Picks two pools owned by *different* shards (with pools spread
/// round-robin, pools `i` and `i+1` always differ when `shards > 1`).
fn cross_shard_pools(cfg: &ClusterSweepConfig, rng: &mut StdRng) -> (String, String) {
    let a = rng.random_range(0..cfg.pools);
    let b = (a + 1) % cfg.pools;
    (crate::workload::pool_name(a), crate::workload::pool_name(b))
}

/// What one workload op observed, recorded for the post-run audit.
enum OpOutcome {
    /// Unit grant; `released` if the client then released the parts.
    Granted {
        parts: Vec<GrantPart>,
        released: bool,
    },
    /// Unit rejection, or a transport failure the coordinator aborted.
    RejectedOrAborted,
    /// The coordinator crashed mid-transaction; the coordinator log
    /// decides the expected outcome.
    Crashed,
}

/// Drives `cfg.clients` concurrent clients through the coordinator under
/// `scenario`, runs coordinator recovery, then audits partial grants,
/// double grants, oversells and leaks. Returns the report and the
/// quiesced cluster for further audits (spans, journals).
pub fn run_cluster_fault_sweep(
    scenario: FaultScenario,
    cfg: &ClusterSweepConfig,
) -> (ClusterRunReport, PromiseCluster) {
    let cluster = cluster_harness(scenario, cfg);
    let granted = AtomicU64::new(0);
    let cross_granted = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let crashed = AtomicU64::new(0);
    let transport = AtomicU64::new(0);
    let outcomes: Mutex<Vec<(String, String, OpOutcome)>> = Mutex::new(Vec::new());

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..cfg.clients {
            let cluster = &cluster;
            let granted = &granted;
            let cross_granted = &cross_granted;
            let rejected = &rejected;
            let crashed = &crashed;
            let transport = &transport;
            let outcomes = &outcomes;
            let cfg = *cfg;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(c as u64 * 6151));
                let client = format!("client-{c}");
                for op in 0..cfg.ops_per_client {
                    let cross = cfg.shards > 1 && rng.random_bool(cfg.cross_shard_probability);
                    let amount = rng.random_range(1..=cfg.amount_max);
                    let predicates = if cross {
                        let (pa, pb) = cross_shard_pools(&cfg, &mut rng);
                        let amount_b = rng.random_range(1..=cfg.amount_max);
                        vec![
                            format!("qty('{pa}') >= {amount}"),
                            format!("qty('{pb}') >= {amount_b}"),
                        ]
                    } else {
                        let pool = crate::workload::pool_name(rng.random_range(0..cfg.pools));
                        vec![format!("qty('{pool}') >= {amount}")]
                    };
                    if cross && rng.random_bool(cfg.crash_probability) {
                        let point = if rng.random_bool(0.5) {
                            CrashPoint::AfterPrepare
                        } else {
                            CrashPoint::AfterCommitLogged
                        };
                        cluster.coordinator.set_crash_point(Some(point));
                    }
                    let rid = format!("c{c}-o{op}");
                    let outcome =
                        match cluster
                            .coordinator
                            .grant(&client, &rid, &predicates, 3_600_000)
                        {
                            Ok(ClusterDecision::Granted { parts }) => {
                                granted.fetch_add(1, Ordering::Relaxed);
                                if parts.len() > 1 {
                                    cross_granted.fetch_add(1, Ordering::Relaxed);
                                }
                                let released = rng.random_bool(cfg.release_probability);
                                if released {
                                    cluster.coordinator.release(&parts);
                                }
                                OpOutcome::Granted { parts, released }
                            }
                            Ok(ClusterDecision::Rejected { .. }) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                                OpOutcome::RejectedOrAborted
                            }
                            Err(CoordError::Crashed(_)) => {
                                crashed.fetch_add(1, Ordering::Relaxed);
                                OpOutcome::Crashed
                            }
                            Err(CoordError::Transport(_)) => {
                                transport.fetch_add(1, Ordering::Relaxed);
                                OpOutcome::RejectedOrAborted
                            }
                            Err(e) => panic!("unexpected coordinator error: {e}"),
                        };
                    outcomes
                        .lock()
                        .unwrap()
                        .push((client.clone(), rid, outcome));
                }
            });
        }
    });
    let elapsed = start.elapsed();

    // ---- Audits run on a quiet system. ----
    cluster.bus.set_fault_injector(None);
    let recovery = cluster
        .coordinator
        .recover()
        .expect("coordinator recovery succeeds");

    let mut report = ClusterRunReport {
        attempts: (cfg.clients * cfg.ops_per_client) as u64,
        granted: granted.into_inner(),
        cross_shard_granted: cross_granted.into_inner(),
        rejected: rejected.into_inner(),
        crashed: crashed.into_inner(),
        transport_failures: transport.into_inner(),
        presumed_aborted: recovery.presumed_aborted as u64,
        commits_resent: recovery.commits_resent as u64,
        orphan_aborts: recovery.orphan_aborts as u64,
        elapsed,
        ..ClusterRunReport::default()
    };
    audit_cluster(&cluster, &outcomes.into_inner().unwrap(), &mut report);
    (report, cluster)
}

/// The live *committed* hold for one sub-request: `Some` only when the
/// shard holds it and it is no longer in doubt.
fn committed_hold(
    cluster: &PromiseCluster,
    shard: usize,
    client: &str,
    rid: &str,
) -> Option<PromiseId> {
    let pm = &cluster.nodes[shard].pm;
    let id = pm.promise_for_request(&ClientId(client.to_owned()), &RequestId(rid.to_owned()))?;
    (!pm.is_prepared(id)).then_some(id)
}

/// The post-run audits. See the module docs for each guarantee.
///
/// Partial grants are judged on *observable* state after recovery: a
/// confirmed grant's parts must all be live committed holds (unless the
/// client released them); a rejected/aborted transaction must not expose
/// a committed hold on any shard; a crashed transaction follows the
/// coordinator log — logged-committed means every part lives, anything
/// else means no committed hold survives. Unresolved *prepared* holds are
/// in doubt, not grants, and fall to the leak audit.
fn audit_cluster(
    cluster: &PromiseCluster,
    outcomes: &[(String, String, OpOutcome)],
    report: &mut ClusterRunReport,
) {
    let summary = cluster
        .coordinator
        .log()
        .replay()
        .expect("coordinator log replays");
    let committed_txns: std::collections::HashMap<(String, String), Vec<usize>> = summary
        .committed
        .iter()
        .map(|(txn, shards)| ((txn.client.clone(), txn.request.clone()), shards.clone()))
        .collect();

    for (client, rid, outcome) in outcomes {
        let partial = match outcome {
            OpOutcome::Granted { released: true, .. } => false, // leak audit covers
            OpOutcome::Granted {
                parts,
                released: false,
            } => !parts.iter().all(|part| {
                let key = if parts.len() > 1 {
                    format!("{rid}@s{}", part.shard)
                } else {
                    rid.clone()
                };
                committed_hold(cluster, part.shard, client, &key)
                    == Some(PromiseId(part.promise_id))
            }),
            OpOutcome::RejectedOrAborted => (0..cluster.shard_count()).any(|shard| {
                committed_hold(cluster, shard, client, &format!("{rid}@s{shard}")).is_some()
            }),
            OpOutcome::Crashed => {
                match committed_txns.get(&(client.clone(), rid.clone())) {
                    // Logged commit: recovery must have landed every part.
                    Some(shards) => !shards.iter().all(|&shard| {
                        committed_hold(cluster, shard, client, &format!("{rid}@s{shard}")).is_some()
                    }),
                    // Presumed abort: no committed hold may survive.
                    None => (0..cluster.shard_count()).any(|shard| {
                        committed_hold(cluster, shard, client, &format!("{rid}@s{shard}")).is_some()
                    }),
                }
            }
        };
        if partial {
            report.partial_grants += 1;
        }
    }

    // Double-grant audit from the shard journals: at most one grant-like
    // record per (client, full request id), however noisy the transport.
    for node in &cluster.nodes {
        let mut grant_counts: std::collections::HashMap<(String, String), u32> =
            std::collections::HashMap::new();
        if let Ok(entries) = node.journal.entries() {
            for entry in entries {
                if let JournalOp::Grant(rec) | JournalOp::Prepared(rec) = entry.op {
                    *grant_counts
                        .entry((rec.client.0.clone(), rec.request.0.clone()))
                        .or_insert(0) += 1;
                }
            }
        }
        report.double_grants += grant_counts.values().filter(|&&n| n > 1).count() as u64;

        // Oversell audit, per shard.
        for (pool, demanded) in node.pm.promised_quantities() {
            let on_hand = node.pm.quantity_on_hand(pool.clone()).unwrap_or(0);
            if demanded > on_hand {
                report.oversells += 1;
            }
        }
    }

    // Lease audits (leased clusters only): promised ≤ lease per shard,
    // Σ leases ≤ registered quantity per pool. Run while holds are still
    // outstanding, before the leak advance expires them.
    if cluster.lease_directory().is_some() {
        let (oversells, sum_violations) = audit_leases(cluster);
        report.lease_oversells += oversells;
        report.lease_sum_violations += sum_violations;
    }

    // Leak audit: advance past every duration; expiry must reclaim
    // whatever the sweep abandoned (dropped releases, in-doubt holds of
    // decided-abort transactions whose abort message was lost, …).
    cluster.advance_and_prune(4_000_000);
    report.live_after_reap = cluster.live_count();

    // Bounded-state audit: one more tick past every eviction grace and
    // both dedup disciplines must have drained — the coordinator's
    // outcome index and the shards' expiry tombstones alike. Anything
    // left would grow without bound in a long-lived cluster.
    cluster.advance_and_prune(400_000);
    report.dedup_after_reap = cluster.coordinator.dedup_len();
    report.tombstones_after_reap = cluster.nodes.iter().map(|n| n.pm.tombstone_count()).sum();
}

/// Cluster-wide lease sum for one pool, read from the authoritative
/// per-shard managers (not the advisory directory).
fn lease_sum(cluster: &PromiseCluster, pool: &str) -> u64 {
    cluster
        .nodes
        .iter()
        .map(|n| n.pm.lease_of(pool).unwrap_or(0))
        .sum()
}

/// The two lease invariants, audited from authoritative shard state:
/// per shard, promised quantity never exceeds the lease slice (escrow
/// never oversells); per pool, Σ leases never exceeds the registered
/// quantity (rebalancing never mints units — a crash between a withdraw
/// and its deposit may only *lose* headroom, which the heal pass
/// re-credits). Returns `(oversells, sum_violations)`.
fn audit_leases(cluster: &PromiseCluster) -> (u64, u64) {
    let mut oversells = 0;
    let mut sum_violations = 0;
    for (pool, total, _) in cluster.registered_pools() {
        for node in &cluster.nodes {
            let lease = node.pm.lease_of(pool.as_str()).unwrap_or(0);
            if node.pm.promised_qty(pool.as_str()) > lease {
                oversells += 1;
            }
        }
        if lease_sum(cluster, &pool) > total {
            sum_violations += 1;
        }
    }
    (oversells, sum_violations)
}

/// Outcome of one [`run_lease_sweep`]: a Zipf-skewed grant/release
/// workload over a leased cluster with rebalance cycles, an armed
/// mid-rebalance crash, per-shard crash–restart, and the lease audits.
#[derive(Debug, Clone)]
pub struct LeaseSweepReport {
    /// Grant attempts.
    pub attempts: u64,
    /// Unit grants confirmed.
    pub granted: u64,
    /// Unit rejections.
    pub rejected: u64,
    /// Grants served by the client's home-shard lease — no coordinator.
    pub local_grants: u64,
    /// Grants that fell back to the ownership/2PC path.
    pub coordinator_fallbacks: u64,
    /// Multi-pool footprints the lease served locally, skipping the
    /// Begin/Commit records a 2PC round would have logged.
    pub coord_log_skips: u64,
    /// Lease units the rebalancer migrated between shards.
    pub rebalance_moved: u64,
    /// Whether the armed mid-rebalance crash actually fired (it needs
    /// observed demand on at least one pool — certain under Zipf skew).
    pub crash_fired: bool,
    /// Stranded units the post-crash heal cycle re-credited.
    pub healed_after_crash: u64,
    /// Per-shard `(pre-kill, post-recovery)` state digests.
    pub digests: Vec<(String, String)>,
    /// Σ leases ≤ pool total on every pool right after the crashed cycle
    /// (the sum may shrink, never grow). **Always true.**
    pub lease_sum_ok_after_crash: bool,
    /// Σ leases == pool total on every pool after the heal cycle.
    /// **Always true.**
    pub lease_sum_restored: bool,
    /// Shards caught with promised > lease. **Always zero.**
    pub lease_oversells: u64,
    /// Pools caught with Σ leases > total. **Always zero.**
    pub lease_sum_violations: u64,
    /// Promises still live after full expiry. **Always zero.**
    pub live_after_reap: usize,
    /// Wall-clock duration of the workload phase.
    pub elapsed: Duration,
}

impl LeaseSweepReport {
    /// True when every shard's recovered state is byte-equivalent to its
    /// pre-kill state (lease lines included).
    pub fn digests_match(&self) -> bool {
        self.digests.iter().all(|(pre, post)| pre == post)
    }

    /// Fraction of lease-routed decisions served locally:
    /// `local / (local + fallbacks)`.
    pub fn local_ratio(&self) -> f64 {
        let routed = self.local_grants + self.coordinator_fallbacks;
        if routed == 0 {
            return 0.0;
        }
        self.local_grants as f64 / routed as f64
    }

    /// True when every audited lease guarantee held.
    pub fn clean(&self) -> bool {
        self.lease_oversells == 0
            && self.lease_sum_violations == 0
            && self.lease_sum_ok_after_crash
            && self.lease_sum_restored
            && self.digests_match()
            && self.live_after_reap == 0
    }
}

/// The dedicated lease scenario: drives `cfg.clients` threads of
/// Zipf-skewed grants (pool rank drawn ∝ 1/(i+1)^1.1; a
/// `cross_shard_probability` fraction add a second pool to the footprint)
/// against a leased cluster in rounds interleaved with
/// [`PromiseCluster::advance_and_prune`] rebalance cycles, then:
///
/// 1. audits the lease invariants with holds still outstanding;
/// 2. arms a mid-rebalance crash (withdraws land, deposits don't) and
///    checks the lease sum only ever *shrinks*;
/// 3. kills and journal-restarts every shard, comparing state digests —
///    the lease split must survive byte-for-byte;
/// 4. runs the next rebalance cycle and checks the heal pass re-credits
///    the stranded headroom (Σ leases returns to the pool total);
/// 5. advances past every duration for the leak audit.
pub fn run_lease_sweep(cfg: &ClusterSweepConfig) -> (LeaseSweepReport, PromiseCluster) {
    let leased_cfg = ClusterSweepConfig {
        leases: true,
        ..*cfg
    };
    let mut cluster = cluster_harness(FaultScenario::quiet(cfg.seed), &leased_cfg);
    cluster.bus.set_fault_injector(None);

    let cdf = crate::workload::zipf_cdf(cfg.pools, 1.1);
    let granted = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);

    let rounds = 4usize;
    let per_round = cfg.ops_per_client.div_ceil(rounds).max(1);
    let start = Instant::now();
    for round in 0..rounds {
        std::thread::scope(|scope| {
            for c in 0..cfg.clients {
                let cluster = &cluster;
                let cdf = &cdf;
                let granted = &granted;
                let rejected = &rejected;
                let cfg = leased_cfg;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(
                        cfg.seed ^ ((round * 8191 + c) as u64).wrapping_mul(0x9E3779B9),
                    );
                    let client = format!("client-{c}");
                    for op in 0..per_round {
                        let first = crate::workload::sample_zipf(cdf, &mut rng);
                        let amount = rng.random_range(1..=cfg.amount_max);
                        let mut predicates = vec![format!(
                            "qty('{}') >= {amount}",
                            crate::workload::pool_name(first)
                        )];
                        if cfg.pools > 1 && rng.random_bool(cfg.cross_shard_probability) {
                            let mut second = crate::workload::sample_zipf(cdf, &mut rng);
                            while second == first {
                                second = crate::workload::sample_zipf(cdf, &mut rng);
                            }
                            predicates.push(format!(
                                "qty('{}') >= {}",
                                crate::workload::pool_name(second),
                                rng.random_range(1..=cfg.amount_max)
                            ));
                        }
                        let rid = format!("r{round}-c{c}-o{op}");
                        match cluster
                            .coordinator
                            .grant(&client, &rid, &predicates, 3_600_000)
                        {
                            Ok(ClusterDecision::Granted { parts }) => {
                                granted.fetch_add(1, Ordering::Relaxed);
                                if rng.random_bool(cfg.release_probability) {
                                    cluster.coordinator.release(&parts);
                                }
                            }
                            Ok(ClusterDecision::Rejected { .. }) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("quiet-bus lease sweep errored: {e}"),
                        }
                    }
                });
            }
        });
        if round + 1 < rounds {
            // Rebalance between rounds: headroom chases the Zipf head.
            cluster.advance_and_prune(10_000);
        }
    }
    let elapsed = start.elapsed();

    // Audit with holds still outstanding (the interesting instant).
    let (mut lease_oversells, mut lease_sum_violations) = audit_leases(&cluster);

    // The mid-rebalance crash: final-round demand is still pending, so
    // the cycle withdraws surpluses and dies before any deposit.
    cluster.arm_rebalance_crash();
    let crash = cluster.rebalance_leases().expect("leases are enabled");
    let totals = cluster.registered_pools();
    let lease_sum_ok_after_crash = totals
        .iter()
        .all(|(pool, total, _)| lease_sum(&cluster, pool) <= *total);

    // Kill and journal-rebuild every shard: the (possibly shrunken) lease
    // split must be reconstructed byte-for-byte.
    let mut digests = Vec::new();
    for index in 0..cluster.shard_count() {
        let pre = cluster.nodes[index].pm.state_digest();
        cluster.crash_restart_shard(index);
        let post = cluster.nodes[index].pm.state_digest();
        digests.push((pre, post));
    }

    // The next cycle's heal pass re-credits whatever the crash stranded.
    let heal = cluster.rebalance_leases().expect("leases are enabled");
    let lease_sum_restored = totals
        .iter()
        .all(|(pool, total, _)| lease_sum(&cluster, pool) == *total);

    // Leak audit + a second lease audit on the quiesced cluster.
    cluster.advance_and_prune(4_000_000);
    let (quiet_oversells, quiet_sum_violations) = audit_leases(&cluster);
    lease_oversells += quiet_oversells;
    lease_sum_violations += quiet_sum_violations;

    let counter = |name: &str| cluster.telemetry.counter(name).load(Ordering::Relaxed);
    let report = LeaseSweepReport {
        attempts: (cfg.clients * per_round * rounds) as u64,
        granted: granted.into_inner(),
        rejected: rejected.into_inner(),
        local_grants: counter("cluster.lease.local_grants"),
        coordinator_fallbacks: counter("cluster.lease.coordinator_fallbacks"),
        coord_log_skips: counter("cluster.lease.coord_log_skips"),
        rebalance_moved: counter("cluster.lease.rebalance_moved"),
        crash_fired: crash.crashed,
        healed_after_crash: heal.healed,
        digests,
        lease_sum_ok_after_crash,
        lease_sum_restored,
        lease_oversells,
        lease_sum_violations,
        live_after_reap: cluster.live_count(),
        elapsed,
    };
    (report, cluster)
}

/// Where a killed shard comes back from in the crash–restart harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartTarget {
    /// The PR 5 model: the node's process dies but its disk survives, so
    /// the same node restarts from its own journal.
    SameNode,
    /// The fail-over model: node *and* disk are lost; the shard's warm
    /// follower is promoted behind an epoch-fenced endpoint.
    Follower,
}

/// Outcome of a cluster crash–restart run.
#[derive(Debug, Clone)]
pub struct ClusterCrashReport {
    /// Per-shard: digest before the kill, digest after journal recovery.
    pub digests: Vec<(String, String)>,
    /// Per-shard in-doubt holds recovery found (the killed-mid-commit
    /// transaction's holds).
    pub in_doubt: Vec<usize>,
    /// Live promises after coordinator recovery resolved the in-doubt
    /// transaction.
    pub live_after_recovery: usize,
    /// Live promises from transactions committed before the kill.
    pub committed_before_kill: usize,
}

impl ClusterCrashReport {
    /// True when every shard's recovered state is byte-equivalent to its
    /// pre-kill state (prepared marks included).
    pub fn digests_match(&self) -> bool {
        self.digests.iter().all(|(pre, post)| pre == post)
    }
}

/// The satellite crash-restart scenario: commit some cross-shard grants,
/// then kill *every shard* between `Prepare` and `Commit` of one more
/// transaction (the coordinator crashes with them), bring each shard back
/// per `target` — same-node journal restart, or warm-follower promotion —
/// compare per-shard `state_digest()`s, and let coordinator recovery
/// resolve the in-doubt holds by presumed abort.
pub fn run_cluster_crash_restart(
    seed: u64,
    committed_grants: usize,
    target: RestartTarget,
) -> ClusterCrashReport {
    let mut cluster = PromiseCluster::build(2, seed);
    cluster.register_quantity_pool("alpha", 10_000);
    cluster.register_quantity_pool("beta", 10_000);
    if target == RestartTarget::Follower {
        cluster.enable_replication();
    }

    let mut committed = 0usize;
    for i in 0..committed_grants {
        let decision = cluster
            .coordinator
            .grant(
                "steady",
                &format!("pre{i}"),
                &[
                    format!("qty('alpha') >= {}", 1 + (i as u64 % 3)),
                    format!("qty('beta') >= {}", 1 + (i as u64 % 2)),
                ],
                10_000_000,
            )
            .expect("quiet grant");
        if decision.is_granted() {
            committed += 2;
        }
    }

    // The kill: prepares land on both shards, then everything dies before
    // any commit resolution is sent.
    cluster
        .coordinator
        .set_crash_point(Some(CrashPoint::AfterPrepare));
    let err = cluster
        .coordinator
        .grant(
            "doomed",
            "rx",
            &["qty('alpha') >= 5".into(), "qty('beta') >= 5".into()],
            10_000_000,
        )
        .expect_err("armed crash fires");
    assert!(matches!(err, CoordError::Crashed(_)), "{err:?}");

    let mut digests = Vec::new();
    let mut in_doubt = Vec::new();
    for index in 0..cluster.shard_count() {
        let pre = cluster.nodes[index].pm.state_digest();
        let recovery = match target {
            RestartTarget::SameNode => cluster.crash_restart_shard(index),
            RestartTarget::Follower => {
                cluster.kill_shard(index);
                cluster.promote_follower(index).recovery
            }
        };
        let post = cluster.nodes[index].pm.state_digest();
        digests.push((pre, post));
        in_doubt.push(recovery.in_doubt);
    }

    // The restarted coordinator (same durable log) resolves the in-doubt
    // transaction: undecided → presumed abort.
    let recovery = cluster
        .coordinator
        .recover()
        .expect("coordinator recovery succeeds");
    assert_eq!(recovery.presumed_aborted, 1);

    ClusterCrashReport {
        digests,
        in_doubt,
        live_after_recovery: cluster.live_count(),
        committed_before_kill: committed,
    }
}

/// The E16 equivalence reference: a *fresh* promise manager recovered
/// from a snapshot of the dead leader's journal lines, exactly as the
/// promotion path rebuilds one from the follower's copy. Byte-equality of
/// this digest with the promoted follower's proves the replica carried
/// every record the leader's disk held — nothing dropped, nothing
/// invented. Seeds mirror [`PromiseCluster::promote_follower`]: non-leased
/// owned pools get their registered quantity; leased pools re-sync their
/// on-hand from journalled `L` records during recovery.
fn clean_replay_digest(cluster: &PromiseCluster, index: usize, leader_lines: &[String]) -> String {
    let rm = Arc::new(promises_rm::ResourceManager::new());
    let pm = PromiseManager::new(rm, Arc::clone(&cluster.clock) as Arc<dyn Clock>);
    for pool in cluster.pools_on(index) {
        pm.register_pool(PoolSchema::quantity(pool.as_str()));
    }
    if cluster.lease_directory().is_none() {
        for (name, qty, shard) in cluster.registered_pools() {
            if shard == index {
                pm.seed_quantity(name.as_str(), qty)
                    .expect("re-seed replay reference");
            }
        }
    }
    let journal =
        Arc::new(PromiseJournal::from_lines(leader_lines).expect("leader journal intact"));
    pm.recover(journal).expect("clean replay succeeds");
    pm.state_digest()
}

/// One fail-over's digest triple: the dead leader's would-be state, the
/// promoted follower's state, and the clean-replay reference.
#[derive(Debug, Clone)]
pub struct FailoverDigests {
    /// Which kill this was (`"2pc-s2"`, `"rebalance-s0"`, …).
    pub label: String,
    /// `state_digest()` of the leader at the instant it was killed.
    pub pre_kill: String,
    /// `state_digest()` of the promoted follower, before any new traffic.
    pub promoted: String,
    /// [`clean_replay_digest`] over the dead leader's journal lines.
    pub clean_replay: String,
}

impl FailoverDigests {
    /// True when all three digests are byte-identical.
    pub fn matches(&self) -> bool {
        self.pre_kill == self.promoted && self.promoted == self.clean_replay
    }
}

/// Outcome of one [`run_failover_sweep`]: every shard leader killed once
/// mid-2PC (phase A) and once mid-lease-rebalance (phase B), each time
/// promoted from its warm follower, with the full cluster audit suite on
/// both clusters.
#[derive(Debug, Clone)]
pub struct FailoverSweepReport {
    /// Grant attempts across both phases.
    pub attempts: u64,
    /// Unit grants confirmed.
    pub granted: u64,
    /// Unit rejections.
    pub rejected: u64,
    /// Coordinator crashes armed on doomed cross-shard grants (one per
    /// shard in phase A, alternating after-prepare / after-commit-logged).
    pub doomed_crashes: u64,
    /// Follower promotions performed (2 × shard count).
    pub failovers: u64,
    /// Prepared holds the promoted replicas reported in doubt.
    pub in_doubt_recovered: u64,
    /// Doomed transactions recovery presumed aborted.
    pub presumed_aborted: u64,
    /// Doomed transactions whose logged commits recovery resent — against
    /// the *promoted* follower's epoch-fenced endpoint.
    pub commits_resent: u64,
    /// Armed mid-rebalance crashes that fired in phase B.
    pub rebalance_crashes_fired: u64,
    /// Whether every pool's lease sum healed back to its registered total
    /// after each phase-B promotion. **Always true.**
    pub lease_sums_restored: bool,
    /// The digest triple for every fail-over. All must match.
    pub digests: Vec<FailoverDigests>,
    /// Observable all-or-nothing violations. **Always zero.**
    pub partial_grants: u64,
    /// Duplicate grant-like journal records per (client, request).
    /// **Always zero.**
    pub double_grants: u64,
    /// Shards with promised > on-hand. **Always zero.**
    pub oversells: u64,
    /// Shards with promised > lease (phase B). **Always zero.**
    pub lease_oversells: u64,
    /// Pools with Σ leases > total (phase B). **Always zero.**
    pub lease_sum_violations: u64,
    /// Promises surviving recovery + full expiry. **Always zero.**
    pub live_after_reap: usize,
    /// Coordinator dedup entries surviving the eviction grace. **Zero.**
    pub dedup_after_reap: usize,
    /// Shard tombstones surviving the eviction grace. **Zero.**
    pub tombstones_after_reap: usize,
    /// Journal lines shipped over every replication link.
    pub repl_shipped_lines: u64,
    /// Shipments the `repl-drop` point lost in flight (each retried).
    pub repl_dropped_shipments: u64,
    /// Worst promotion MTTR observed (kill decision → promoted leader
    /// answering on its new endpoint).
    pub mttr_max: Duration,
    /// Mean promotion MTTR.
    pub mttr_mean: Duration,
    /// Wall-clock duration of the whole sweep.
    pub elapsed: Duration,
}

impl FailoverSweepReport {
    /// True when every fail-over's digest triple is byte-identical.
    pub fn digests_match(&self) -> bool {
        self.digests.iter().all(FailoverDigests::matches)
    }

    /// True when every audited guarantee held.
    pub fn clean(&self) -> bool {
        self.partial_grants == 0
            && self.double_grants == 0
            && self.oversells == 0
            && self.lease_oversells == 0
            && self.lease_sum_violations == 0
            && self.digests_match()
            && self.lease_sums_restored
            && self.live_after_reap == 0
            && self.dedup_after_reap == 0
            && self.tombstones_after_reap == 0
    }
}

/// Running grant tallies for [`run_failover_sweep`].
#[derive(Debug, Default)]
struct GrantCounters {
    attempts: u64,
    granted: u64,
    rejected: u64,
}

/// One audited grant attempt on a quiet bus: granted (maybe released) or
/// rejected — any coordinator error fails the sweep outright.
fn sweep_grant(
    cluster: &PromiseCluster,
    outcomes: &mut Vec<(String, String, OpOutcome)>,
    rng: &mut StdRng,
    counters: &mut GrantCounters,
    client: &str,
    rid: String,
    predicates: &[String],
) {
    counters.attempts += 1;
    match cluster
        .coordinator
        .grant(client, &rid, predicates, 3_600_000)
    {
        Ok(ClusterDecision::Granted { parts }) => {
            counters.granted += 1;
            let released = rng.random_bool(0.5);
            if released {
                cluster.coordinator.release(&parts);
            }
            outcomes.push((
                client.to_owned(),
                rid,
                OpOutcome::Granted { parts, released },
            ));
        }
        Ok(ClusterDecision::Rejected { .. }) => {
            counters.rejected += 1;
            outcomes.push((client.to_owned(), rid, OpOutcome::RejectedOrAborted));
        }
        Err(e) => panic!("unexpected coordinator error in failover sweep: {e}"),
    }
}

/// Promotion duration for one shard, bookkept into the shared vectors.
fn fail_over(
    cluster: &mut PromiseCluster,
    index: usize,
    label: String,
    digests: &mut Vec<FailoverDigests>,
    mttrs: &mut Vec<Duration>,
) -> promises_core::RecoveryReport {
    cluster.kill_shard(index);
    let pre_kill = cluster.nodes[index].pm.state_digest();
    let leader_lines = cluster.nodes[index].journal.lines();
    let fo = cluster.promote_follower(index);
    let promoted = cluster.nodes[index].pm.state_digest();
    let clean_replay = clean_replay_digest(cluster, index, &leader_lines);
    digests.push(FailoverDigests {
        label,
        pre_kill,
        promoted,
        clean_replay,
    });
    mttrs.push(fo.mttr);
    fo.recovery
}

/// The E16 fail-over sweep. Two phases, both with warm followers attached
/// and replication faults (segment drops and lagged acks) injected at
/// `repl_fault_rate`:
///
/// **Phase A — kill mid-2PC.** A non-leased 4-shard cluster (every
/// footprint really crosses the coordinator). For each shard `k`: steady
/// single- and cross-shard grants; then a doomed cross-shard grant
/// touching `k` with an armed coordinator crash (after-prepare for even
/// `k`, after-commit-logged for odd — the two sides of the commit point);
/// then leader `k` is killed and its follower promoted; then coordinator
/// recovery re-resolves the doomed transaction's in-doubt `rid@sN` holds
/// against the promoted node (presumed abort, or commit resend); then more
/// grants prove the epoch-fenced endpoint serves.
///
/// **Phase B — kill mid-lease-rebalance.** A leased 4-shard cluster. For
/// each shard `j`: a round of home-shard grants builds demand; an armed
/// mid-rebalance crash fires (withdraws landed, deposits lost); leader `j`
/// is killed in exactly that stranded-headroom state and its follower
/// promoted; the next rebalance cycle's heal pass must restore every
/// pool's lease sum to its registered total.
///
/// Every kill captures the digest triple (dead leader / promoted follower
/// / clean replay of the leader's journal); the full audit suite — partial
/// grants, double grants, oversells, lease invariants, leaks, bounded
/// state — runs on both clusters afterwards.
pub fn run_failover_sweep(seed: u64, repl_fault_rate: f64) -> FailoverSweepReport {
    const SHARDS: usize = 4;
    const CLIENTS: usize = 3;
    const DURATION_MS: u64 = 3_600_000;
    let repl_injector = |salt: u64| {
        Some(Arc::new(FaultInjector::new(
            FaultScenario::quiet(seed ^ salt)
                .with_replication_faults(repl_fault_rate, repl_fault_rate),
        )))
    };

    let mut digests: Vec<FailoverDigests> = Vec::new();
    let mut mttrs: Vec<Duration> = Vec::new();
    let mut counters = GrantCounters::default();
    let mut doomed_crashes = 0u64;
    let mut in_doubt_recovered = 0u64;
    let mut presumed_aborted = 0u64;
    let mut commits_resent = 0u64;
    let start = Instant::now();

    // ---- Phase A: kill every leader mid-2PC. ----
    let cfg_a = ClusterSweepConfig {
        shards: SHARDS,
        clients: CLIENTS,
        pools: SHARDS,
        crash_probability: 0.0,
        leases: false,
        seed,
        ..ClusterSweepConfig::default()
    };
    let mut cluster = cluster_harness(FaultScenario::quiet(seed), &cfg_a);
    cluster.bus.set_fault_injector(None);
    cluster.enable_replication();
    cluster.set_replication_faults(repl_injector(0x5EED0A));
    let mut outcomes: Vec<(String, String, OpOutcome)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(0xFA11));
    for k in 0..SHARDS {
        // Steady traffic: every client lands one single-shard grant on the
        // soon-to-die shard and one cross-shard grant spanning it.
        for c in 0..CLIENTS {
            let client = format!("client-{c}");
            let pool = crate::workload::pool_name(k);
            let next = crate::workload::pool_name((k + 1) % SHARDS);
            let amount = rng.random_range(1..=3);
            sweep_grant(
                &cluster,
                &mut outcomes,
                &mut rng,
                &mut counters,
                &client,
                format!("f{k}-c{c}-single"),
                &[format!("qty('{pool}') >= {amount}")],
            );
            let amount_b = rng.random_range(1..=3);
            sweep_grant(
                &cluster,
                &mut outcomes,
                &mut rng,
                &mut counters,
                &client,
                format!("f{k}-c{c}-cross"),
                &[
                    format!("qty('{pool}') >= {amount}"),
                    format!("qty('{next}') >= {amount_b}"),
                ],
            );
        }
        // The doomed grant: crash the coordinator mid-2PC with shard k's
        // prepared hold outstanding, then kill shard k itself.
        let point = if k % 2 == 0 {
            CrashPoint::AfterPrepare
        } else {
            CrashPoint::AfterCommitLogged
        };
        cluster.coordinator.set_crash_point(Some(point));
        counters.attempts += 1;
        doomed_crashes += 1;
        let rid = format!("kill{k}");
        let err = cluster
            .coordinator
            .grant(
                "doomed",
                &rid,
                &[
                    format!("qty('{}') >= 5", crate::workload::pool_name(k)),
                    format!(
                        "qty('{}') >= 5",
                        crate::workload::pool_name((k + 1) % SHARDS)
                    ),
                ],
                DURATION_MS,
            )
            .expect_err("armed coordinator crash fires");
        assert!(matches!(err, CoordError::Crashed(_)), "{err:?}");
        outcomes.push(("doomed".to_owned(), rid, OpOutcome::Crashed));

        let recovery = fail_over(
            &mut cluster,
            k,
            format!("2pc-s{k}"),
            &mut digests,
            &mut mttrs,
        );
        in_doubt_recovered += recovery.in_doubt as u64;

        // The restarted coordinator re-resolves the doomed transaction's
        // rid@sN holds — shard k's against the promoted follower.
        let coord_recovery = cluster
            .coordinator
            .recover()
            .expect("coordinator recovery succeeds");
        presumed_aborted += coord_recovery.presumed_aborted as u64;
        commits_resent += coord_recovery.commits_resent as u64;

        // The promoted leader serves on its epoch-fenced endpoint.
        for c in 0..CLIENTS {
            let client = format!("client-{c}");
            let pool = crate::workload::pool_name(k);
            let amount = rng.random_range(1..=3);
            sweep_grant(
                &cluster,
                &mut outcomes,
                &mut rng,
                &mut counters,
                &client,
                format!("p{k}-c{c}"),
                &[format!("qty('{pool}') >= {amount}")],
            );
        }
    }
    let mut report_a = ClusterRunReport::default();
    audit_cluster(&cluster, &outcomes, &mut report_a);
    let counter_a = |name: &str| cluster.telemetry.counter(name).load(Ordering::Relaxed);
    let mut repl_shipped = counter_a("cluster.repl.shipped_lines");
    let mut repl_dropped = counter_a("cluster.repl.dropped_shipments");

    // ---- Phase B: kill every leader mid-lease-rebalance. ----
    let cfg_b = ClusterSweepConfig {
        shards: SHARDS,
        clients: SHARDS, // one client homed per shard
        pools: SHARDS,
        crash_probability: 0.0,
        leases: true,
        seed: seed ^ 0xB_000,
        ..ClusterSweepConfig::default()
    };
    let mut leased = cluster_harness(FaultScenario::quiet(cfg_b.seed), &cfg_b);
    leased.bus.set_fault_injector(None);
    leased.enable_replication();
    leased.set_replication_faults(repl_injector(0x5EED0B));
    let mut leased_outcomes: Vec<(String, String, OpOutcome)> = Vec::new();
    let mut rebalance_crashes_fired = 0u64;
    let mut lease_sums_restored = true;
    let totals = leased.registered_pools();
    for j in 0..SHARDS {
        // A round of home-shard traffic builds per-shard demand.
        for c in 0..cfg_b.clients {
            let client = format!("client-{c}");
            for op in 0..4 {
                let pool = crate::workload::pool_name(rng.random_range(0..cfg_b.pools));
                let amount = rng.random_range(1..=3);
                sweep_grant(
                    &leased,
                    &mut leased_outcomes,
                    &mut rng,
                    &mut counters,
                    &client,
                    format!("L{j}-c{c}-o{op}"),
                    &[format!("qty('{pool}') >= {amount}")],
                );
            }
        }
        // The rebalance cycle dies between its withdraws and deposits —
        // and leader j dies with the cluster in that stranded state.
        leased.arm_rebalance_crash();
        let crash = leased.rebalance_leases().expect("leases are enabled");
        if crash.crashed {
            rebalance_crashes_fired += 1;
        }
        let _ = fail_over(
            &mut leased,
            j,
            format!("rebalance-s{j}"),
            &mut digests,
            &mut mttrs,
        );
        // The next cycle's heal pass re-credits what the crash stranded.
        leased.rebalance_leases().expect("leases are enabled");
        lease_sums_restored &= totals
            .iter()
            .all(|(pool, total, _)| lease_sum(&leased, pool) == *total);
    }
    let mut report_b = ClusterRunReport::default();
    audit_cluster(&leased, &leased_outcomes, &mut report_b);
    let counter_b = |name: &str| leased.telemetry.counter(name).load(Ordering::Relaxed);
    repl_shipped += counter_b("cluster.repl.shipped_lines");
    repl_dropped += counter_b("cluster.repl.dropped_shipments");

    let failovers = mttrs.len() as u64;
    let mttr_max = mttrs.iter().copied().max().unwrap_or_default();
    let mttr_mean = if mttrs.is_empty() {
        Duration::default()
    } else {
        mttrs.iter().sum::<Duration>() / mttrs.len() as u32
    };
    FailoverSweepReport {
        attempts: counters.attempts,
        granted: counters.granted,
        rejected: counters.rejected,
        doomed_crashes,
        failovers,
        in_doubt_recovered,
        presumed_aborted,
        commits_resent,
        rebalance_crashes_fired,
        lease_sums_restored,
        digests,
        partial_grants: report_a.partial_grants + report_b.partial_grants,
        double_grants: report_a.double_grants + report_b.double_grants,
        oversells: report_a.oversells + report_b.oversells,
        lease_oversells: report_a.lease_oversells + report_b.lease_oversells,
        lease_sum_violations: report_a.lease_sum_violations + report_b.lease_sum_violations,
        live_after_reap: report_a.live_after_reap + report_b.live_after_reap,
        dedup_after_reap: report_a.dedup_after_reap + report_b.dedup_after_reap,
        tombstones_after_reap: report_a.tombstones_after_reap + report_b.tombstones_after_reap,
        repl_shipped_lines: repl_shipped,
        repl_dropped_shipments: repl_dropped,
        mttr_max,
        mttr_mean,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_cluster_sweep_is_clean() {
        let cfg = ClusterSweepConfig {
            shards: 4,
            clients: 3,
            ops_per_client: 15,
            crash_probability: 0.0,
            ..ClusterSweepConfig::default()
        };
        let (report, _) = run_cluster_fault_sweep(FaultScenario::quiet(1), &cfg);
        assert!(report.clean(), "{report:?}");
        assert!(report.granted > 0);
        assert!(report.cross_shard_granted > 0, "workload must cross shards");
        assert_eq!(report.crashed, 0);
    }

    #[test]
    fn faulty_cluster_sweep_holds_unit_guarantee() {
        let cfg = ClusterSweepConfig {
            shards: 4,
            clients: 4,
            ops_per_client: 20,
            crash_probability: 0.15,
            ..ClusterSweepConfig::default()
        };
        let (report, _) = run_cluster_fault_sweep(FaultScenario::uniform(7, 0.1), &cfg);
        assert_eq!(report.partial_grants, 0, "§4 must hold across shards");
        assert_eq!(report.double_grants, 0, "retries must dedup per shard");
        assert_eq!(report.oversells, 0, "no shard may oversell");
        assert_eq!(report.live_after_reap, 0, "expiry + recovery reclaim all");
        assert!(report.granted > 0, "goodput survives faults");
    }

    #[test]
    fn leased_cluster_sweep_is_clean_and_serves_locally() {
        let cfg = ClusterSweepConfig {
            shards: 4,
            clients: 4,
            ops_per_client: 16,
            crash_probability: 0.0,
            leases: true,
            ..ClusterSweepConfig::default()
        };
        let (report, cluster) = run_cluster_fault_sweep(FaultScenario::quiet(3), &cfg);
        assert!(report.clean(), "{report:?}");
        assert!(report.granted > 0);
        let local = cluster
            .telemetry
            .counter("cluster.lease.local_grants")
            .load(Ordering::Relaxed);
        assert!(local > 0, "lease path must serve grants locally");
    }

    #[test]
    fn faulty_leased_sweep_holds_lease_invariants() {
        let cfg = ClusterSweepConfig {
            shards: 4,
            clients: 4,
            ops_per_client: 20,
            crash_probability: 0.15,
            leases: true,
            ..ClusterSweepConfig::default()
        };
        let (report, _) = run_cluster_fault_sweep(FaultScenario::uniform(7, 0.1), &cfg);
        assert_eq!(report.partial_grants, 0, "§4 must hold across shards");
        assert_eq!(report.double_grants, 0, "retries must dedup per shard");
        assert_eq!(report.oversells, 0, "no shard may oversell");
        assert_eq!(report.lease_oversells, 0, "promised must stay ≤ lease");
        assert_eq!(report.lease_sum_violations, 0, "leases must not mint");
        assert_eq!(report.live_after_reap, 0, "expiry + recovery reclaim all");
        assert!(report.granted > 0, "goodput survives faults");
    }

    #[test]
    fn lease_sweep_survives_mid_rebalance_crash() {
        let cfg = ClusterSweepConfig {
            shards: 4,
            clients: 4,
            ops_per_client: 24,
            pools: 8,
            cross_shard_probability: 0.25,
            ..ClusterSweepConfig::default()
        };
        let (report, _) = run_lease_sweep(&cfg);
        assert!(report.clean(), "{report:?}");
        assert!(report.crash_fired, "armed rebalance crash must fire");
        assert!(report.granted > 0);
        assert!(
            report.rebalance_moved > 0,
            "rebalancer must chase the Zipf head: {report:?}"
        );
        assert!(
            report.local_ratio() > 0.5,
            "lease locality too low: {} ({report:?})",
            report.local_ratio()
        );
    }

    #[test]
    fn shard_kill_between_prepare_and_commit_recovers() {
        let report = run_cluster_crash_restart(11, 6, RestartTarget::SameNode);
        assert!(
            report.digests_match(),
            "per-shard state must survive the kill:\n{:?}",
            report
                .digests
                .iter()
                .map(|(a, b)| format!("pre:\n{a}\npost:\n{b}"))
                .collect::<Vec<_>>()
        );
        assert!(
            report.in_doubt.iter().all(|&n| n == 1),
            "each shard recovers exactly the doomed hold in doubt: {:?}",
            report.in_doubt
        );
        assert_eq!(
            report.live_after_recovery, report.committed_before_kill,
            "presumed abort frees the doomed holds, keeps the committed"
        );
    }

    #[test]
    fn shard_kill_promotes_follower_with_identical_state() {
        let report = run_cluster_crash_restart(13, 6, RestartTarget::Follower);
        assert!(
            report.digests_match(),
            "the promoted follower must be byte-identical to the dead leader:\n{:?}",
            report
                .digests
                .iter()
                .map(|(a, b)| format!("pre:\n{a}\npost:\n{b}"))
                .collect::<Vec<_>>()
        );
        assert!(
            report.in_doubt.iter().all(|&n| n == 1),
            "the promoted replica recovers exactly the doomed hold in doubt: {:?}",
            report.in_doubt
        );
        assert_eq!(
            report.live_after_recovery, report.committed_before_kill,
            "presumed abort against the promoted follower frees the doomed holds"
        );
    }

    #[test]
    fn failover_sweep_is_clean_on_quiet_replication() {
        let report = run_failover_sweep(2007, 0.0);
        assert!(report.clean(), "failover sweep must be clean: {report:#?}");
        assert_eq!(report.failovers, 8, "two kills per shard: {report:#?}");
        assert_eq!(report.doomed_crashes, 4);
        assert!(report.granted > 0);
        assert!(
            report.rebalance_crashes_fired > 0,
            "phase B must exercise the stranded-rebalance state: {report:#?}"
        );
        assert!(report.repl_shipped_lines > 0);
        assert_eq!(report.repl_dropped_shipments, 0);
    }

    #[test]
    fn failover_sweep_is_clean_under_replication_faults() {
        let report = run_failover_sweep(31337, 0.2);
        assert!(
            report.clean(),
            "lossy, laggy shipping must not change any outcome: {report:#?}"
        );
        assert_eq!(report.failovers, 8);
        assert!(
            report.repl_dropped_shipments > 0,
            "a 20% drop rate must actually drop shipments: {report:#?}"
        );
    }
}
