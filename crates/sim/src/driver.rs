//! The concurrent workload driver.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use promises_baselines::{QtyReserver, ReserveFailure, QTY_FIELD, QTY_TABLE, RESERVED_FIELD};
use promises_rm::{Record, ResourceManager};

use crate::metrics::{Counters, RunReport};
use crate::workload::{pool_name, WorkloadConfig};

/// Creates `pools` quantity pools of `qty` units each in `rm` using the
/// shared table layout (with an escrow `reserved` field initialised to 0).
pub fn seed_pools(rm: &ResourceManager, pools: usize, qty: u64) {
    rm.create_table(QTY_TABLE);
    let tx = rm.begin();
    for i in 0..pools {
        let _ = rm.insert(
            &tx,
            QTY_TABLE,
            &pool_name(i),
            Record::new()
                .with(QTY_FIELD, qty as i64)
                .with(RESERVED_FIELD, 0i64),
        );
    }
    rm.commit(tx).expect("seeding commit");
}

/// Runs the reserve–think–consume workload over any [`QtyReserver`] with
/// `cfg.clients` concurrent threads and returns the aggregated report.
///
/// Per operation: reserve each pool in the op (the first via
/// [`QtyReserver::reserve`], the rest via [`QtyReserver::extend`]), hold
/// through the think time (the "long-running operation" of the paper),
/// then consume or abandon.
pub fn run_qty_workload<R>(reserver: Arc<R>, cfg: &WorkloadConfig) -> RunReport
where
    R: QtyReserver + Send + Sync + 'static,
{
    let counters = Arc::new(Counters::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..cfg.clients {
            let reserver = Arc::clone(&reserver);
            let counters = Arc::clone(&counters);
            let ops = cfg.ops_for_client(client);
            let think = cfg.think;
            let real_think = cfg.real_time_think;
            // Virtual think (the default) skips the sleep but still folds
            // the think duration into latencies recorded past the hold
            // window, so reported latency keeps its meaning.
            let vthink = if real_think { Duration::ZERO } else { think };
            scope.spawn(move || {
                for op in ops {
                    counters.attempts.fetch_add(1, Ordering::Relaxed);
                    let op_start = Instant::now();
                    let mut token = match reserver.reserve(&pool_name(op.pools[0]), op.amount) {
                        Ok(t) => Some(t),
                        Err(e) => {
                            count_failure(&counters, &e, op_start.elapsed());
                            continue;
                        }
                    };
                    for &pool in &op.pools[1..] {
                        let t = token.as_mut().expect("set above");
                        if let Err(e) = reserver.extend(t, &pool_name(pool), op.amount) {
                            count_failure(&counters, &e, op_start.elapsed());
                            reserver.cancel(token.take().expect("still held"));
                            break;
                        }
                    }
                    let Some(token) = token else { continue };
                    if real_think && !think.is_zero() {
                        std::thread::sleep(think);
                    }
                    if op.abandon {
                        reserver.cancel(token);
                        counters.abandoned.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    match reserver.consume(token) {
                        Ok(()) => counters.succeeded(op_start.elapsed() + vthink),
                        Err(e) => count_failure(&counters, &e, op_start.elapsed() + vthink),
                    }
                }
            });
        }
    });
    counters.report(start.elapsed())
}

fn count_failure(counters: &Counters, e: &ReserveFailure, elapsed: Duration) {
    match e {
        ReserveFailure::Insufficient => counters.failed_fast.fetch_add(1, Ordering::Relaxed),
        ReserveFailure::LateConflict => counters.failed_late.fetch_add(1, Ordering::Relaxed),
        ReserveFailure::Deadlock => counters.deadlocks.fetch_add(1, Ordering::Relaxed),
        ReserveFailure::Rm(_) => counters.errors.fetch_add(1, Ordering::Relaxed),
    };
    counters.failed_op(elapsed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::promise_reserver;
    use promises_baselines::{EscrowReserver, LockReserver, OptimisticReserver};
    use std::time::Duration;

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            clients: 4,
            ops_per_client: 10,
            pools: 2,
            hotspot_probability: 0.5,
            zipf_exponent: 0.0,
            amount_max: 2,
            think: Duration::from_micros(200),
            real_time_think: true,
            abandon_probability: 0.1,
            multi_pool: false,
            pinned_pools: false,
            seed: 7,
        }
    }

    fn final_qty(rm: &ResourceManager, pools: usize) -> i64 {
        let tx = rm.begin();
        let mut total = 0;
        for i in 0..pools {
            total += rm
                .get(&tx, QTY_TABLE, &pool_name(i))
                .unwrap()
                .unwrap()
                .int(QTY_FIELD)
                .unwrap();
        }
        rm.commit(tx).unwrap();
        total
    }

    #[test]
    fn escrow_workload_conserves_stock() {
        let rm = Arc::new(ResourceManager::new());
        seed_pools(&rm, 2, 1_000);
        let report = run_qty_workload(Arc::new(EscrowReserver::new(Arc::clone(&rm))), &small_cfg());
        assert_eq!(report.attempts, 40);
        let consumed = 2_000 - final_qty(&rm, 2);
        assert!(consumed >= 0);
        assert!(report.completed > 0);
    }

    #[test]
    fn lock_workload_completes() {
        let rm = Arc::new(ResourceManager::new());
        seed_pools(&rm, 2, 1_000);
        let report = run_qty_workload(Arc::new(LockReserver::new(Arc::clone(&rm))), &small_cfg());
        assert!(report.completed > 0);
    }

    #[test]
    fn optimistic_workload_completes() {
        let rm = Arc::new(ResourceManager::new());
        seed_pools(&rm, 2, 1_000);
        let report = run_qty_workload(
            Arc::new(OptimisticReserver::new(Arc::clone(&rm))),
            &small_cfg(),
        );
        assert!(report.completed > 0);
    }

    #[test]
    fn promise_workload_completes_and_frees_all_promises() {
        let r = Arc::new(promise_reserver(2, 1_000));
        let pm = Arc::clone(r.manager());
        let report = run_qty_workload(r, &small_cfg());
        assert!(report.completed > 0);
        assert_eq!(pm.live_count(), 0, "every promise released");
    }

    #[test]
    fn multi_pool_lock_workload_detects_deadlocks_not_hangs() {
        let rm = Arc::new(ResourceManager::new());
        seed_pools(&rm, 2, 100_000);
        let cfg = WorkloadConfig {
            multi_pool: true,
            clients: 8,
            ops_per_client: 20,
            pools: 2,
            think: Duration::from_micros(500),
            abandon_probability: 0.0,
            ..small_cfg()
        };
        let report = run_qty_workload(Arc::new(LockReserver::new(Arc::clone(&rm))), &cfg);
        // The run terminates (no hang) and conflicting orders surfaced as
        // deadlock aborts.
        assert!(report.completed + report.deadlocks + report.failed_fast > 0);
        assert!(report.deadlocks > 0, "opposite-order clients must deadlock");
    }

    #[test]
    fn virtual_think_skips_wall_clock_but_counts_in_latency() {
        let think = Duration::from_millis(20);
        let cfg = WorkloadConfig {
            clients: 4,
            ops_per_client: 10,
            think,
            real_time_think: false,
            abandon_probability: 0.0,
            ..small_cfg()
        };
        let r = Arc::new(promise_reserver(2, 100_000));
        let start = Instant::now();
        let report = run_qty_workload(r, &cfg);
        // 4 clients × 10 ops × 20ms of think would be 200ms of sleeping
        // per client; virtual time must finish far under that.
        assert!(
            start.elapsed() < Duration::from_millis(150),
            "virtual think must not sleep: {:?}",
            start.elapsed()
        );
        assert_eq!(report.completed, 40);
        let avg = report.avg_latency.expect("completed ops recorded");
        assert!(avg >= think, "think counts toward latency: {avg:?}");
    }

    #[test]
    fn multi_pool_promises_never_deadlock() {
        let r = Arc::new(promise_reserver(2, 100_000));
        let cfg = WorkloadConfig {
            multi_pool: true,
            clients: 8,
            ops_per_client: 20,
            pools: 2,
            think: Duration::from_micros(500),
            abandon_probability: 0.0,
            ..small_cfg()
        };
        let report = run_qty_workload(r, &cfg);
        assert_eq!(report.deadlocks, 0, "promise layer never blocks requesters");
        assert_eq!(report.completed, 8 * 20);
    }
}
