//! Threaded concurrency-stress suite for the thread-per-shard runtime.
//!
//! Real client threads drive an 8-shard cluster — real shard worker
//! threads, pipelined 2PC, group-commit journaling — across a wire-fault
//! sweep, and the post-run auditors must come back silent: the cluster
//! run report's always-zero columns (partial grants, double grants,
//! oversells, leaks) and the cross-shard lifecycle auditor's ordering
//! checks. This is the S4 stress leg; the per-race pin tests live in
//! `crates/cluster/tests/executor.rs` and the interleaving model in
//! `crates/cluster/tests/group_commit_model.rs`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use promises_cluster::ClusterDecision;
use promises_faults::FaultScenario;
use promises_sim::{cluster_harness, run_cluster_fault_sweep, ClusterSweepConfig};

const HOUR_MS: u64 = 3_600_000;

fn stress_config(seed: u64) -> ClusterSweepConfig {
    ClusterSweepConfig {
        shards: 8,
        clients: 8,
        ops_per_client: 25,
        pools: 8,
        seed,
        ..ClusterSweepConfig::default()
    }
}

/// N client threads × 8 shards × fault-rate sweep: every cell of the
/// matrix must report clean guarantees and zero lifecycle violations.
#[test]
fn fault_sweep_matrix_is_clean_across_rates_and_seeds() {
    for seed in [11u64, 42] {
        for rate in [0.0, 0.1, 0.2] {
            let cfg = stress_config(seed);
            let scenario = FaultScenario::uniform(seed ^ 0x7157E55, rate);
            let (report, cluster) = run_cluster_fault_sweep(scenario, &cfg);
            let life = promises_telemetry::audit_cluster_lifecycles(
                &cluster.telemetry.spans(),
                &cluster.evidence(),
            );
            assert_eq!(
                report.attempts,
                (cfg.clients * cfg.ops_per_client) as u64,
                "seed {seed} rate {rate}: every op must be attempted"
            );
            assert!(
                report.clean(),
                "seed {seed} rate {rate}: guarantees violated: {report:?}"
            );
            assert!(
                life.ok(),
                "seed {seed} rate {rate}: lifecycle violations: {:?}",
                life.all_violations()
            );
        }
    }
}

/// The same discipline with widened shards: every shard grows a second
/// worker thread (requests overlap *inside* a shard, isolated only by
/// the footprint-scoped manager locks) and modeled service time keeps
/// several handlers in flight at once. After the run: zero lifecycle
/// violations, every journal's durability watermark at its tip (no reply
/// left with unflushed records), and every queue drained.
#[test]
fn multi_worker_shards_stay_clean_under_faulted_load() {
    let cfg = stress_config(2026);
    let scenario = FaultScenario::uniform(0xACE5, 0.1);
    let cluster = cluster_harness(scenario, &cfg);
    for node in &cluster.nodes {
        node.server.set_workers(2);
    }
    cluster.set_service_time_us(50);

    let granted = AtomicU64::new(0);
    std::thread::scope(|s| {
        for c in 0..cfg.clients {
            let coordinator = Arc::clone(&cluster.coordinator);
            let granted = &granted;
            s.spawn(move || {
                for op in 0..cfg.ops_per_client {
                    let pool = promises_sim::pool_name(op % cfg.pools);
                    let next = promises_sim::pool_name((op + 3) % cfg.pools);
                    let predicates = if op % 3 == 0 {
                        vec![format!("qty('{pool}') >= 1"), format!("qty('{next}') >= 1")]
                    } else {
                        vec![format!("qty('{pool}') >= 2")]
                    };
                    match coordinator.grant(
                        &format!("client-{c}"),
                        &format!("stress-{c}-{op}"),
                        &predicates,
                        HOUR_MS,
                    ) {
                        Ok(ClusterDecision::Granted { parts }) => {
                            granted.fetch_add(1, Ordering::Relaxed);
                            if op % 2 == 0 {
                                coordinator.release(&parts);
                            }
                        }
                        // Faulted wire: rejections and transport errors
                        // are legitimate outcomes; the audits below are
                        // what must stay silent.
                        Ok(ClusterDecision::Rejected { .. }) | Err(_) => {}
                    }
                }
            });
        }
    });

    assert!(granted.load(Ordering::Relaxed) > 0, "load must land grants");
    let life = promises_telemetry::audit_cluster_lifecycles(
        &cluster.telemetry.spans(),
        &cluster.evidence(),
    );
    assert!(
        life.ok(),
        "lifecycle violations: {:?}",
        life.all_violations()
    );
    for node in &cluster.nodes {
        assert_eq!(
            node.journal.flushed_seq(),
            node.journal.tip_seq(),
            "shard {}: a reply left with unflushed records",
            node.index
        );
        assert_eq!(
            node.server.queue_depth(),
            0,
            "shard {} queue not drained",
            node.index
        );
        assert_eq!(node.server.worker_count(), 2);
    }
}
