//! The coordinator's durable decision log.
//!
//! A cross-shard transaction is decided by exactly one record: `Begin` is
//! written before any prepare is sent, and the *commit point* is the
//! `Commit` record — written before any commit resolution goes out. A
//! recovering coordinator applies presumed abort: `Begin` with no decision
//! means no shard can have been told to commit, so every hold the prepare
//! fan-out may have left behind is safe to abort; `Commit` means some
//! shards may or may not have heard, so commits are resent (shard-side
//! resolution is idempotent).
//!
//! Like `PromiseJournal`, the log is an in-memory line store standing in
//! for an fsynced append-only file: the format is line-oriented `|`-sep
//! text so the encode/decode pair is trivially auditable.

use parking_lot::Mutex;

/// Identity of one cross-shard transaction: the client and the original
/// (pre-split) request id.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId {
    /// Requesting client.
    pub client: String,
    /// The client's request id for the whole multi-predicate request.
    pub request: String,
}

impl TxnId {
    /// Creates a transaction id.
    pub fn new(client: impl Into<String>, request: impl Into<String>) -> Self {
        Self {
            client: client.into(),
            request: request.into(),
        }
    }

    /// The sub-request id this transaction uses on `shard` — the original
    /// request id tagged with the shard, so shard-level `(client,
    /// request)` dedup stays airtight per shard while the coordinator owns
    /// the cluster-wide key.
    pub fn sub_request(&self, shard: usize) -> String {
        format!("{}@s{shard}", self.request)
    }
}

/// One coordinator log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordRecord {
    /// Prepare fan-out is about to start for `txn` over `shards`.
    Begin {
        /// The transaction.
        txn: TxnId,
        /// Participating shard indices, ascending.
        shards: Vec<usize>,
    },
    /// The commit point: every shard prepared and the grant is decided.
    Commit {
        /// The transaction.
        txn: TxnId,
    },
    /// The transaction aborted (a shard rejected, a prepare was lost, or
    /// recovery presumed abort).
    Abort {
        /// The transaction.
        txn: TxnId,
    },
}

impl CoordRecord {
    fn encode(&self) -> String {
        match self {
            CoordRecord::Begin { txn, shards } => {
                let list = shards
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                format!("B|{}|{}|{list}", esc(&txn.client), esc(&txn.request))
            }
            CoordRecord::Commit { txn } => {
                format!("C|{}|{}", esc(&txn.client), esc(&txn.request))
            }
            CoordRecord::Abort { txn } => {
                format!("A|{}|{}", esc(&txn.client), esc(&txn.request))
            }
        }
    }

    fn decode(line: &str) -> Result<Self, CoordLogError> {
        let mut parts = line.split('|');
        let tag = parts.next().unwrap_or_default();
        let client = unesc(parts.next().ok_or(CoordLogError::Truncated)?);
        let request = unesc(parts.next().ok_or(CoordLogError::Truncated)?);
        let txn = TxnId { client, request };
        match tag {
            "B" => {
                let list = parts.next().ok_or(CoordLogError::Truncated)?;
                let shards = if list.is_empty() {
                    vec![]
                } else {
                    list.split(',')
                        .map(|s| s.parse().map_err(|_| CoordLogError::BadShardList))
                        .collect::<Result<_, _>>()?
                };
                Ok(CoordRecord::Begin { txn, shards })
            }
            "C" => Ok(CoordRecord::Commit { txn }),
            "A" => Ok(CoordRecord::Abort { txn }),
            other => Err(CoordLogError::UnknownTag(other.to_owned())),
        }
    }

    /// The transaction this record is about.
    pub fn txn(&self) -> &TxnId {
        match self {
            CoordRecord::Begin { txn, .. }
            | CoordRecord::Commit { txn }
            | CoordRecord::Abort { txn } => txn,
        }
    }
}

/// Decode failures (a corrupt line is an error, never skipped silently).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordLogError {
    /// A record line ended before its required fields.
    Truncated,
    /// An unrecognised record tag.
    UnknownTag(String),
    /// The Begin shard list did not parse.
    BadShardList,
}

impl std::fmt::Display for CoordLogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordLogError::Truncated => write!(f, "truncated coordinator log record"),
            CoordLogError::UnknownTag(t) => write!(f, "unknown coordinator log tag {t:?}"),
            CoordLogError::BadShardList => write!(f, "bad shard list in Begin record"),
        }
    }
}

impl std::error::Error for CoordLogError {}

/// The append-only coordinator log.
#[derive(Debug, Default)]
pub struct CoordinatorLog {
    lines: Mutex<Vec<String>>,
}

impl CoordinatorLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record (the in-memory stand-in for append+fsync).
    pub fn append(&self, rec: CoordRecord) {
        self.lines.lock().push(rec.encode());
    }

    /// Decodes every record, oldest first.
    pub fn entries(&self) -> Result<Vec<CoordRecord>, CoordLogError> {
        self.lines
            .lock()
            .iter()
            .map(|l| CoordRecord::decode(l))
            .collect()
    }

    /// Replays the log into per-transaction outcomes: transactions with a
    /// `Begin` but no decision (the in-doubt set recovery must presume
    /// aborted), and transactions whose decision was `Commit` (whose
    /// resolutions recovery must resend).
    ///
    /// A transaction may be Begun more than once (a crashed attempt
    /// retried under the same request id resolves to the same per-shard
    /// holds via sub-request dedup), so outcomes fold per *transaction*,
    /// and `Commit` is sticky: once any attempt committed, the holds are
    /// granted state and no later record may demote them to abortable.
    pub fn replay(&self) -> Result<LogSummary, CoordLogError> {
        #[derive(PartialEq)]
        enum Status {
            Pending,
            Committed,
            Aborted,
        }
        let mut order: Vec<TxnId> = Vec::new();
        let mut state: std::collections::HashMap<TxnId, (Vec<usize>, Status)> =
            std::collections::HashMap::new();
        for rec in self.entries()? {
            match rec {
                CoordRecord::Begin { txn, shards } => {
                    if !state.contains_key(&txn) {
                        order.push(txn.clone());
                    }
                    let entry = state
                        .entry(txn)
                        .or_insert_with(|| (shards.clone(), Status::Pending));
                    entry.0 = shards;
                    // A new attempt after an abort is pending again; a
                    // committed transaction stays committed.
                    if entry.1 == Status::Aborted {
                        entry.1 = Status::Pending;
                    }
                }
                CoordRecord::Commit { txn } => {
                    if let Some(entry) = state.get_mut(&txn) {
                        entry.1 = Status::Committed;
                    }
                }
                CoordRecord::Abort { txn } => {
                    if let Some(entry) = state.get_mut(&txn) {
                        if entry.1 != Status::Committed {
                            entry.1 = Status::Aborted;
                        }
                    }
                }
            }
        }
        let mut summary = LogSummary {
            undecided: Vec::new(),
            committed: Vec::new(),
        };
        for txn in order {
            let (shards, status) = &state[&txn];
            match status {
                Status::Pending => summary.undecided.push((txn.clone(), shards.clone())),
                Status::Committed => summary.committed.push((txn.clone(), shards.clone())),
                Status::Aborted => {}
            }
        }
        Ok(summary)
    }
}

/// Per-transaction outcome of a log replay. See [`CoordinatorLog::replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogSummary {
    /// `Begin` with no decision: presume abort.
    pub undecided: Vec<(TxnId, Vec<usize>)>,
    /// Decided commit: resend resolutions (idempotent shard-side).
    pub committed: Vec<(TxnId, Vec<usize>)>,
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('|', "\\p")
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('p') => out.push('|'),
                Some(other) => out.push(other),
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip() {
        let recs = vec![
            CoordRecord::Begin {
                txn: TxnId::new("c|1", "r\\9"),
                shards: vec![0, 2],
            },
            CoordRecord::Commit {
                txn: TxnId::new("c|1", "r\\9"),
            },
            CoordRecord::Abort {
                txn: TxnId::new("other", "r2"),
            },
        ];
        let log = CoordinatorLog::new();
        for r in &recs {
            log.append(r.clone());
        }
        assert_eq!(log.entries().unwrap(), recs);
    }

    #[test]
    fn replay_applies_presumed_abort() {
        let log = CoordinatorLog::new();
        let lost = TxnId::new("c", "lost");
        let done = TxnId::new("c", "done");
        let dead = TxnId::new("c", "dead");
        log.append(CoordRecord::Begin {
            txn: lost.clone(),
            shards: vec![0, 1],
        });
        log.append(CoordRecord::Begin {
            txn: done.clone(),
            shards: vec![1, 2],
        });
        log.append(CoordRecord::Commit { txn: done.clone() });
        log.append(CoordRecord::Begin {
            txn: dead.clone(),
            shards: vec![0],
        });
        log.append(CoordRecord::Abort { txn: dead });
        let summary = log.replay().unwrap();
        assert_eq!(summary.undecided, vec![(lost, vec![0, 1])]);
        assert_eq!(summary.committed, vec![(done, vec![1, 2])]);
    }

    #[test]
    fn commit_is_sticky_across_re_begins() {
        // Crash, retry (new Begin), commit, then the OLD attempt's abort
        // arrives from a racing recovery pass: the txn must stay committed.
        let log = CoordinatorLog::new();
        let txn = TxnId::new("c", "r");
        log.append(CoordRecord::Begin {
            txn: txn.clone(),
            shards: vec![0, 1],
        });
        log.append(CoordRecord::Begin {
            txn: txn.clone(),
            shards: vec![0, 1],
        });
        log.append(CoordRecord::Commit { txn: txn.clone() });
        log.append(CoordRecord::Abort { txn: txn.clone() });
        let summary = log.replay().unwrap();
        assert!(summary.undecided.is_empty());
        assert_eq!(summary.committed, vec![(txn, vec![0, 1])]);
    }

    #[test]
    fn sub_request_ids_are_per_shard() {
        let txn = TxnId::new("alice", "r7");
        assert_eq!(txn.sub_request(0), "r7@s0");
        assert_eq!(txn.sub_request(3), "r7@s3");
    }

    #[test]
    fn corrupt_lines_error_out() {
        let log = CoordinatorLog::new();
        log.lines.lock().push("Z|x|y".into());
        assert!(matches!(
            log.entries(),
            Err(CoordLogError::UnknownTag(t)) if t == "Z"
        ));
    }
}
