//! The coordinator's durable decision log.
//!
//! A cross-shard transaction is decided by exactly one record: `Begin` is
//! written before any prepare is sent, and the *commit point* is the
//! `Commit` record — written before any commit resolution goes out. A
//! recovering coordinator applies presumed abort: `Begin` with no decision
//! means no shard can have been told to commit, so every hold the prepare
//! fan-out may have left behind is safe to abort; `Commit` means some
//! shards may or may not have heard, so commits are resent (shard-side
//! resolution is idempotent).
//!
//! Like `PromiseJournal`, the log is an in-memory line store standing in
//! for an fsynced append-only file: the format is line-oriented `|`-sep
//! text so the encode/decode pair is trivially auditable.

use std::collections::HashSet;

use parking_lot::Mutex;

/// Identity of one cross-shard transaction: the client and the original
/// (pre-split) request id.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId {
    /// Requesting client.
    pub client: String,
    /// The client's request id for the whole multi-predicate request.
    pub request: String,
}

impl TxnId {
    /// Creates a transaction id.
    pub fn new(client: impl Into<String>, request: impl Into<String>) -> Self {
        Self {
            client: client.into(),
            request: request.into(),
        }
    }

    /// The sub-request id this transaction uses on `shard` — the original
    /// request id tagged with the shard, so shard-level `(client,
    /// request)` dedup stays airtight per shard while the coordinator owns
    /// the cluster-wide key.
    pub fn sub_request(&self, shard: usize) -> String {
        format!("{}@s{shard}", self.request)
    }
}

/// One coordinator log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordRecord {
    /// Prepare fan-out is about to start for `txn` over `shards`.
    Begin {
        /// The transaction.
        txn: TxnId,
        /// Participating shard indices, ascending.
        shards: Vec<usize>,
    },
    /// The commit point: every shard prepared and the grant is decided.
    Commit {
        /// The transaction.
        txn: TxnId,
    },
    /// The transaction aborted (a shard rejected, a prepare was lost, or
    /// recovery presumed abort).
    Abort {
        /// The transaction.
        txn: TxnId,
    },
}

impl CoordRecord {
    fn encode(&self) -> String {
        match self {
            CoordRecord::Begin { txn, shards } => {
                let list = shards
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                format!("B|{}|{}|{list}", esc(&txn.client), esc(&txn.request))
            }
            CoordRecord::Commit { txn } => {
                format!("C|{}|{}", esc(&txn.client), esc(&txn.request))
            }
            CoordRecord::Abort { txn } => {
                format!("A|{}|{}", esc(&txn.client), esc(&txn.request))
            }
        }
    }

    fn decode(line: &str) -> Result<Self, CoordLogError> {
        let mut parts = line.split('|');
        let tag = parts.next().unwrap_or_default();
        let client = unesc(parts.next().ok_or(CoordLogError::Truncated)?);
        let request = unesc(parts.next().ok_or(CoordLogError::Truncated)?);
        let txn = TxnId { client, request };
        match tag {
            "B" => {
                let list = parts.next().ok_or(CoordLogError::Truncated)?;
                let shards = if list.is_empty() {
                    vec![]
                } else {
                    list.split(',')
                        .map(|s| s.parse().map_err(|_| CoordLogError::BadShardList))
                        .collect::<Result<_, _>>()?
                };
                Ok(CoordRecord::Begin { txn, shards })
            }
            "C" => Ok(CoordRecord::Commit { txn }),
            "A" => Ok(CoordRecord::Abort { txn }),
            other => Err(CoordLogError::UnknownTag(other.to_owned())),
        }
    }

    /// The transaction this record is about.
    pub fn txn(&self) -> &TxnId {
        match self {
            CoordRecord::Begin { txn, .. }
            | CoordRecord::Commit { txn }
            | CoordRecord::Abort { txn } => txn,
        }
    }
}

/// Decode failures (a corrupt line is an error, never skipped silently).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordLogError {
    /// A record line ended before its required fields.
    Truncated,
    /// An unrecognised record tag.
    UnknownTag(String),
    /// The Begin shard list did not parse.
    BadShardList,
}

impl std::fmt::Display for CoordLogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordLogError::Truncated => write!(f, "truncated coordinator log record"),
            CoordLogError::UnknownTag(t) => write!(f, "unknown coordinator log tag {t:?}"),
            CoordLogError::BadShardList => write!(f, "bad shard list in Begin record"),
        }
    }
}

impl std::error::Error for CoordLogError {}

/// The append-only coordinator log.
#[derive(Debug, Default)]
pub struct CoordinatorLog {
    lines: Mutex<Vec<String>>,
}

impl CoordinatorLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record (the in-memory stand-in for append+fsync).
    pub fn append(&self, rec: CoordRecord) {
        self.lines.lock().push(rec.encode());
    }

    /// Decodes every record, oldest first.
    pub fn entries(&self) -> Result<Vec<CoordRecord>, CoordLogError> {
        self.lines
            .lock()
            .iter()
            .map(|l| CoordRecord::decode(l))
            .collect()
    }

    /// Replays the log into per-transaction outcomes: transactions with a
    /// `Begin` but no decision (the in-doubt set recovery must presume
    /// aborted), and transactions whose decision was `Commit` (whose
    /// resolutions recovery must resend).
    ///
    /// A transaction may be Begun more than once (a crashed attempt
    /// retried under the same request id resolves to the same per-shard
    /// holds via sub-request dedup), so outcomes fold per *transaction*,
    /// and `Commit` is sticky: once any attempt committed, the holds are
    /// granted state and no later record may demote them to abortable.
    ///
    /// An `Abort` for a transaction with no `Begin` in the log is a
    /// tolerated no-op — it can legitimately appear after compaction
    /// dropped the aborted transaction's records, or when a racing
    /// recovery pass double-logged — but it is never swallowed silently:
    /// the orphan is reported in [`LogSummary::orphan_aborts`] so audits
    /// can count it.
    pub fn replay(&self) -> Result<LogSummary, CoordLogError> {
        #[derive(PartialEq)]
        enum Status {
            Pending,
            Committed,
            Aborted,
        }
        let mut order: Vec<TxnId> = Vec::new();
        let mut state: std::collections::HashMap<TxnId, (Vec<usize>, Status)> =
            std::collections::HashMap::new();
        let mut orphan_aborts: Vec<TxnId> = Vec::new();
        for rec in self.entries()? {
            match rec {
                CoordRecord::Begin { txn, shards } => {
                    if !state.contains_key(&txn) {
                        order.push(txn.clone());
                    }
                    let entry = state
                        .entry(txn)
                        .or_insert_with(|| (shards.clone(), Status::Pending));
                    entry.0 = shards;
                    // A new attempt after an abort is pending again; a
                    // committed transaction stays committed.
                    if entry.1 == Status::Aborted {
                        entry.1 = Status::Pending;
                    }
                }
                CoordRecord::Commit { txn } => {
                    if let Some(entry) = state.get_mut(&txn) {
                        entry.1 = Status::Committed;
                    }
                }
                CoordRecord::Abort { txn } => match state.get_mut(&txn) {
                    Some(entry) => {
                        if entry.1 != Status::Committed {
                            entry.1 = Status::Aborted;
                        }
                    }
                    None => orphan_aborts.push(txn),
                },
            }
        }
        let mut summary = LogSummary {
            undecided: Vec::new(),
            committed: Vec::new(),
            orphan_aborts,
        };
        for txn in order {
            let (shards, status) = &state[&txn];
            match status {
                Status::Pending => summary.undecided.push((txn.clone(), shards.clone())),
                Status::Committed => summary.committed.push((txn.clone(), shards.clone())),
                Status::Aborted => {}
            }
        }
        Ok(summary)
    }

    /// Number of records currently in the log.
    pub fn len(&self) -> usize {
        self.lines.lock().len()
    }

    /// True if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.lines.lock().is_empty()
    }

    /// Compacts the log to the minimal record set replay needs, dropping
    /// dead history:
    ///
    /// * **Aborted** transactions vanish entirely — presumed abort makes
    ///   absence mean abort, and their holds were already freed when the
    ///   `Abort` was logged, so replay treats a missing transaction and an
    ///   aborted one identically.
    /// * **Committed** transactions whose commit resolutions every shard
    ///   has acknowledged (`resolved`) vanish — no recovery pass will ever
    ///   need to resend them.
    /// * **In-doubt** transactions keep a `Begin` (presumed-abort fodder);
    ///   **unacknowledged commits** keep `Begin` + `Commit` (sticky-commit
    ///   resend fodder). First-seen order is preserved.
    ///
    /// The rewrite happens atomically under the log lock. Replay of the
    /// compacted log yields the same [`LogSummary`] (minus orphan aborts,
    /// which are dead history by definition) as the uncompacted one.
    pub fn compact(&self, resolved: &HashSet<TxnId>) -> Result<LogCompaction, CoordLogError> {
        let summary = self.replay()?;
        let mut keep: Vec<String> = Vec::new();
        let mut kept_txns = 0usize;
        for (txn, shards) in &summary.undecided {
            keep.push(
                CoordRecord::Begin {
                    txn: txn.clone(),
                    shards: shards.clone(),
                }
                .encode(),
            );
            kept_txns += 1;
        }
        let mut dropped_resolved = 0usize;
        for (txn, shards) in &summary.committed {
            if resolved.contains(txn) {
                dropped_resolved += 1;
                continue;
            }
            keep.push(
                CoordRecord::Begin {
                    txn: txn.clone(),
                    shards: shards.clone(),
                }
                .encode(),
            );
            keep.push(CoordRecord::Commit { txn: txn.clone() }.encode());
            kept_txns += 1;
        }
        let mut lines = self.lines.lock();
        let report = LogCompaction {
            dropped: lines.len().saturating_sub(keep.len()),
            dropped_resolved,
            kept_txns,
        };
        *lines = keep;
        Ok(report)
    }
}

/// Per-transaction outcome of a log replay. See [`CoordinatorLog::replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogSummary {
    /// `Begin` with no decision: presume abort.
    pub undecided: Vec<(TxnId, Vec<usize>)>,
    /// Decided commit: resend resolutions (idempotent shard-side).
    pub committed: Vec<(TxnId, Vec<usize>)>,
    /// `Abort` records with no matching `Begin` — tolerated no-ops, but
    /// surfaced so audits can count them instead of losing them silently.
    pub orphan_aborts: Vec<TxnId>,
}

/// What [`CoordinatorLog::compact`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogCompaction {
    /// Log lines removed by the rewrite.
    pub dropped: usize,
    /// Fully-resolved committed transactions among them.
    pub dropped_resolved: usize,
    /// Transactions still represented after compaction.
    pub kept_txns: usize,
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('|', "\\p")
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('p') => out.push('|'),
                Some(other) => out.push(other),
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip() {
        let recs = vec![
            CoordRecord::Begin {
                txn: TxnId::new("c|1", "r\\9"),
                shards: vec![0, 2],
            },
            CoordRecord::Commit {
                txn: TxnId::new("c|1", "r\\9"),
            },
            CoordRecord::Abort {
                txn: TxnId::new("other", "r2"),
            },
        ];
        let log = CoordinatorLog::new();
        for r in &recs {
            log.append(r.clone());
        }
        assert_eq!(log.entries().unwrap(), recs);
    }

    #[test]
    fn replay_applies_presumed_abort() {
        let log = CoordinatorLog::new();
        let lost = TxnId::new("c", "lost");
        let done = TxnId::new("c", "done");
        let dead = TxnId::new("c", "dead");
        log.append(CoordRecord::Begin {
            txn: lost.clone(),
            shards: vec![0, 1],
        });
        log.append(CoordRecord::Begin {
            txn: done.clone(),
            shards: vec![1, 2],
        });
        log.append(CoordRecord::Commit { txn: done.clone() });
        log.append(CoordRecord::Begin {
            txn: dead.clone(),
            shards: vec![0],
        });
        log.append(CoordRecord::Abort { txn: dead });
        let summary = log.replay().unwrap();
        assert_eq!(summary.undecided, vec![(lost, vec![0, 1])]);
        assert_eq!(summary.committed, vec![(done, vec![1, 2])]);
    }

    #[test]
    fn commit_is_sticky_across_re_begins() {
        // Crash, retry (new Begin), commit, then the OLD attempt's abort
        // arrives from a racing recovery pass: the txn must stay committed.
        let log = CoordinatorLog::new();
        let txn = TxnId::new("c", "r");
        log.append(CoordRecord::Begin {
            txn: txn.clone(),
            shards: vec![0, 1],
        });
        log.append(CoordRecord::Begin {
            txn: txn.clone(),
            shards: vec![0, 1],
        });
        log.append(CoordRecord::Commit { txn: txn.clone() });
        log.append(CoordRecord::Abort { txn: txn.clone() });
        let summary = log.replay().unwrap();
        assert!(summary.undecided.is_empty());
        assert_eq!(summary.committed, vec![(txn, vec![0, 1])]);
    }

    #[test]
    fn sub_request_ids_are_per_shard() {
        let txn = TxnId::new("alice", "r7");
        assert_eq!(txn.sub_request(0), "r7@s0");
        assert_eq!(txn.sub_request(3), "r7@s3");
    }

    #[test]
    fn corrupt_lines_error_out() {
        let log = CoordinatorLog::new();
        log.lines.lock().push("Z|x|y".into());
        assert!(matches!(
            log.entries(),
            Err(CoordLogError::UnknownTag(t)) if t == "Z"
        ));
    }

    #[test]
    fn orphan_abort_is_a_tolerated_reported_noop() {
        let log = CoordinatorLog::new();
        let live = TxnId::new("c", "live");
        let ghost = TxnId::new("c", "ghost");
        log.append(CoordRecord::Begin {
            txn: live.clone(),
            shards: vec![0],
        });
        log.append(CoordRecord::Abort { txn: ghost.clone() });
        let summary = log.replay().unwrap();
        // The orphan changed nothing…
        assert_eq!(summary.undecided, vec![(live, vec![0])]);
        assert!(summary.committed.is_empty());
        // …but it was counted, not swallowed.
        assert_eq!(summary.orphan_aborts, vec![ghost]);
    }

    #[test]
    fn compact_preserves_replay_semantics() {
        let log = CoordinatorLog::new();
        let lost = TxnId::new("c", "lost");
        let done = TxnId::new("c", "done");
        let dead = TxnId::new("c", "dead");
        log.append(CoordRecord::Begin {
            txn: lost.clone(),
            shards: vec![0, 1],
        });
        log.append(CoordRecord::Begin {
            txn: done.clone(),
            shards: vec![1, 2],
        });
        log.append(CoordRecord::Commit { txn: done.clone() });
        log.append(CoordRecord::Begin {
            txn: dead.clone(),
            shards: vec![0],
        });
        log.append(CoordRecord::Abort { txn: dead });
        let before = log.replay().unwrap();

        // Nothing resolved: aborted history drops, everything else stays.
        let report = log.compact(&HashSet::new()).unwrap();
        assert_eq!(report.dropped, 2, "Begin+Abort of the dead txn");
        assert_eq!(report.dropped_resolved, 0);
        assert_eq!(report.kept_txns, 2);
        let after = log.replay().unwrap();
        assert_eq!(after.undecided, before.undecided);
        assert_eq!(after.committed, before.committed);

        // The commit acked on every shard: its records drop too.
        let resolved: HashSet<TxnId> = [done].into_iter().collect();
        let report = log.compact(&resolved).unwrap();
        assert_eq!(report.dropped_resolved, 1);
        assert_eq!(report.kept_txns, 1);
        let summary = log.replay().unwrap();
        assert_eq!(summary.undecided, vec![(lost, vec![0, 1])]);
        assert!(summary.committed.is_empty());
        assert_eq!(log.len(), 1, "one Begin for the in-doubt txn");
    }

    #[test]
    fn compact_keeps_sticky_commit_for_unacked_txns() {
        // Begin, Begin (retry), Commit, Abort (racing recovery): the txn
        // is committed; compaction must keep it committed and still
        // compress four records to two.
        let log = CoordinatorLog::new();
        let txn = TxnId::new("c", "r");
        log.append(CoordRecord::Begin {
            txn: txn.clone(),
            shards: vec![0, 1],
        });
        log.append(CoordRecord::Begin {
            txn: txn.clone(),
            shards: vec![0, 1],
        });
        log.append(CoordRecord::Commit { txn: txn.clone() });
        log.append(CoordRecord::Abort { txn: txn.clone() });
        let report = log.compact(&HashSet::new()).unwrap();
        assert_eq!(report.dropped, 2);
        assert_eq!(log.len(), 2);
        let summary = log.replay().unwrap();
        assert_eq!(summary.committed, vec![(txn, vec![0, 1])]);
        assert!(summary.undecided.is_empty());
    }

    #[test]
    fn compact_of_empty_log_is_a_noop() {
        let log = CoordinatorLog::new();
        let report = log.compact(&HashSet::new()).unwrap();
        assert_eq!(report, LogCompaction::default());
        assert!(log.is_empty());
    }
}
