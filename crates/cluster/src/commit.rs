//! Group commit: the per-shard durability barrier between "handler
//! finished" and "reply leaves the node".
//!
//! Every handled message may append journal records. Under the threaded
//! executor many handlers finish concurrently, and writing each record
//! down individually would put one fsync-shaped write on every reply
//! path. Instead, appends accumulate in the journal's sequence-ordered
//! buffer and a [`GroupCommitter`] elects one *leader* per batch: the
//! leader performs a single [`PromiseJournal::flush_all`] (one swap-safe
//! write covering every buffered record, amortized exactly like the
//! checkpoint swap) and one replication sync, then wakes everyone whose
//! records the batch covered. Concurrent callers whose records rode the
//! batch never write at all — that is the amortization E19b measures.
//!
//! The barrier also *is* the revised semi-synchronous replication
//! invariant (DESIGN §19): a reply may not leave the node until the batch
//! containing its records is both flushed and shipped to the follower.
//! The old per-message `sync_replication` ran after the reply was
//! computed but held no ordering against concurrent handlers — a reply
//! could leave while an earlier message's records were still unshipped.
//! Routing every reply through [`GroupCommitter::commit_through`] closes
//! that window: the caller returns only once `flushed_seq >= seq` and the
//! follower watermark covers `seq`, or once it has led (or waited out)
//! one full flush+ship round that still could not advance the follower.
//!
//! That second clause makes the discipline *bounded* semi-synchronous:
//! with a saturated replication-drop rate (the health plane's
//! wedged-follower scenario arms 100% drop on purpose) a strict barrier
//! would wedge every reply behind an unreachable standby. After one
//! failed round the caller gives up, the `stalled` counter records the
//! freshness debt, and the watchdogs — not the data path — own the
//! incident. At the fault sweep's worst 20% drop rate a round failing at
//! all is a 0.2^64 event (see `MAX_SHIP_ATTEMPTS`), so in practice the
//! bound only triggers when a scenario wedges the link deliberately.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use promises_core::PromiseJournal;

use crate::replica::ReplicationLink;

/// Leadership state: `flushing` is true while some caller is performing
/// the batch write + ship outside the lock.
#[derive(Default)]
struct CommitState {
    flushing: bool,
}

/// Counters for one committer's lifetime (reset never; readers diff).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Batches this committer led (flush rounds, whether or not the
    /// journal had pending lines — a round may exist only to re-ship).
    pub batches: u64,
    /// Callers that returned with the follower still behind their seq
    /// after a full round — the bounded semi-sync give-ups.
    pub stalled: u64,
}

/// The per-shard group-commit coordinator. Holds no journal or link of
/// its own: both are passed per call, so a crash–restart or promotion
/// that swaps the node's journal never leaves the committer pointing at
/// a dead incarnation's state.
pub struct GroupCommitter {
    state: Mutex<CommitState>,
    done: Condvar,
    batches: AtomicU64,
    stalled: AtomicU64,
}

impl Default for GroupCommitter {
    fn default() -> Self {
        Self::new()
    }
}

impl GroupCommitter {
    /// A fresh committer: no leader, zero counters.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(CommitState::default()),
            done: Condvar::new(),
            batches: AtomicU64::new(0),
            stalled: AtomicU64::new(0),
        }
    }

    /// True once `seq` is durable under the current link topology:
    /// flushed locally, and — when a follower is attached — shipped.
    fn durable(seq: u64, journal: &PromiseJournal, link: Option<&Arc<ReplicationLink>>) -> bool {
        journal.flushed_seq() >= seq && link.is_none_or(|l| l.follower().watermark() >= seq)
    }

    /// Blocks until the batch containing `seq` is flushed and shipped,
    /// leading at most one flush+ship round itself. Returns `true` when
    /// `seq` ended up durable, `false` on a bounded-semi-sync give-up
    /// (follower unreachable for a full round — counted in `stalled`).
    ///
    /// `seq == 0` (the message appended nothing and the journal has never
    /// been written) returns immediately.
    pub fn commit_through(
        &self,
        seq: u64,
        journal: &PromiseJournal,
        link: Option<&Arc<ReplicationLink>>,
    ) -> bool {
        if seq == 0 {
            return true;
        }
        let mut led = false;
        let mut guard = self.state.lock();
        loop {
            if Self::durable(seq, journal, link) {
                return true;
            }
            if !guard.flushing {
                if led {
                    // We already led a full round and the follower still
                    // has not covered `seq`: the link is wedged, not slow.
                    // Give up bounded rather than spinning the data path.
                    self.stalled.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                guard.flushing = true;
                drop(guard);
                // Lead one group commit outside the lock: one batched
                // write for everything buffered (ours included), then one
                // ship. `sync` flushes the leader journal itself before
                // reading the segment, so the follower never receives a
                // record the leader has not written down.
                journal.flush_all();
                if let Some(l) = link {
                    l.sync();
                }
                self.batches.fetch_add(1, Ordering::Relaxed);
                led = true;
                guard = self.state.lock();
                guard.flushing = false;
                self.done.notify_all();
                continue;
            }
            if led {
                // Our own round failed and someone else is already
                // leading the next one; their outcome cannot cover a
                // wedged follower any better than ours did.
                self.stalled.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            self.done.wait(&mut guard);
        }
    }

    /// Lifetime counters (batches led, bounded give-ups).
    pub fn stats(&self) -> CommitStats {
        CommitStats {
            batches: self.batches.load(Ordering::Relaxed),
            stalled: self.stalled.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_core::{JournalOp, PromiseId};

    #[test]
    fn commit_through_flushes_pending_records() {
        let journal = PromiseJournal::new();
        let committer = GroupCommitter::new();
        let seq = journal.append(JournalOp::Release(PromiseId(1)));
        assert!(committer.commit_through(seq, &journal, None));
        assert_eq!(journal.flushed_seq(), seq);
        assert_eq!(committer.stats().batches, 1);
        assert_eq!(committer.stats().stalled, 0);
    }

    #[test]
    fn concurrent_callers_share_one_batch() {
        let journal = Arc::new(PromiseJournal::new());
        let committer = Arc::new(GroupCommitter::new());
        let threads = 8;
        let seqs: Vec<u64> = (0..threads)
            .map(|i| journal.append(JournalOp::Release(PromiseId(i))))
            .collect();
        std::thread::scope(|s| {
            for &seq in &seqs {
                let journal = Arc::clone(&journal);
                let committer = Arc::clone(&committer);
                s.spawn(move || assert!(committer.commit_through(seq, &journal, None)));
            }
        });
        assert_eq!(journal.flushed_seq(), journal.tip_seq());
        let (writes, records) = journal.flush_stats();
        assert_eq!(records, threads);
        assert!(
            writes <= threads,
            "group commit must never write more than once per record"
        );
        assert_eq!(committer.stats().stalled, 0);
    }
}
