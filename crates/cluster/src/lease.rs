//! Advisory lease directory: routes grants to the shard whose escrow
//! lease covers them.
//!
//! The durable truth about leases lives in each shard's
//! `PromiseManager` (journalled `L` records, see `promises-core`). The
//! directory is the coordinator's *advisory* cache of per-shard lease
//! headroom: it decides where to send a grant, while the receiving
//! shard's own escrow check (promised ≤ on-hand = lease) stays the
//! authority — a stale directory entry costs one extra round trip, never
//! an oversell. The directory also accumulates per-`(pool, shard)`
//! demand counters that the cluster rebalancer drains each cycle to
//! migrate lease headroom toward observed demand.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::router::fnv1a;

/// Advisory per-shard lease headroom and demand, plus home-shard routing.
#[derive(Debug)]
pub struct LeaseDirectory {
    shards: usize,
    state: Mutex<DirectoryState>,
}

#[derive(Debug, Default)]
struct DirectoryState {
    /// Estimated unpromised lease headroom per `(pool → shard)`. Refreshed
    /// authoritatively by each rebalance cycle, decremented optimistically
    /// when a local grant is routed.
    headroom: HashMap<String, Vec<u64>>,
    /// Demand observed since the last rebalance, per `(pool → shard)`:
    /// every quantity grant attempt notes its per-pool amounts against the
    /// requesting client's home shard, whether or not it was served
    /// locally.
    demand: HashMap<String, Vec<u64>>,
    /// Explicit client → home-shard pins (benchmarks, sweeps); clients
    /// without a pin hash to a stable home.
    homes: HashMap<String, usize>,
}

impl LeaseDirectory {
    /// An empty directory over `shards` shards.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a cluster needs at least one shard");
        Self {
            shards,
            state: Mutex::new(DirectoryState::default()),
        }
    }

    /// Number of shards the directory routes over.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Pins `client`'s home shard (overriding the hash).
    pub fn pin_home(&self, client: &str, shard: usize) {
        assert!(shard < self.shards, "shard {shard} out of range");
        self.state.lock().homes.insert(client.to_owned(), shard);
    }

    /// The shard where `client`'s grants are attempted locally: its pin,
    /// or a stable FNV-1a hash of the client id.
    pub fn home_shard(&self, client: &str) -> usize {
        if let Some(&s) = self.state.lock().homes.get(client) {
            return s;
        }
        (fnv1a(client.as_bytes()) as usize) % self.shards
    }

    /// True if `shard`'s estimated headroom covers every `(pool, amount)`
    /// demand.
    pub fn covers(&self, shard: usize, demands: &[(String, u64)]) -> bool {
        let st = self.state.lock();
        demands.iter().all(|(pool, amount)| {
            st.headroom
                .get(pool)
                .and_then(|per| per.get(shard))
                .is_some_and(|h| *h >= *amount)
        })
    }

    /// Optimistically deducts a locally-routed grant's demand from
    /// `shard`'s headroom estimate (the authoritative refresh happens at
    /// the next rebalance).
    pub fn consume(&self, shard: usize, demands: &[(String, u64)]) {
        let mut st = self.state.lock();
        for (pool, amount) in demands {
            if let Some(h) = st.headroom.get_mut(pool).and_then(|per| per.get_mut(shard)) {
                *h = h.saturating_sub(*amount);
            }
        }
    }

    /// Records observed demand against `shard` for the rebalancer.
    pub fn note_demand(&self, shard: usize, demands: &[(String, u64)]) {
        let shards = self.shards;
        let mut st = self.state.lock();
        for (pool, amount) in demands {
            let per = st
                .demand
                .entry(pool.clone())
                .or_insert_with(|| vec![0; shards]);
            per[shard] = per[shard].saturating_add(*amount);
        }
    }

    /// Sets the authoritative headroom estimate for `(pool, shard)`.
    pub fn set_headroom(&self, pool: &str, shard: usize, value: u64) {
        let shards = self.shards;
        let mut st = self.state.lock();
        let per = st
            .headroom
            .entry(pool.to_owned())
            .or_insert_with(|| vec![0; shards]);
        per[shard] = value;
    }

    /// Current headroom estimate for `(pool, shard)` (0 when unknown).
    pub fn headroom_of(&self, pool: &str, shard: usize) -> u64 {
        self.state
            .lock()
            .headroom
            .get(pool)
            .and_then(|per| per.get(shard))
            .copied()
            .unwrap_or(0)
    }

    /// Drains the per-shard demand counters for `pool` (resets to zero),
    /// returning one entry per shard. Called once per rebalance cycle.
    pub fn take_demand(&self, pool: &str) -> Vec<u64> {
        let shards = self.shards;
        self.state
            .lock()
            .demand
            .remove(pool)
            .unwrap_or_else(|| vec![0; shards])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_shard_is_stable_and_pinnable() {
        let dir = LeaseDirectory::new(4);
        let h = dir.home_shard("client-a");
        assert!(h < 4);
        assert_eq!(h, dir.home_shard("client-a"));
        dir.pin_home("client-a", 3);
        assert_eq!(dir.home_shard("client-a"), 3);
    }

    #[test]
    fn covers_requires_headroom_on_every_pool() {
        let dir = LeaseDirectory::new(2);
        dir.set_headroom("a", 0, 10);
        dir.set_headroom("b", 0, 3);
        let both = vec![("a".to_owned(), 5), ("b".to_owned(), 3)];
        assert!(dir.covers(0, &both));
        assert!(!dir.covers(1, &both), "shard 1 has no headroom");
        let too_much = vec![("a".to_owned(), 5), ("b".to_owned(), 4)];
        assert!(!dir.covers(0, &too_much));
    }

    #[test]
    fn consume_decrements_until_exhausted() {
        let dir = LeaseDirectory::new(1);
        dir.set_headroom("a", 0, 4);
        let d = vec![("a".to_owned(), 3)];
        assert!(dir.covers(0, &d));
        dir.consume(0, &d);
        assert_eq!(dir.headroom_of("a", 0), 1);
        assert!(!dir.covers(0, &d));
    }

    #[test]
    fn demand_accumulates_and_drains() {
        let dir = LeaseDirectory::new(3);
        dir.note_demand(1, &[("a".to_owned(), 2)]);
        dir.note_demand(1, &[("a".to_owned(), 3)]);
        dir.note_demand(2, &[("a".to_owned(), 1)]);
        assert_eq!(dir.take_demand("a"), vec![0, 5, 1]);
        assert_eq!(dir.take_demand("a"), vec![0, 0, 0], "drained");
    }
}
