//! One promise-manager shard: an autonomous node owning a subset of the
//! pools, with its own resource manager, journal, telemetry registry, and
//! wire gateway. Shards share nothing but the bus and the cluster clock —
//! cooperation happens only through explicit promise messages, never
//! shared state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use promises_core::{Catalog, Clock, PoolSchema, PromiseJournal, PromiseManager, RecoveryReport};
use promises_rm::ResourceManager;
use promises_telemetry::{FlightRecorder, JournalFacts, ShardEvidence, Telemetry};
use promises_wire::{Envelope, InMemoryBus, PromiseGateway, Service};

use crate::replica::{ReplicationLink, ShardFollower};
use crate::router::shard_endpoint;

/// The bus-facing front of a shard: a single-threaded server loop. Real
/// service endpoints process one request at a time per core, so the
/// server serializes message handling per node and can model a fixed
/// per-message service time (E13 uses this to emulate each node running
/// on its own machine — sleeps overlap across nodes, so cluster
/// throughput scales with node count even on a small test box).
///
/// The gateway behind the server is swappable, so a crash–restart
/// replaces the shard's promise manager without re-registering the
/// endpoint.
pub struct ShardServer {
    gateway: Mutex<Arc<PromiseGateway>>,
    service_us: AtomicU64,
    replication: Mutex<Option<Arc<ReplicationLink>>>,
}

impl ShardServer {
    fn new(gateway: Arc<PromiseGateway>) -> Self {
        Self {
            gateway: Mutex::new(gateway),
            service_us: AtomicU64::new(0),
            replication: Mutex::new(None),
        }
    }

    /// Sets the modeled per-message service time (0 disables the model
    /// and lets messages race straight into the gateway).
    pub fn set_service_us(&self, us: u64) {
        self.service_us.store(us, Ordering::Relaxed);
    }

    fn swap_gateway(&self, gateway: Arc<PromiseGateway>) {
        *self.gateway.lock() = gateway;
    }

    /// Installs (or clears) the replication link synced after every
    /// handled message, before the reply leaves the node. That ordering is
    /// the semi-synchronous discipline: nothing a client or coordinator
    /// has seen acknowledged can be missing from the follower.
    pub fn set_replication(&self, link: Option<Arc<ReplicationLink>>) {
        *self.replication.lock() = link;
    }

    fn sync_replication(&self) {
        let link = self.replication.lock().clone();
        if let Some(link) = link {
            link.sync();
        }
    }
}

impl Service for ShardServer {
    fn handle(&self, envelope: Envelope) -> Envelope {
        let us = self.service_us.load(Ordering::Relaxed);
        let reply = if us == 0 {
            let gateway = Arc::clone(&self.gateway.lock());
            gateway.handle(envelope)
        } else {
            // Single-threaded server: the whole request — modeled service
            // time included — runs under the node's loop lock.
            let guard = self.gateway.lock();
            std::thread::sleep(Duration::from_micros(us));
            guard.handle(envelope)
        };
        // Ship whatever the message journalled before acknowledging it.
        self.sync_replication();
        reply
    }
}

/// One shard node. The promise manager (and with it the in-memory promise
/// table) can be killed and rebuilt from the journal; the resource
/// manager, journal, and telemetry registry survive a restart, exactly as
/// durable storage would.
pub struct ShardNode {
    /// Shard index within the cluster.
    pub index: usize,
    /// Bus endpoint this shard's gateway answers on.
    pub endpoint: String,
    /// The shard's private resource manager.
    pub rm: Arc<ResourceManager>,
    /// The shard's durable promise journal.
    pub journal: Arc<PromiseJournal>,
    /// The shard's promise manager.
    pub pm: Arc<PromiseManager>,
    /// The wire gateway wrapping `pm`.
    pub gateway: Arc<PromiseGateway>,
    /// The bus-facing server loop fronting `gateway`.
    pub server: Arc<ShardServer>,
    /// The shard's private telemetry registry.
    pub telemetry: Arc<Telemetry>,
    /// The warm standby, when the cluster enabled replication.
    pub follower: Option<Arc<ShardFollower>>,
    /// The shipping channel feeding `follower`.
    pub replication: Option<Arc<ReplicationLink>>,
    /// Flight recorder for this node's state transitions (crash/restart,
    /// promotion, compaction swaps) — shares the cluster epoch.
    pub recorder: Arc<FlightRecorder>,
    clock: Arc<dyn Clock>,
}

impl ShardNode {
    /// Builds shard `index` on `bus` with fresh storage. Pools are
    /// registered later by the cluster builder ([`ShardNode::host_pool`]).
    pub fn build(index: usize, bus: &InMemoryBus, clock: Arc<dyn Clock>) -> Self {
        let rm = Arc::new(ResourceManager::new());
        let journal = Arc::new(PromiseJournal::new());
        let telemetry = Telemetry::shared();
        let pm = Arc::new(
            PromiseManager::new(Arc::clone(&rm), Arc::clone(&clock))
                .with_journal(Arc::clone(&journal)),
        );
        rm.set_telemetry(Some(Arc::clone(&telemetry)));
        pm.set_telemetry(Some(Arc::clone(&telemetry)));
        let gateway = Arc::new(PromiseGateway::new(Arc::clone(&pm)));
        let node = Self {
            index,
            endpoint: shard_endpoint(index),
            rm,
            journal,
            server: Arc::new(ShardServer::new(Arc::clone(&gateway))),
            gateway,
            pm,
            telemetry,
            follower: None,
            replication: None,
            recorder: FlightRecorder::new(shard_endpoint(index)),
            clock,
        };
        node.register_handlers();
        bus.register(&node.endpoint, Arc::clone(&node.server) as _);
        node
    }

    /// Registers the shard's quantity-purchase action handler (the same
    /// merchant/purchase contract the single-node harnesses expose).
    fn register_handlers(&self) {
        self.gateway.register_handler(
            "merchant",
            "purchase",
            Arc::new(|rm, txn, action| {
                let pool = action
                    .get("pool")
                    .ok_or_else(|| promises_core::ActionError::App("missing pool".into()))?
                    .to_owned();
                let qty: i64 = action
                    .get("qty")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| promises_core::ActionError::App("missing qty".into()))?;
                rm.update(txn, Catalog::QTY_TABLE, &pool, |r| {
                    let q = r.int("qty").unwrap_or(0);
                    r.set("qty", q - qty);
                })?;
                Ok(vec![("taken".into(), qty.to_string())])
            }),
        );
    }

    /// Registers and seeds a quantity pool on this shard.
    pub fn host_pool(&self, pool: &str, qty: u64) {
        self.pm.register_pool(PoolSchema::quantity(pool));
        self.pm.seed_quantity(pool, qty).expect("seed shard pool");
    }

    /// Registers a quantity pool on this shard with an escrow `lease` as
    /// its on-hand quantity (the shard's slice of the cluster-wide pool;
    /// journalled as an `L` record so the split survives crash/restart).
    pub fn host_leased_pool(&self, pool: &str, lease: u64) {
        self.pm.register_pool(PoolSchema::quantity(pool));
        self.pm.install_lease(pool, lease).expect("install lease");
    }

    /// Kills the shard's promise manager (the in-memory table dies) and
    /// rebuilds it from the journal, re-registering on `bus`. Returns the
    /// recovery report — `in_doubt` counts prepared holds awaiting the
    /// coordinator. `pools` must list the pool names this shard hosts
    /// (schema registration is not journalled, matching the single-node
    /// crash–restart harness).
    pub fn crash_restart(&mut self, bus: &InMemoryBus, pools: &[String]) -> RecoveryReport {
        let pm = Arc::new(PromiseManager::new(
            Arc::clone(&self.rm),
            Arc::clone(&self.clock),
        ));
        pm.set_telemetry(Some(Arc::clone(&self.telemetry)));
        for pool in pools {
            pm.register_pool(PoolSchema::quantity(pool.as_str()));
        }
        let report = pm
            .recover(Arc::clone(&self.journal))
            .expect("shard recovery succeeds");
        self.recorder.record(
            "node.restart",
            format!(
                "{} replayed={} recovered={} in_doubt={}",
                self.endpoint, report.replayed, report.recovered, report.in_doubt
            ),
        );
        self.pm = pm;
        self.gateway = Arc::new(PromiseGateway::new(Arc::clone(&self.pm)));
        self.register_handlers();
        self.server.swap_gateway(Arc::clone(&self.gateway));
        bus.register(&self.endpoint, Arc::clone(&self.server) as _);
        report
    }

    /// Promotes this shard's warm follower over a dead leader: the
    /// leader's RM, journal, and promise table are all treated as lost
    /// with the node. The follower's journal copy becomes the shard's
    /// journal; a fresh RM is rebuilt (`schemas` re-registered, `seeds`
    /// restoring the on-hand quantities of non-leased pools — leased
    /// pools re-sync on-hand from their journalled `L` records during
    /// recovery), the standard recovery path replays the replica, and the
    /// reused server loop answers on `new_endpoint` (the epoch-fenced
    /// address minted by the router). The caller attaches a fresh
    /// follower afterwards so the promoted leader is itself protected.
    pub fn promote(
        &mut self,
        bus: &InMemoryBus,
        schemas: &[String],
        seeds: &[(String, u64)],
        new_endpoint: String,
    ) -> RecoveryReport {
        let follower = self
            .follower
            .take()
            .expect("promotion requires replication to be enabled");
        self.replication = None;
        self.server.set_replication(None);

        let journal = Arc::clone(&follower.journal);
        let rm = Arc::new(ResourceManager::new());
        rm.set_telemetry(Some(Arc::clone(&self.telemetry)));
        let pm = Arc::new(PromiseManager::new(
            Arc::clone(&rm),
            Arc::clone(&self.clock),
        ));
        pm.set_telemetry(Some(Arc::clone(&self.telemetry)));
        for pool in schemas {
            pm.register_pool(PoolSchema::quantity(pool.as_str()));
        }
        for (pool, qty) in seeds {
            pm.seed_quantity(pool.as_str(), *qty)
                .expect("re-seed promoted pool");
        }
        let report = pm
            .recover(Arc::clone(&journal))
            .expect("follower journal replays cleanly");

        self.rm = rm;
        self.journal = journal;
        self.pm = pm;
        self.gateway = Arc::new(PromiseGateway::new(Arc::clone(&self.pm)));
        self.register_handlers();
        self.server.swap_gateway(Arc::clone(&self.gateway));
        self.endpoint = new_endpoint;
        bus.register(&self.endpoint, Arc::clone(&self.server) as _);
        self.recorder.record(
            "failover.promote",
            format!(
                "{} replayed={} recovered={} in_doubt={}",
                self.endpoint, report.replayed, report.recovered, report.in_doubt
            ),
        );
        report
    }

    /// Ground truth for the lifecycle auditor, digested from the journal.
    pub fn journal_facts(&self) -> JournalFacts {
        let mut facts = JournalFacts::default();
        if let Ok(entries) = self.journal.entries() {
            for entry in entries {
                match entry.op {
                    promises_core::JournalOp::Grant(rec) => {
                        facts.granted.insert(rec.id.0);
                    }
                    promises_core::JournalOp::Prepared(rec) => {
                        facts.granted.insert(rec.id.0);
                    }
                    promises_core::JournalOp::Release(id) => {
                        facts.released.insert(id.0);
                    }
                    promises_core::JournalOp::Expire(id) => {
                        facts.expired.insert(id.0);
                    }
                    promises_core::JournalOp::Checkpoint(cp) => {
                        // A checkpoint *is* the journal prefix: every live
                        // record it carries was granted (compaction already
                        // folded released/expired history away).
                        for item in cp.live {
                            facts.granted.insert(item.record.id.0);
                        }
                    }
                    _ => {}
                }
            }
        }
        facts
    }

    /// This shard's spans + journal truth, packaged for
    /// [`promises_telemetry::audit_cluster_lifecycles`].
    pub fn evidence(&self) -> ShardEvidence {
        ShardEvidence {
            label: self.endpoint.clone(),
            spans: self.telemetry.spans(),
            journal: self.journal_facts(),
        }
    }
}
