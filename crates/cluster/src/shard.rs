//! One promise-manager shard: an autonomous node owning a subset of the
//! pools, with its own resource manager, journal, telemetry registry, and
//! wire gateway. Shards share nothing but the bus and the cluster clock —
//! cooperation happens only through explicit promise messages, never
//! shared state.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};
use promises_core::{Catalog, Clock, PoolSchema, PromiseJournal, PromiseManager, RecoveryReport};
use promises_rm::ResourceManager;
use promises_telemetry::{FlightRecorder, JournalFacts, ShardEvidence, Telemetry};
use promises_wire::{Envelope, InMemoryBus, PromiseGateway, Service};

use crate::commit::{CommitStats, GroupCommitter};
use crate::replica::{ReplicationLink, ShardFollower};
use crate::router::shard_endpoint;

/// The live incarnation of a shard node: the gateway (wrapping the
/// promise manager) and the journal it appends to. Both live in one
/// swap slot so a reader can never observe a torn pairing — a new
/// gateway with the old incarnation's journal or vice versa.
struct NodeState {
    gateway: Arc<PromiseGateway>,
    journal: Arc<PromiseJournal>,
}

/// Where a blocked caller waits for its reply. `panicked` re-raises a
/// worker-side panic in the caller's thread, so a failing assertion in a
/// handler still fails the test that sent the message instead of
/// deadlocking it.
#[derive(Default)]
struct ReplyState {
    reply: Option<Envelope>,
    panicked: bool,
}

#[derive(Default)]
struct ReplySlot {
    state: Mutex<ReplyState>,
    ready: Condvar,
}

/// One queued request: the envelope plus the slot its caller blocks on.
struct Job {
    envelope: Envelope,
    slot: Arc<ReplySlot>,
}

/// State shared between the server facade and its worker threads. Workers
/// hold `Arc<ServerInner>` — never `Arc<ShardServer>` — so the facade's
/// `Drop` (which joins the workers) is actually reachable.
struct ServerInner {
    queue: Mutex<VecDeque<Job>>,
    arrived: Condvar,
    /// Release-stored by `Drop`, Acquire-loaded by workers: the store
    /// must happen-before a woken worker's decision to exit, or a worker
    /// could miss jobs queued before shutdown.
    shutdown: AtomicBool,
    state: RwLock<NodeState>,
    /// Incarnation counter, bumped under the `state` write lock on every
    /// swap. Release/Acquire so an observer that reads epoch N is
    /// guaranteed to see incarnation N's state if it then takes the read
    /// lock — the epoch-checked access the restart-under-load test pins.
    epoch: AtomicU64,
    /// Modeled per-message service time. Relaxed is deliberate: this is a
    /// standalone configuration value — no other data is published
    /// through it, so no happens-before edge is load-bearing.
    service_us: AtomicU64,
    replication: Mutex<Option<Arc<ReplicationLink>>>,
    committer: GroupCommitter,
}

impl ServerInner {
    /// One worker iteration's request lifecycle: modeled service time,
    /// then the handler under the incarnation read lock, then the
    /// group-commit barrier before the reply is released.
    fn process(&self, envelope: Envelope) -> Envelope {
        let us = self.service_us.load(Ordering::Relaxed);
        if us > 0 {
            // The sleep models the node's service time on its own thread
            // (not under any lock): sleeps overlap across shard threads,
            // which is what makes cluster throughput scale with shard
            // count in wall-clock time even on a small test box.
            std::thread::sleep(Duration::from_micros(us));
        }
        // Hold the incarnation read lock across the whole handler: a
        // crash–restart's swap (write lock) now *waits for in-flight
        // requests to drain* before recovery replays the journal, so a
        // request can never run — or journal — against a dead
        // incarnation after its replacement was built. (This closes the
        // race where the old code cloned the gateway and dropped the
        // lock before handling.)
        let (reply, seq, journal) = {
            let state = self.state.read();
            let reply = state.gateway.handle(envelope);
            // Everything this message appended is covered by the tip.
            (reply, state.journal.tip_seq(), Arc::clone(&state.journal))
        };
        // Group-commit barrier, outside the incarnation lock so a pending
        // swap only waits for handling, never for replication: the reply
        // may not leave until the batch containing this message's records
        // is flushed and shipped (DESIGN §19).
        let link = self.replication.lock().clone();
        self.committer.commit_through(seq, &journal, link.as_ref());
        reply
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock();
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    self.arrived.wait(&mut queue);
                }
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| self.process(job.envelope)));
            let mut state = job.slot.state.lock();
            match outcome {
                Ok(reply) => state.reply = Some(reply),
                Err(_) => state.panicked = true,
            }
            drop(state);
            job.slot.ready.notify_one();
        }
    }
}

/// The bus-facing front of a shard: a real executor. The bus delivers
/// each envelope synchronously in the caller's thread; `handle` enqueues
/// it on the shard's inbound queue and blocks until a shard worker has
/// processed it. Each shard runs one dedicated worker thread by default —
/// the thread-per-shard model, preserving the one-core-per-node service
/// discipline E13 assumes — and can grow a small pool
/// ([`ShardServer::set_workers`]) where intra-shard concurrency is wanted;
/// the PR 1 footprint-scoped locks, not a node-wide loop mutex, provide
/// isolation inside the shard.
///
/// The gateway (and on promotion, the journal) behind the server is
/// swappable, so a crash–restart replaces the shard's promise manager
/// without re-registering the endpoint; the swap quiesces in-flight
/// requests first (see [`ServerInner::process`]).
pub struct ShardServer {
    inner: Arc<ServerInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ShardServer {
    fn new(gateway: Arc<PromiseGateway>, journal: Arc<PromiseJournal>) -> Self {
        let server = Self {
            inner: Arc::new(ServerInner {
                queue: Mutex::new(VecDeque::new()),
                arrived: Condvar::new(),
                shutdown: AtomicBool::new(false),
                state: RwLock::new(NodeState { gateway, journal }),
                epoch: AtomicU64::new(0),
                service_us: AtomicU64::new(0),
                replication: Mutex::new(None),
                committer: GroupCommitter::new(),
            }),
            workers: Mutex::new(Vec::new()),
        };
        server.spawn_worker();
        server
    }

    fn spawn_worker(&self) {
        let inner = Arc::clone(&self.inner);
        self.workers
            .lock()
            .push(std::thread::spawn(move || inner.worker_loop()));
    }

    /// Grows the worker pool to `n` threads (never shrinks — workers are
    /// parked on the queue condvar and cost nothing idle). More than one
    /// worker lets requests overlap *inside* a shard, isolated by the
    /// footprint-scoped manager locks; the default of one preserves the
    /// one-core-per-node model.
    pub fn set_workers(&self, n: usize) {
        let current = self.workers.lock().len();
        for _ in current..n {
            self.spawn_worker();
        }
    }

    /// Current worker-pool size.
    pub fn worker_count(&self) -> usize {
        self.workers.lock().len()
    }

    /// Requests queued but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Sets the modeled per-message service time (0 disables the model).
    pub fn set_service_us(&self, us: u64) {
        self.inner.service_us.store(us, Ordering::Relaxed);
    }

    /// The incarnation epoch: how many times the gateway/journal slot has
    /// been swapped (crash–restarts plus promotions).
    pub fn incarnation_epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Group-commit counters for this shard (batches led, bounded
    /// semi-sync give-ups).
    pub fn commit_stats(&self) -> CommitStats {
        self.inner.committer.stats()
    }

    /// Quiesces the shard (write-locking the incarnation slot, which
    /// drains in-flight handlers), runs `build` to construct the next
    /// incarnation — journal recovery happens *inside* the quiesced
    /// window, so no request can append between replay and install —
    /// then installs it and bumps the epoch.
    fn swap_state<R>(
        &self,
        build: impl FnOnce() -> (Arc<PromiseGateway>, Arc<PromiseJournal>, R),
    ) -> R {
        let mut slot = self.inner.state.write();
        let (gateway, journal, result) = build();
        slot.gateway = gateway;
        slot.journal = journal;
        // Bumped while still exclusive: any reader that subsequently
        // acquires the slot sees the new epoch with the new incarnation.
        self.inner.epoch.fetch_add(1, Ordering::Release);
        drop(slot);
        result
    }

    /// Installs (or clears) the replication link enforced by the
    /// group-commit barrier: no reply leaves the node until the batch
    /// containing its records is flushed and shipped (DESIGN §19).
    pub fn set_replication(&self, link: Option<Arc<ReplicationLink>>) {
        *self.inner.replication.lock() = link;
    }
}

impl Drop for ShardServer {
    fn drop(&mut self) {
        // Release pairs with the workers' Acquire load: a worker woken by
        // the notify below must observe the flag (and it drains the queue
        // before exiting, so nothing queued is abandoned).
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.arrived.notify_all();
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Service for ShardServer {
    fn handle(&self, envelope: Envelope) -> Envelope {
        let slot = Arc::new(ReplySlot::default());
        self.inner.queue.lock().push_back(Job {
            envelope,
            slot: Arc::clone(&slot),
        });
        self.inner.arrived.notify_one();
        let mut state = slot.state.lock();
        loop {
            if state.panicked {
                panic!("shard worker panicked while handling a request");
            }
            if let Some(reply) = state.reply.take() {
                return reply;
            }
            slot.ready.wait(&mut state);
        }
    }
}

/// Registers the shard's quantity-purchase action handler (the same
/// merchant/purchase contract the single-node harnesses expose). A free
/// function so it can run inside [`ShardServer::swap_state`]'s quiesced
/// window when a restart or promotion builds a fresh gateway.
fn register_handlers(gateway: &PromiseGateway) {
    gateway.register_handler(
        "merchant",
        "purchase",
        Arc::new(|rm, txn, action| {
            let pool = action
                .get("pool")
                .ok_or_else(|| promises_core::ActionError::App("missing pool".into()))?
                .to_owned();
            let qty: i64 = action
                .get("qty")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| promises_core::ActionError::App("missing qty".into()))?;
            rm.update(txn, Catalog::QTY_TABLE, &pool, |r| {
                let q = r.int("qty").unwrap_or(0);
                r.set("qty", q - qty);
            })?;
            Ok(vec![("taken".into(), qty.to_string())])
        }),
    );
}

/// One shard node. The promise manager (and with it the in-memory promise
/// table) can be killed and rebuilt from the journal; the resource
/// manager, journal, and telemetry registry survive a restart, exactly as
/// durable storage would.
pub struct ShardNode {
    /// Shard index within the cluster.
    pub index: usize,
    /// Bus endpoint this shard's gateway answers on.
    pub endpoint: String,
    /// The shard's private resource manager.
    pub rm: Arc<ResourceManager>,
    /// The shard's durable promise journal.
    pub journal: Arc<PromiseJournal>,
    /// The shard's promise manager.
    pub pm: Arc<PromiseManager>,
    /// The wire gateway wrapping `pm`.
    pub gateway: Arc<PromiseGateway>,
    /// The bus-facing server loop fronting `gateway`.
    pub server: Arc<ShardServer>,
    /// The shard's private telemetry registry.
    pub telemetry: Arc<Telemetry>,
    /// The warm standby, when the cluster enabled replication.
    pub follower: Option<Arc<ShardFollower>>,
    /// The shipping channel feeding `follower`.
    pub replication: Option<Arc<ReplicationLink>>,
    /// Flight recorder for this node's state transitions (crash/restart,
    /// promotion, compaction swaps) — shares the cluster epoch.
    pub recorder: Arc<FlightRecorder>,
    clock: Arc<dyn Clock>,
}

impl ShardNode {
    /// Builds shard `index` on `bus` with fresh storage. Pools are
    /// registered later by the cluster builder ([`ShardNode::host_pool`]).
    pub fn build(index: usize, bus: &InMemoryBus, clock: Arc<dyn Clock>) -> Self {
        let rm = Arc::new(ResourceManager::new());
        let journal = Arc::new(PromiseJournal::new());
        let telemetry = Telemetry::shared();
        let pm = Arc::new(
            PromiseManager::new(Arc::clone(&rm), Arc::clone(&clock))
                .with_journal(Arc::clone(&journal)),
        );
        rm.set_telemetry(Some(Arc::clone(&telemetry)));
        pm.set_telemetry(Some(Arc::clone(&telemetry)));
        let gateway = Arc::new(PromiseGateway::new(Arc::clone(&pm)));
        register_handlers(&gateway);
        let node = Self {
            index,
            endpoint: shard_endpoint(index),
            rm,
            server: Arc::new(ShardServer::new(Arc::clone(&gateway), Arc::clone(&journal))),
            journal,
            gateway,
            pm,
            telemetry,
            follower: None,
            replication: None,
            recorder: FlightRecorder::new(shard_endpoint(index)),
            clock,
        };
        bus.register(&node.endpoint, Arc::clone(&node.server) as _);
        node
    }

    /// Registers and seeds a quantity pool on this shard.
    pub fn host_pool(&self, pool: &str, qty: u64) {
        self.pm.register_pool(PoolSchema::quantity(pool));
        self.pm.seed_quantity(pool, qty).expect("seed shard pool");
    }

    /// Registers a quantity pool on this shard with an escrow `lease` as
    /// its on-hand quantity (the shard's slice of the cluster-wide pool;
    /// journalled as an `L` record so the split survives crash/restart).
    pub fn host_leased_pool(&self, pool: &str, lease: u64) {
        self.pm.register_pool(PoolSchema::quantity(pool));
        self.pm.install_lease(pool, lease).expect("install lease");
    }

    /// Kills the shard's promise manager (the in-memory table dies) and
    /// rebuilds it from the journal, re-registering on `bus`. Returns the
    /// recovery report — `in_doubt` counts prepared holds awaiting the
    /// coordinator. `pools` must list the pool names this shard hosts
    /// (schema registration is not journalled, matching the single-node
    /// crash–restart harness).
    ///
    /// The rebuild runs inside the server's quiesced swap window:
    /// in-flight requests drain *before* recovery replays the journal,
    /// and requests arriving during the restart queue until the new
    /// incarnation is installed — so nothing can race into the dead
    /// manager or journal a record the replay has already passed.
    pub fn crash_restart(&mut self, bus: &InMemoryBus, pools: &[String]) -> RecoveryReport {
        let (pm, gateway, report) = self.server.swap_state(|| {
            let pm = Arc::new(PromiseManager::new(
                Arc::clone(&self.rm),
                Arc::clone(&self.clock),
            ));
            pm.set_telemetry(Some(Arc::clone(&self.telemetry)));
            for pool in pools {
                pm.register_pool(PoolSchema::quantity(pool.as_str()));
            }
            let report = pm
                .recover(Arc::clone(&self.journal))
                .expect("shard recovery succeeds");
            let gateway = Arc::new(PromiseGateway::new(Arc::clone(&pm)));
            register_handlers(&gateway);
            (
                Arc::clone(&gateway),
                Arc::clone(&self.journal),
                (pm, gateway, report),
            )
        });
        self.recorder.record(
            "node.restart",
            format!(
                "{} replayed={} recovered={} in_doubt={}",
                self.endpoint, report.replayed, report.recovered, report.in_doubt
            ),
        );
        self.pm = pm;
        self.gateway = gateway;
        bus.register(&self.endpoint, Arc::clone(&self.server) as _);
        report
    }

    /// Promotes this shard's warm follower over a dead leader: the
    /// leader's RM, journal, and promise table are all treated as lost
    /// with the node. The follower's journal copy becomes the shard's
    /// journal; a fresh RM is rebuilt (`schemas` re-registered, `seeds`
    /// restoring the on-hand quantities of non-leased pools — leased
    /// pools re-sync on-hand from their journalled `L` records during
    /// recovery), the standard recovery path replays the replica, and the
    /// reused server loop answers on `new_endpoint` (the epoch-fenced
    /// address minted by the router). The caller attaches a fresh
    /// follower afterwards so the promoted leader is itself protected.
    pub fn promote(
        &mut self,
        bus: &InMemoryBus,
        schemas: &[String],
        seeds: &[(String, u64)],
        new_endpoint: String,
    ) -> RecoveryReport {
        let follower = self
            .follower
            .take()
            .expect("promotion requires replication to be enabled");
        self.replication = None;
        self.server.set_replication(None);

        let journal = Arc::clone(&follower.journal);
        let (rm, pm, gateway, report) = self.server.swap_state(|| {
            let rm = Arc::new(ResourceManager::new());
            rm.set_telemetry(Some(Arc::clone(&self.telemetry)));
            let pm = Arc::new(PromiseManager::new(
                Arc::clone(&rm),
                Arc::clone(&self.clock),
            ));
            pm.set_telemetry(Some(Arc::clone(&self.telemetry)));
            for pool in schemas {
                pm.register_pool(PoolSchema::quantity(pool.as_str()));
            }
            for (pool, qty) in seeds {
                pm.seed_quantity(pool.as_str(), *qty)
                    .expect("re-seed promoted pool");
            }
            let report = pm
                .recover(Arc::clone(&journal))
                .expect("follower journal replays cleanly");
            let gateway = Arc::new(PromiseGateway::new(Arc::clone(&pm)));
            register_handlers(&gateway);
            (
                Arc::clone(&gateway),
                Arc::clone(&journal),
                (rm, pm, gateway, report),
            )
        });

        self.rm = rm;
        self.journal = journal;
        self.pm = pm;
        self.gateway = gateway;
        self.endpoint = new_endpoint;
        bus.register(&self.endpoint, Arc::clone(&self.server) as _);
        self.recorder.record(
            "failover.promote",
            format!(
                "{} replayed={} recovered={} in_doubt={}",
                self.endpoint, report.replayed, report.recovered, report.in_doubt
            ),
        );
        report
    }

    /// Ground truth for the lifecycle auditor, digested from the journal.
    pub fn journal_facts(&self) -> JournalFacts {
        let mut facts = JournalFacts::default();
        if let Ok(entries) = self.journal.entries() {
            for entry in entries {
                match entry.op {
                    promises_core::JournalOp::Grant(rec) => {
                        facts.granted.insert(rec.id.0);
                    }
                    promises_core::JournalOp::Prepared(rec) => {
                        facts.granted.insert(rec.id.0);
                    }
                    promises_core::JournalOp::Release(id) => {
                        facts.released.insert(id.0);
                    }
                    promises_core::JournalOp::Expire(id) => {
                        facts.expired.insert(id.0);
                    }
                    promises_core::JournalOp::Checkpoint(cp) => {
                        // A checkpoint *is* the journal prefix: every live
                        // record it carries was granted (compaction already
                        // folded released/expired history away).
                        for item in cp.live {
                            facts.granted.insert(item.record.id.0);
                        }
                    }
                    _ => {}
                }
            }
        }
        facts
    }

    /// This shard's spans + journal truth, packaged for
    /// [`promises_telemetry::audit_cluster_lifecycles`].
    pub fn evidence(&self) -> ShardEvidence {
        ShardEvidence {
            label: self.endpoint.clone(),
            spans: self.telemetry.spans(),
            journal: self.journal_facts(),
        }
    }
}
