//! `promises-cluster` — a sharded promise-manager cluster with
//! cross-shard atomic grants.
//!
//! The paper's §4 atomicity rule — a multi-predicate request is granted
//! or rejected as a unit — is easy when one manager owns every pool and
//! impossible to scale that way. This crate partitions pool ownership
//! across N autonomous shard nodes ([`ShardNode`]: own journal, own
//! resource manager, own telemetry) behind a deterministic router
//! ([`ShardMap`]) and restores the unit-grant guarantee with an explicit
//! prepare/commit protocol ([`Coordinator`]) over the existing wire bus:
//!
//! * single-shard footprints take a fast path — one ordinary grant, no
//!   coordination round;
//! * cross-shard footprints get per-shard *prepared holds* (reserved
//!   immediately, journalled in doubt) that a logged commit point turns
//!   into ordinary grants, or an abort releases — rejection stays
//!   immediate and non-blocking, so there is no distributed deadlock;
//! * crash recovery is presumed-abort over the [`CoordinatorLog`] plus
//!   each shard's journal replay of in-doubt `P` records;
//! * with [`PromiseCluster::enable_leases`], a quantity pool's on-hand
//!   total is partitioned into per-shard *escrow leases* (O'Neil-style
//!   escrow at the cluster layer): a grant covered by the requesting
//!   client's home-shard lease is one purely local escrow decrement — no
//!   coordinator, no 2PC — and a rebalancer migrates lease headroom
//!   toward observed demand on the prune cadence;
//! * with [`PromiseCluster::enable_replication`], every shard leader
//!   ships its journal (checkpoint + tail segments) to a warm
//!   [`ShardFollower`] semi-synchronously — acked before any reply
//!   leaves the node — so [`PromiseCluster::promote_follower`] can
//!   replace a killed leader with a byte-identical replica behind an
//!   epoch-fenced endpoint, turning "restartable" into "available".

#![warn(missing_docs)]

mod cluster;
mod commit;
mod coordinator;
mod lease;
mod log;
mod replica;
mod router;
mod shard;

pub use cluster::{FailoverReport, LeaseRebalance, PromiseCluster};
pub use commit::{CommitStats, GroupCommitter};
pub use coordinator::{
    ClusterDecision, CoordError, CoordRecovery, Coordinator, CrashPoint, GrantPart,
    NegotiatedClusterGrant,
};
pub use lease::LeaseDirectory;
pub use log::{CoordLogError, CoordRecord, CoordinatorLog, LogCompaction, LogSummary, TxnId};
pub use replica::{ReplicationLink, ShardFollower, SyncReport};
pub use router::{shard_endpoint, versioned_endpoint, ShardMap};
pub use shard::{ShardNode, ShardServer};
