//! Warm-follower replication: journal shipping and fail-over promotion.
//!
//! Each shard leader owns a [`ShardFollower`] — a standby journal that
//! continuously applies shipped segments (the checkpoint-plus-tail stream
//! that compaction already produces, see `PromiseJournal::segment_after`)
//! and acks a replication watermark. Shipping is *semi-synchronous*: the
//! shard server syncs the link after handling every message and before
//! replying, so anything a client (or the 2PC coordinator) has seen
//! acknowledged is already on the follower. That discipline is what turns
//! "restartable from its own disk" into "available": when fault injection
//! kills the leader, the follower's journal is byte-for-byte the leader's
//! journal, and promotion is just the PR 2/5 recovery path run over the
//! follower's copy plus an epoch-fenced endpoint swap.
//!
//! Replication faults (`repl-drop`, `repl-lag` — see `promises_faults`)
//! degrade *freshness*, never correctness: a dropped shipment is retried
//! within the same sync, a lagged ack leaves the watermark stale for one
//! round trip and the idempotent `apply_segment` absorbs the re-ship.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use promises_core::PromiseJournal;
use promises_faults::{FaultInjector, POINT_REPL_DROP, POINT_REPL_LAG};
use promises_telemetry::Telemetry;

/// Ship retries per sync before giving up. A sync only fails to converge
/// if the drop point fires this many times in a row — at the sweep's
/// worst 20% drop rate that is a 0.2^64 event, so a non-converged sync in
/// practice means the scenario armed a 100% drop rate on purpose.
const MAX_SHIP_ATTEMPTS: usize = 64;

/// The warm standby for one shard: a journal replica plus the acked
/// replication watermark (highest journal seq the standby holds).
pub struct ShardFollower {
    /// The standby's journal copy. On promotion this *becomes* the
    /// shard's journal — the dead leader's disk is assumed lost.
    pub journal: Arc<PromiseJournal>,
    watermark: AtomicU64,
}

impl ShardFollower {
    /// A fresh, empty standby (watermark 0: it has acked nothing).
    pub fn new() -> Self {
        Self {
            journal: Arc::new(PromiseJournal::new()),
            watermark: AtomicU64::new(0),
        }
    }

    /// Highest journal sequence number this follower has acked.
    ///
    /// Acquire pairs with `ack`'s AcqRel `fetch_max`: under the threaded
    /// executor the group-commit barrier reads this watermark from worker
    /// threads to decide whether a reply may leave, and the edge
    /// guarantees that a thread observing watermark `>= seq` also
    /// observes every `apply_segment` write that shipped seq — the
    /// load-bearing happens-before of the semi-sync discipline. (Relaxed
    /// here could let a promotion read a watermark ahead of the journal
    /// lines backing it.)
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    fn ack(&self, seq: u64) {
        self.watermark.fetch_max(seq, Ordering::AcqRel);
    }
}

impl Default for ShardFollower {
    fn default() -> Self {
        Self::new()
    }
}

/// What one [`ReplicationLink::sync`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Journal lines shipped (re-ships after a lagged ack count again).
    pub shipped_lines: usize,
    /// Shipments lost in flight to the `repl-drop` fault point.
    pub dropped_shipments: usize,
    /// Acks delayed by the `repl-lag` fault point (the segment applied,
    /// the watermark stayed stale for one retry).
    pub lagged_acks: usize,
    /// Whether the follower's watermark reached the leader's tip. False
    /// only under a saturated drop rate (see `MAX_SHIP_ATTEMPTS`).
    pub caught_up: bool,
}

/// The shipping channel from one shard leader's journal to its follower.
pub struct ReplicationLink {
    leader: Arc<PromiseJournal>,
    follower: Arc<ShardFollower>,
    telemetry: Arc<Telemetry>,
    shard: usize,
    injector: Mutex<Option<Arc<FaultInjector>>>,
}

impl ReplicationLink {
    /// A link shipping `leader`'s journal to `follower`. `telemetry` is
    /// the cluster registry (lag gauges are labelled `shardN` there).
    pub fn new(
        leader: Arc<PromiseJournal>,
        follower: Arc<ShardFollower>,
        telemetry: Arc<Telemetry>,
        shard: usize,
    ) -> Self {
        Self {
            leader,
            follower,
            telemetry,
            shard,
            injector: Mutex::new(None),
        }
    }

    /// The follower this link feeds.
    pub fn follower(&self) -> Arc<ShardFollower> {
        Arc::clone(&self.follower)
    }

    /// Installs (or clears) the fault injector consulted at the
    /// `repl-drop` / `repl-lag` points.
    pub fn set_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.injector.lock() = injector;
    }

    /// Journal lines the follower has not acked yet (the lag gauge).
    pub fn lag(&self) -> u64 {
        self.leader
            .tip_seq()
            .saturating_sub(self.follower.watermark())
    }

    /// Drives the follower to the leader's current tip: ships the segment
    /// past the acked watermark, retrying dropped shipments and re-shipping
    /// after lagged acks, until caught up (or `MAX_SHIP_ATTEMPTS`). Called
    /// by the shard server after every handled message — before the reply
    /// leaves the node — and by the cluster after journal appends that
    /// bypass the bus (expiry pruning, compaction, lease rebalancing).
    pub fn sync(&self) -> SyncReport {
        let mut report = SyncReport::default();
        // Durability before shipping: the follower must never hold a
        // record the leader has not written down, or a promotion could
        // surface state a leader crash would have erased. One batched
        // flush covers everything buffered (group commit — see
        // `GroupCommitter`).
        self.leader.flush_all();
        let injector = self.injector.lock().clone();
        for _ in 0..MAX_SHIP_ATTEMPTS {
            let watermark = self.follower.watermark();
            let tip = self.leader.tip_seq();
            if watermark >= tip {
                report.caught_up = true;
                break;
            }
            if let Some(inj) = &injector {
                if inj.point_fires(POINT_REPL_DROP) {
                    // The segment was lost in flight; retry from the same
                    // watermark.
                    report.dropped_shipments += 1;
                    continue;
                }
            }
            let segment = self.leader.segment_after(watermark);
            report.shipped_lines += segment.len();
            let acked = self
                .follower
                .journal
                .apply_segment(&segment)
                .expect("segments from an intact leader journal decode");
            if let Some(inj) = &injector {
                if inj.point_fires(POINT_REPL_LAG) {
                    // Applied but the ack is delayed: the watermark stays
                    // stale, the next attempt re-ships and the idempotent
                    // apply skips the duplicates.
                    report.lagged_acks += 1;
                    continue;
                }
            }
            self.follower.ack(acked);
        }
        if report.shipped_lines > 0 {
            self.telemetry
                .add("cluster.repl.shipped_lines", report.shipped_lines as u64);
        }
        if report.dropped_shipments > 0 {
            self.telemetry.add(
                "cluster.repl.dropped_shipments",
                report.dropped_shipments as u64,
            );
        }
        if report.lagged_acks > 0 {
            self.telemetry
                .add("cluster.repl.lagged_acks", report.lagged_acks as u64);
        }
        self.telemetry
            .set_gauge(&format!("cluster.repl.lag.shard{}", self.shard), self.lag());
        // Tip and watermark gauges feed the health plane's
        // stalled-replication watchdog ("tip advances, watermark doesn't")
        // — set on every sync, converged or not, so a wedged link is
        // visible rather than silent.
        self.telemetry.set_gauge(
            &format!("cluster.repl.tip.shard{}", self.shard),
            self.leader.tip_seq(),
        );
        self.telemetry.set_gauge(
            &format!("cluster.repl.watermark.shard{}", self.shard),
            self.follower.watermark(),
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promises_core::JournalOp;
    use promises_core::PromiseId;
    use promises_faults::FaultScenario;

    fn link_over(
        leader: &Arc<PromiseJournal>,
    ) -> (ReplicationLink, Arc<ShardFollower>, Arc<Telemetry>) {
        let follower = Arc::new(ShardFollower::new());
        let tel = Telemetry::shared();
        let link = ReplicationLink::new(
            Arc::clone(leader),
            Arc::clone(&follower),
            Arc::clone(&tel),
            0,
        );
        (link, follower, tel)
    }

    #[test]
    fn sync_ships_tail_and_advances_watermark() {
        let leader = Arc::new(PromiseJournal::new());
        let (link, follower, tel) = link_over(&leader);
        assert!(link.sync().caught_up, "empty journal is trivially synced");
        leader.append(JournalOp::Release(PromiseId(1)));
        leader.append(JournalOp::Release(PromiseId(2)));
        let report = link.sync();
        assert!(report.caught_up);
        assert_eq!(report.shipped_lines, 2);
        assert_eq!(follower.watermark(), 2);
        assert_eq!(follower.journal.lines(), leader.lines());
        assert_eq!(link.lag(), 0);
        assert_eq!(tel.snapshot().gauge("cluster.repl.lag.shard0"), 0);
    }

    #[test]
    fn dropped_shipments_are_retried_within_one_sync() {
        let leader = Arc::new(PromiseJournal::new());
        let (link, follower, _tel) = link_over(&leader);
        link.set_injector(Some(Arc::new(FaultInjector::new(
            FaultScenario::quiet(7).with_replication_faults(0.5, 0.5),
        ))));
        for i in 0..32 {
            leader.append(JournalOp::Release(PromiseId(i)));
            let report = link.sync();
            assert!(report.caught_up, "50/50 drop+lag still converges");
        }
        assert_eq!(follower.watermark(), 32);
        assert_eq!(follower.journal.lines(), leader.lines());
    }

    #[test]
    fn saturated_drop_rate_reports_not_caught_up() {
        let leader = Arc::new(PromiseJournal::new());
        let (link, follower, _tel) = link_over(&leader);
        link.set_injector(Some(Arc::new(FaultInjector::new(
            FaultScenario::quiet(7).with_replication_faults(1.0, 0.0),
        ))));
        leader.append(JournalOp::Release(PromiseId(1)));
        let report = link.sync();
        assert!(!report.caught_up);
        assert_eq!(report.dropped_shipments, MAX_SHIP_ATTEMPTS);
        assert_eq!(follower.watermark(), 0);
        assert!(link.lag() > 0);
        // Clearing the fault lets the next sync drain the backlog.
        link.set_injector(None);
        assert!(link.sync().caught_up);
        assert_eq!(follower.journal.lines(), leader.lines());
    }
}
