//! Deterministic pool→shard routing.
//!
//! Ownership is *explicit first, hashed second*: pools registered through
//! the cluster builder get round-robin assignments recorded in the map
//! (so a test can pin a pool to a shard and a rebalancer can move one),
//! and any pool the map has never seen falls back to a stable FNV-1a hash
//! of its name. The map carries an epoch so later rebalancing work can
//! version ownership changes; every reassignment bumps it.

use std::collections::BTreeMap;

use parking_lot::RwLock;

/// The bus endpoint name of shard `index`.
pub fn shard_endpoint(index: usize) -> String {
    format!("shard{index}")
}

/// The bus endpoint name of shard `index` at leadership incarnation
/// `epoch`. Epoch 0 is the bare [`shard_endpoint`] name so a cluster that
/// never fails over keeps its original wire addresses.
pub fn versioned_endpoint(index: usize, epoch: u64) -> String {
    if epoch == 0 {
        shard_endpoint(index)
    } else {
        format!("shard{index}.e{epoch}")
    }
}

/// Epoch-versioned pool→shard ownership map.
#[derive(Debug)]
pub struct ShardMap {
    shards: usize,
    state: RwLock<MapState>,
}

/// Concurrency note (threaded-runtime atomics audit): both epochs below
/// are plain integers *inside* the map's `RwLock`, not atomics — every
/// reader that routes on an epoch also reads the assignments that epoch
/// versions under the same lock acquisition, so the pairing can never
/// tear and no Acquire/Release choreography is needed. Keep it that way:
/// hoisting either epoch into a lock-free atomic would reintroduce the
/// torn-pair race the shard server's incarnation slot was built to kill.
#[derive(Debug, Default)]
struct MapState {
    epoch: u64,
    assignments: BTreeMap<String, usize>,
    next_round_robin: usize,
    /// Per-shard leadership incarnation: bumped every time a follower is
    /// promoted over a dead leader, which also versions the bus endpoint
    /// name — a stale sender addressing the dead incarnation fails fast
    /// instead of reaching the ghost (epoch fencing).
    node_epochs: Vec<u64>,
}

impl ShardMap {
    /// A map over `shards` shards (at least one) with no explicit
    /// assignments yet.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a cluster needs at least one shard");
        Self {
            shards,
            state: RwLock::new(MapState {
                node_epochs: vec![0; shards],
                ..MapState::default()
            }),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The current ownership epoch (bumped by every explicit assignment).
    pub fn epoch(&self) -> u64 {
        self.state.read().epoch
    }

    /// Explicitly assigns `pool` to `shard`, bumping the epoch.
    pub fn assign(&self, pool: &str, shard: usize) {
        assert!(shard < self.shards, "shard {shard} out of range");
        let mut st = self.state.write();
        st.assignments.insert(pool.to_owned(), shard);
        st.epoch += 1;
    }

    /// Assigns `pool` to the next shard in round-robin order and returns
    /// the chosen shard. Used by the cluster builder so registration order
    /// spreads pools evenly and deterministically.
    pub fn assign_round_robin(&self, pool: &str) -> usize {
        let mut st = self.state.write();
        if let Some(&s) = st.assignments.get(pool) {
            return s;
        }
        let shard = st.next_round_robin % self.shards;
        st.next_round_robin += 1;
        st.assignments.insert(pool.to_owned(), shard);
        st.epoch += 1;
        shard
    }

    /// The shard owning `pool`: its explicit assignment, or the stable
    /// hash fallback for pools the map has never seen.
    pub fn shard_for(&self, pool: &str) -> usize {
        if let Some(&s) = self.state.read().assignments.get(pool) {
            return s;
        }
        (fnv1a(pool.as_bytes()) as usize) % self.shards
    }

    /// The bus endpoint of the shard owning `pool`.
    pub fn endpoint_for(&self, pool: &str) -> String {
        self.endpoint_of(self.shard_for(pool))
    }

    /// The leadership incarnation of `shard` (0 until its first fail-over).
    pub fn node_epoch(&self, shard: usize) -> u64 {
        self.state.read().node_epochs[shard]
    }

    /// Records a leadership change for `shard`: bumps its node epoch (and
    /// the map epoch, so cached routing is invalidated) and returns the new
    /// incarnation. Called by the cluster when promoting a follower.
    pub fn bump_node_epoch(&self, shard: usize) -> u64 {
        assert!(shard < self.shards, "shard {shard} out of range");
        let mut st = self.state.write();
        st.node_epochs[shard] += 1;
        st.epoch += 1;
        st.node_epochs[shard]
    }

    /// The current bus endpoint of `shard`, versioned by its leadership
    /// incarnation: `"shardN"` for the original leader (epoch 0, keeping
    /// every pre-fail-over wire name unchanged) and `"shardN.eK"` after
    /// `K` promotions. Every sender must resolve addresses through this —
    /// never through [`shard_endpoint`] directly — or it will keep
    /// addressing dead incarnations after a fail-over.
    pub fn endpoint_of(&self, shard: usize) -> String {
        let epoch = self.state.read().node_epochs[shard];
        versioned_endpoint(shard, epoch)
    }

    /// Splits `(pool, payload)` pairs into per-shard groups, keyed by
    /// shard index in ascending order (deterministic fan-out order).
    pub fn split_by_shard<T>(
        &self,
        items: impl IntoIterator<Item = (String, T)>,
    ) -> BTreeMap<usize, Vec<T>> {
        let mut groups: BTreeMap<usize, Vec<T>> = BTreeMap::new();
        for (pool, item) in items {
            groups.entry(self.shard_for(&pool)).or_default().push(item);
        }
        groups
    }

    /// Every explicit assignment, sorted by pool name.
    pub fn assignments(&self) -> Vec<(String, usize)> {
        self.state
            .read()
            .assignments
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

/// FNV-1a, the stable fallback hash (never `DefaultHasher`, whose output
/// may change across Rust releases and would silently re-route pools).
/// Also used by the lease directory to derive a client's home shard.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spreads_pools_and_is_sticky() {
        let map = ShardMap::new(3);
        assert_eq!(map.assign_round_robin("a"), 0);
        assert_eq!(map.assign_round_robin("b"), 1);
        assert_eq!(map.assign_round_robin("c"), 2);
        assert_eq!(map.assign_round_robin("d"), 0);
        // Re-registration does not move a pool or burn a slot.
        assert_eq!(map.assign_round_robin("b"), 1);
        assert_eq!(map.assign_round_robin("e"), 1);
        assert_eq!(map.shard_for("a"), 0);
    }

    #[test]
    fn unknown_pools_hash_stably_in_range() {
        let map = ShardMap::new(4);
        for name in ["widgets", "rooms", "flights", "x"] {
            let s = map.shard_for(name);
            assert!(s < 4);
            assert_eq!(s, map.shard_for(name), "routing must be stable");
        }
    }

    #[test]
    fn explicit_assignment_overrides_hash_and_bumps_epoch() {
        let map = ShardMap::new(2);
        let before = map.epoch();
        map.assign("widgets", 1);
        assert_eq!(map.shard_for("widgets"), 1);
        assert!(map.epoch() > before);
    }

    #[test]
    fn node_epochs_version_shard_endpoints() {
        let map = ShardMap::new(2);
        assert_eq!(map.node_epoch(1), 0);
        assert_eq!(map.endpoint_of(1), "shard1");
        map.assign("widgets", 1);
        assert_eq!(map.endpoint_for("widgets"), "shard1");
        let before = map.epoch();
        assert_eq!(map.bump_node_epoch(1), 1);
        assert!(map.epoch() > before, "promotion must bump the map epoch");
        assert_eq!(map.endpoint_of(1), "shard1.e1");
        assert_eq!(map.endpoint_for("widgets"), "shard1.e1");
        // Other shards keep their original addresses.
        assert_eq!(map.endpoint_of(0), "shard0");
        assert_eq!(map.bump_node_epoch(1), 2);
        assert_eq!(map.endpoint_of(1), "shard1.e2");
    }

    #[test]
    fn split_groups_by_owner_in_shard_order() {
        let map = ShardMap::new(2);
        map.assign("a", 1);
        map.assign("b", 0);
        map.assign("c", 1);
        let groups = map.split_by_shard(vec![
            ("a".to_owned(), "pa"),
            ("b".to_owned(), "pb"),
            ("c".to_owned(), "pc"),
        ]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&0], vec!["pb"]);
        assert_eq!(groups[&1], vec!["pa", "pc"]);
    }
}
