//! Cluster assembly: N shard nodes behind one bus, one router, and one
//! coordinator, sharing a manual clock so expiry is driven
//! deterministically in tests and sweeps.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use promises_core::{Clock, ManualClock, RecoveryReport};
use promises_faults::FaultInjector;
use promises_telemetry::{
    FlightRecorder, HealthState, IncidentReport, ShardEvidence, SpanKind, Telemetry,
    TelemetrySnapshot, WatchdogTrip,
};
use promises_wire::{InMemoryBus, RetryPolicy, RetryingClient};

use crate::coordinator::Coordinator;
use crate::lease::LeaseDirectory;
use crate::log::CoordinatorLog;
use crate::replica::{ReplicationLink, ShardFollower};
use crate::router::{versioned_endpoint, ShardMap};
use crate::shard::ShardNode;

/// What one [`PromiseCluster::rebalance_leases`] cycle did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseRebalance {
    /// Lease units moved between shards this cycle.
    pub moved: u64,
    /// Units found missing from the cluster-wide lease sum (stranded by a
    /// crash between a withdraw and its deposit) and re-credited.
    pub healed: u64,
    /// True when an armed mid-rebalance crash fired: withdraws landed,
    /// deposits did not — the stranded headroom heals next cycle.
    pub crashed: bool,
}

/// What one [`PromiseCluster::promote_follower`] call did.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// The shard whose follower was promoted.
    pub shard: usize,
    /// The shard's new leadership incarnation (≥ 1).
    pub node_epoch: u64,
    /// The promoted leader's bus endpoint (`"shardN.eK"`).
    pub endpoint: String,
    /// The recovery report from replaying the follower's journal —
    /// `in_doubt` counts prepared 2PC holds awaiting the coordinator.
    pub recovery: RecoveryReport,
    /// Wall-clock time from the promotion decision to the promoted
    /// leader answering on its new endpoint (the measured MTTR).
    pub mttr: Duration,
}

/// A running promise-manager cluster.
pub struct PromiseCluster {
    /// The bus every shard answers on.
    pub bus: Arc<InMemoryBus>,
    /// Pool→shard ownership.
    pub map: Arc<ShardMap>,
    /// The shard nodes, by index.
    pub nodes: Vec<ShardNode>,
    /// The cross-shard grant coordinator.
    pub coordinator: Arc<Coordinator>,
    /// The shared cluster clock (manual, driven by tests/sweeps).
    pub clock: Arc<ManualClock>,
    /// The coordinator's telemetry registry (shards have their own).
    pub telemetry: Arc<Telemetry>,
    /// Control-plane flight recorder: 2PC phase changes (via the
    /// coordinator), lease withdraws/deposits, fail-over kills and
    /// promotions. Shares an epoch with every shard recorder so incident
    /// timelines are comparable across nodes.
    pub recorder: Arc<FlightRecorder>,
    /// Registered pools: `(name, seeded qty, owning shard)` — kept so a
    /// crashed shard can re-register its schemas on restart.
    pools: Mutex<Vec<(String, u64, usize)>>,
    /// The advisory lease directory when [`PromiseCluster::enable_leases`]
    /// has been called; `None` keeps the pre-lease ownership routing.
    leases: Mutex<Option<Arc<LeaseDirectory>>>,
    /// Serialises rebalance cycles (the sweep driver and a test may both
    /// call [`PromiseCluster::advance_and_prune`]); grants never take it.
    rebalance_gate: Mutex<()>,
    /// Armed crash for the next rebalance cycle: fire after the withdraw
    /// pass of the first rebalanced pool, before any deposit.
    rebalance_crash: Mutex<bool>,
    /// The injector consulted at the replication fault points, applied to
    /// every live link and to links created by later promotions.
    repl_injector: Mutex<Option<Arc<FaultInjector>>>,
}

impl PromiseCluster {
    /// Builds a cluster of `shards` nodes. `seed` feeds the coordinator
    /// client's retry jitter so runs are reproducible.
    pub fn build(shards: usize, seed: u64) -> Self {
        let bus = Arc::new(InMemoryBus::new());
        let clock = Arc::new(ManualClock::new());
        let map = Arc::new(ShardMap::new(shards));
        let telemetry = Telemetry::shared();
        // One epoch for every flight recorder in the cluster, so event
        // timestamps in an incident report line up across nodes.
        let epoch = Instant::now();
        let mut nodes: Vec<ShardNode> = (0..shards)
            .map(|i| ShardNode::build(i, &bus, Arc::clone(&clock) as Arc<dyn Clock>))
            .collect();
        for node in &mut nodes {
            node.recorder = FlightRecorder::with_epoch(node.endpoint.clone(), epoch);
        }
        let recorder = FlightRecorder::with_epoch("coordinator", epoch);
        let client = Arc::new(
            RetryingClient::new(Arc::clone(&bus), RetryPolicy::new(seed ^ 0xC0_0CD1))
                .with_telemetry(Arc::clone(&telemetry)),
        );
        let coordinator = Arc::new(
            Coordinator::new(
                Arc::clone(&map),
                client,
                Arc::new(CoordinatorLog::new()),
                Arc::clone(&clock) as Arc<dyn Clock>,
            )
            .with_telemetry(Arc::clone(&telemetry)),
        );
        coordinator.set_recorder(Some(Arc::clone(&recorder)));
        Self {
            bus,
            map,
            nodes,
            coordinator,
            clock,
            telemetry,
            recorder,
            pools: Mutex::new(Vec::new()),
            leases: Mutex::new(None),
            rebalance_gate: Mutex::new(()),
            rebalance_crash: Mutex::new(false),
            repl_injector: Mutex::new(None),
        }
    }

    /// Attaches a warm follower to every shard: each leader gets a standby
    /// journal fed by semi-synchronous segment shipping (the shard server
    /// syncs after every handled message, before replying; cluster-driven
    /// appends — pruning, compaction, lease rebalancing — sync at the end
    /// of their cycles). Call any time; the first sync ships the journal
    /// as it stands. Idempotent per shard: existing followers are kept.
    pub fn enable_replication(&mut self) {
        for index in 0..self.nodes.len() {
            if self.nodes[index].follower.is_none() {
                self.attach_follower(index);
            }
        }
    }

    /// True when every shard has a warm follower attached.
    pub fn replication_enabled(&self) -> bool {
        self.nodes.iter().all(|n| n.follower.is_some())
    }

    fn attach_follower(&mut self, index: usize) {
        let follower = Arc::new(ShardFollower::new());
        let link = Arc::new(ReplicationLink::new(
            Arc::clone(&self.nodes[index].journal),
            Arc::clone(&follower),
            Arc::clone(&self.telemetry),
            index,
        ));
        link.set_injector(self.repl_injector.lock().clone());
        link.sync();
        self.nodes[index]
            .server
            .set_replication(Some(Arc::clone(&link)));
        self.nodes[index].follower = Some(follower);
        self.nodes[index].replication = Some(link);
    }

    /// Installs (or clears) the fault injector consulted at the
    /// `repl-drop` / `repl-lag` points on every replication link,
    /// including links created by later promotions.
    pub fn set_replication_faults(&self, injector: Option<Arc<FaultInjector>>) {
        *self.repl_injector.lock() = injector.clone();
        for node in &self.nodes {
            if let Some(link) = &node.replication {
                link.set_injector(injector.clone());
            }
        }
    }

    /// Syncs every replication link (no-op for shards without one).
    /// Called after cluster-driven journal appends that bypass the bus.
    pub fn sync_replication(&self) {
        for node in &self.nodes {
            if let Some(link) = &node.replication {
                link.sync();
            }
        }
    }

    /// Kills shard `index`'s leader: its bus endpoint is unregistered so
    /// every in-flight and future send fails fast (`UnknownEndpoint` is
    /// non-retryable), modelling a dead process rather than a slow one.
    /// The final link sync before the plug is pulled models the
    /// semi-synchronous contract — every record the leader's disk held
    /// when it died had already been shipped, because appends are acked
    /// before their operations become externally visible. The node's RM,
    /// journal, and promise table are then considered lost; only
    /// [`PromiseCluster::promote_follower`] can bring the shard back.
    pub fn kill_shard(&self, index: usize) {
        if let Some(link) = &self.nodes[index].replication {
            link.sync();
        }
        self.bus.unregister(&self.nodes[index].endpoint);
        self.telemetry.incr("cluster.failover.leader_kills");
        self.recorder.record(
            "failover.kill",
            format!("leader {} unregistered", self.nodes[index].endpoint),
        );
    }

    /// Kills shard `index`'s leader with *no* courtesy sync — the plug is
    /// pulled between whatever the group-commit barrier last shipped and
    /// whatever the journal has buffered since. This is the honest kill:
    /// the semi-synchronous guarantee must come entirely from the barrier
    /// ("no reply leaves until its batch is flushed and shipped", DESIGN
    /// §19), never from a graceful shutdown's final sync. The
    /// kill-between-flush-and-ship failover test promotes after this and
    /// asserts every *acknowledged* grant survived.
    pub fn kill_shard_abrupt(&self, index: usize) {
        self.bus.unregister(&self.nodes[index].endpoint);
        self.telemetry.incr("cluster.failover.leader_kills");
        self.recorder.record(
            "failover.kill",
            format!(
                "leader {} unregistered (abrupt)",
                self.nodes[index].endpoint
            ),
        );
    }

    /// Promotes shard `index`'s warm follower over its killed leader:
    /// bumps the shard's leadership epoch (fencing the dead incarnation's
    /// address), rebuilds the node from the follower's journal copy via
    /// the standard recovery path, registers it at the epoch-versioned
    /// endpoint, and attaches a fresh follower so the new leader is
    /// itself protected. The coordinator re-resolves in-doubt `rid@sN`
    /// holds against the promoted node on its next
    /// [`Coordinator::recover`] — prepared holds survive in the replica
    /// exactly as they survive a same-node restart.
    pub fn promote_follower(&mut self, index: usize) -> FailoverReport {
        let started = Instant::now();
        let node_epoch = self.map.bump_node_epoch(index);
        let endpoint = versioned_endpoint(index, node_epoch);
        let schemas = self.pools_on(index);
        let seeds: Vec<(String, u64)> = if self.leases.lock().is_some() {
            // Leased pools re-sync their on-hand from journalled `L`
            // records during recovery; seeding would double-count.
            Vec::new()
        } else {
            self.pools
                .lock()
                .iter()
                .filter(|(_, _, s)| *s == index)
                .map(|(n, q, _)| (n.clone(), *q))
                .collect()
        };
        let bus = Arc::clone(&self.bus);
        let recovery = self.nodes[index].promote(&bus, &schemas, &seeds, endpoint.clone());
        self.attach_follower(index);
        let mttr = started.elapsed();
        self.telemetry.incr("cluster.failover.promotions");
        self.telemetry.set_gauge(
            "cluster.failover.last_mttr_us",
            u64::try_from(mttr.as_micros()).unwrap_or(u64::MAX),
        );
        self.telemetry
            .span_since(SpanKind::Failover, started)
            .finish_with(mttr);
        self.recorder.record(
            "failover.promote",
            format!(
                "shard{index} -> {} epoch={} in_doubt={} mttr_us={}",
                endpoint,
                node_epoch,
                recovery.in_doubt,
                mttr.as_micros()
            ),
        );
        FailoverReport {
            shard: index,
            node_epoch,
            endpoint,
            recovery,
            mttr,
        }
    }

    /// Switches the cluster to per-shard escrow leases: every subsequently
    /// registered quantity pool is hosted on *every* shard (the owner
    /// starts with the full quantity as its lease, the rest with zero),
    /// the coordinator routes covered grants to the requesting client's
    /// home shard, and [`PromiseCluster::advance_and_prune`] drives the
    /// demand-driven rebalancer. Must be called before any pool is
    /// registered. Returns the directory so callers can pin home shards.
    pub fn enable_leases(&self) -> Arc<LeaseDirectory> {
        assert!(
            self.pools.lock().is_empty(),
            "enable_leases must run before pools are registered"
        );
        let dir = Arc::new(LeaseDirectory::new(self.nodes.len()));
        *self.leases.lock() = Some(Arc::clone(&dir));
        self.coordinator.set_lease_directory(Some(Arc::clone(&dir)));
        dir
    }

    /// The lease directory, when leases are enabled.
    pub fn lease_directory(&self) -> Option<Arc<LeaseDirectory>> {
        self.leases.lock().clone()
    }

    /// Registers and seeds a quantity pool, assigning it to a shard
    /// round-robin (deterministic in registration order). With leases
    /// enabled the pool is additionally hosted on every other shard with a
    /// zero lease, so rebalancing can move headroom anywhere.
    pub fn register_quantity_pool(&self, name: &str, qty: u64) -> usize {
        let shard = self.map.assign_round_robin(name);
        if let Some(dir) = self.leases.lock().clone() {
            for node in &self.nodes {
                let lease = if node.index == shard { qty } else { 0 };
                node.host_leased_pool(name, lease);
                dir.set_headroom(name, node.index, lease);
            }
        } else {
            self.nodes[shard].host_pool(name, qty);
        }
        self.pools.lock().push((name.to_owned(), qty, shard));
        shard
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.nodes.len()
    }

    /// Sets the modeled per-message service time on every shard node
    /// (see [`crate::ShardServer`]); 0 disables the model.
    pub fn set_service_time_us(&self, us: u64) {
        for node in &self.nodes {
            node.server.set_service_us(us);
        }
    }

    /// Pool names hosted by shard `index`: with leases every shard hosts
    /// every pool; otherwise only the pools it owns.
    pub fn pools_on(&self, index: usize) -> Vec<String> {
        let leased = self.leases.lock().is_some();
        self.pools
            .lock()
            .iter()
            .filter(|(_, _, s)| leased || *s == index)
            .map(|(n, _, _)| n.clone())
            .collect()
    }

    /// Registered pools as `(name, seeded qty, owning shard)`.
    pub fn registered_pools(&self) -> Vec<(String, u64, usize)> {
        self.pools.lock().clone()
    }

    /// Kills shard `index` (its in-memory promise table dies) and rebuilds
    /// it from its journal. Returns the shard's recovery report.
    pub fn crash_restart_shard(&mut self, index: usize) -> promises_core::RecoveryReport {
        let pools = self.pools_on(index);
        let bus = Arc::clone(&self.bus);
        self.nodes[index].crash_restart(&bus, &pools)
    }

    /// Total live promises across every shard.
    pub fn live_count(&self) -> usize {
        self.nodes.iter().map(|n| n.pm.live_count()).sum()
    }

    /// Advances the shared clock and prunes expiry on every shard. This is
    /// the sim-side analogue of the background reaper cadence, so it also
    /// gives each shard its journal-compaction opportunity, runs a lease
    /// rebalance cycle when leases are enabled, and sweeps the
    /// coordinator's dedup index (all bounded-state disciplines).
    pub fn advance_and_prune(&self, ms: u64) {
        self.clock.advance(ms);
        for node in &self.nodes {
            let _ = node.pm.prune_expired();
            if let Ok(Some(swap)) = node.pm.maybe_compact() {
                node.recorder.record(
                    "compact.swap",
                    format!(
                        "{} dropped={} live={} prepared={} seq={}",
                        node.endpoint, swap.dropped, swap.live, swap.prepared, swap.seq
                    ),
                );
            }
        }
        self.rebalance_leases();
        self.coordinator.sweep_dedup();
        // Pruning, compaction, and rebalancing append to shard journals
        // without a bus reply to hang the ack on — ship them now so the
        // semi-synchronous contract covers cluster-driven appends too.
        self.sync_replication();
    }

    /// Arms a crash for the next rebalance cycle: it stops after the
    /// withdraw pass of the first pool it processes, before any deposit —
    /// the worst interleaving for the lease-sum invariant.
    pub fn arm_rebalance_crash(&self) {
        *self.rebalance_crash.lock() = true;
    }

    /// One demand-driven rebalance cycle (no-op without leases): for each
    /// pool, re-credit any headroom stranded by a mid-rebalance crash,
    /// then move unpromised lease headroom toward the demand observed
    /// since the last cycle, withdraw-before-deposit so the lease sum can
    /// transiently shrink but never exceed the pool total. Refreshes the
    /// directory's headroom estimates and the per-pool headroom gauges.
    pub fn rebalance_leases(&self) -> Option<LeaseRebalance> {
        let dir = self.leases.lock().clone()?;
        let _serial = self.rebalance_gate.lock();
        let pools = self.pools.lock().clone();
        let mut report = LeaseRebalance::default();
        for (pool, total, owner) in &pools {
            // Heal first: any units missing from the authoritative lease
            // sum were stranded between a withdraw and its deposit. Credit
            // them to the busiest shard (the owner when demand is quiet).
            let demand: Vec<u64> = dir.take_demand(pool);
            let lease_sum: u64 = self
                .nodes
                .iter()
                .map(|n| n.pm.lease_of(pool.as_str()).unwrap_or(0))
                .sum();
            let missing = total.saturating_sub(lease_sum);
            if missing > 0 {
                let busiest = demand
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, d)| **d)
                    .filter(|(_, d)| **d > 0)
                    .map(|(i, _)| i)
                    .unwrap_or(*owner);
                let _ = self.nodes[busiest].pm.lease_deposit(pool.as_str(), missing);
                report.healed += missing;
                self.recorder
                    .record("lease.heal", format!("{pool} +{missing} -> shard{busiest}"));
            }

            let total_demand: u64 = demand.iter().sum();
            if total_demand > 0 {
                // Target: split the pool's *unpromised* headroom across
                // shards in proportion to observed demand.
                let headroom: Vec<u64> = self
                    .nodes
                    .iter()
                    .map(|n| n.pm.lease_headroom(pool.as_str()))
                    .collect();
                let pool_headroom: u64 = headroom.iter().sum();
                let mut desired: Vec<u64> = demand
                    .iter()
                    .map(|d| {
                        ((u128::from(pool_headroom) * u128::from(*d)) / u128::from(total_demand))
                            as u64
                    })
                    .collect();
                // Integer-division remainder goes to the busiest shard.
                let assigned: u64 = desired.iter().sum();
                if let Some((busiest, _)) = demand.iter().enumerate().max_by_key(|(_, d)| **d) {
                    desired[busiest] += pool_headroom - assigned;
                }
                // Withdraw surpluses into a pot...
                let mut pot = 0u64;
                for (i, node) in self.nodes.iter().enumerate() {
                    if headroom[i] > desired[i] {
                        let moved = node
                            .pm
                            .lease_withdraw(pool.as_str(), headroom[i] - desired[i])
                            .unwrap_or(0);
                        pot += moved;
                        report.moved += moved;
                        if moved > 0 {
                            self.recorder
                                .record("lease.withdraw", format!("{pool} -{moved} shard{i}"));
                        }
                    }
                }
                if std::mem::take(&mut *self.rebalance_crash.lock()) {
                    // Modeled control-plane death between the donors' and
                    // the receivers' journal appends: `pot` is stranded —
                    // the lease sum shrank, which is the safe direction —
                    // until the next cycle's heal re-credits it.
                    report.crashed = true;
                    self.telemetry.incr("cluster.lease.rebalance_crashes");
                    self.recorder.record(
                        "lease.crash",
                        format!("{pool} stranded={pot} mid-rebalance"),
                    );
                    // The donors' withdraw records are already durable —
                    // ship them so a leader killed right after this crash
                    // still promotes to a digest-faithful follower.
                    self.sync_replication();
                    return Some(report);
                }
                // ...then deposit them toward the deficits.
                for (i, node) in self.nodes.iter().enumerate() {
                    if pot == 0 {
                        break;
                    }
                    if headroom[i] < desired[i] {
                        let give = pot.min(desired[i] - headroom[i]);
                        if node.pm.lease_deposit(pool.as_str(), give).is_ok() {
                            pot -= give;
                            self.recorder
                                .record("lease.deposit", format!("{pool} +{give} shard{i}"));
                        }
                    }
                }
                if pot > 0 {
                    let _ = self.nodes[*owner].pm.lease_deposit(pool.as_str(), pot);
                    self.recorder.record(
                        "lease.deposit",
                        format!("{pool} +{pot} shard{owner} (owner)"),
                    );
                }
            }

            // Refresh the advisory directory and the observability gauge
            // from the authoritative per-shard state.
            let mut pool_headroom = 0u64;
            for node in &self.nodes {
                let h = node.pm.lease_headroom(pool.as_str());
                dir.set_headroom(pool, node.index, h);
                pool_headroom += h;
            }
            self.telemetry
                .set_gauge(&format!("cluster.lease.headroom.{pool}"), pool_headroom);
        }
        if report.moved > 0 {
            self.telemetry
                .add("cluster.lease.rebalance_moved", report.moved);
        }
        // Withdraw/deposit `L` records bypass the bus; ship them before
        // the cycle is considered complete.
        self.sync_replication();
        Some(report)
    }

    /// Publishes the gauges the health plane folds (DESIGN §17): per-node
    /// `pm.in_doubt.oldest_ms` and `pm.dedup.tombstones` into each shard
    /// registry, and — when leases are enabled — per-pool
    /// `cluster.lease.sum.*` / `cluster.lease.total.*` plus per-shard
    /// `cluster.lease.headroom.<pool>.shardN` into the cluster registry.
    /// Replication tip/watermark/lag gauges are refreshed by every link
    /// sync and need no help here.
    pub fn publish_health_gauges(&self) {
        for node in &self.nodes {
            node.telemetry.set_gauge(
                "pm.in_doubt.oldest_ms",
                node.pm.oldest_in_doubt_age_ms().unwrap_or(0),
            );
            node.telemetry
                .set_gauge("pm.dedup.tombstones", node.pm.tombstone_count() as u64);
        }
        if self.leases.lock().is_none() {
            // Without leases `lease_of` is None everywhere; publishing
            // sum=0 against a non-zero total would fake a conservation
            // violation.
            return;
        }
        for (pool, total, _) in self.pools.lock().clone() {
            let mut sum = 0u64;
            for node in &self.nodes {
                sum += node.pm.lease_of(pool.as_str()).unwrap_or(0);
                self.telemetry.set_gauge(
                    &format!("cluster.lease.headroom.{pool}.shard{}", node.index),
                    node.pm.lease_headroom(pool.as_str()),
                );
            }
            self.telemetry
                .set_gauge(&format!("cluster.lease.sum.{pool}"), sum);
            self.telemetry
                .set_gauge(&format!("cluster.lease.total.{pool}"), total);
        }
    }

    /// One health-plane tick: refresh the derived gauges, fold a merged
    /// snapshot through the watchdogs, publish the `health.*` view, and
    /// cut a flight-recorder incident report for every trip. The caller
    /// owns the [`HealthState`] (watchdog memory spans ticks).
    pub fn health_tick(&self, state: &mut HealthState) -> Vec<(WatchdogTrip, IncidentReport)> {
        self.publish_health_gauges();
        let snap = self.snapshot();
        let trips = state.observe(&snap);
        state.last.publish(&self.telemetry);
        trips
            .into_iter()
            .map(|trip| {
                let reason = format!("watchdog:{} {}", trip.watchdog.name(), trip.subject);
                let incident = self.recorder.incident(&reason, &snap);
                (trip, incident)
            })
            .collect()
    }

    /// One merged metrics snapshot: the coordinator registry's series
    /// unprefixed plus every shard's series under `shardN.` labels.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = self.telemetry.snapshot();
        for node in &self.nodes {
            snap.absorb_prefixed(&node.endpoint, &node.telemetry.snapshot());
        }
        snap
    }

    /// Per-shard spans + journal truth for the cluster lifecycle auditor.
    pub fn evidence(&self) -> Vec<ShardEvidence> {
        self.nodes.iter().map(ShardNode::evidence).collect()
    }
}
