//! Cluster assembly: N shard nodes behind one bus, one router, and one
//! coordinator, sharing a manual clock so expiry is driven
//! deterministically in tests and sweeps.

use std::sync::Arc;

use parking_lot::Mutex;

use promises_core::{Clock, ManualClock};
use promises_telemetry::{ShardEvidence, Telemetry, TelemetrySnapshot};
use promises_wire::{InMemoryBus, RetryPolicy, RetryingClient};

use crate::coordinator::Coordinator;
use crate::log::CoordinatorLog;
use crate::router::ShardMap;
use crate::shard::ShardNode;

/// A running promise-manager cluster.
pub struct PromiseCluster {
    /// The bus every shard answers on.
    pub bus: Arc<InMemoryBus>,
    /// Pool→shard ownership.
    pub map: Arc<ShardMap>,
    /// The shard nodes, by index.
    pub nodes: Vec<ShardNode>,
    /// The cross-shard grant coordinator.
    pub coordinator: Arc<Coordinator>,
    /// The shared cluster clock (manual, driven by tests/sweeps).
    pub clock: Arc<ManualClock>,
    /// The coordinator's telemetry registry (shards have their own).
    pub telemetry: Arc<Telemetry>,
    /// Registered pools: `(name, seeded qty, owning shard)` — kept so a
    /// crashed shard can re-register its schemas on restart.
    pools: Mutex<Vec<(String, u64, usize)>>,
}

impl PromiseCluster {
    /// Builds a cluster of `shards` nodes. `seed` feeds the coordinator
    /// client's retry jitter so runs are reproducible.
    pub fn build(shards: usize, seed: u64) -> Self {
        let bus = Arc::new(InMemoryBus::new());
        let clock = Arc::new(ManualClock::new());
        let map = Arc::new(ShardMap::new(shards));
        let telemetry = Telemetry::shared();
        let nodes: Vec<ShardNode> = (0..shards)
            .map(|i| ShardNode::build(i, &bus, Arc::clone(&clock) as Arc<dyn Clock>))
            .collect();
        let client = Arc::new(
            RetryingClient::new(Arc::clone(&bus), RetryPolicy::new(seed ^ 0xC0_0CD1))
                .with_telemetry(Arc::clone(&telemetry)),
        );
        let coordinator = Arc::new(
            Coordinator::new(
                Arc::clone(&map),
                client,
                Arc::new(CoordinatorLog::new()),
                Arc::clone(&clock) as Arc<dyn Clock>,
            )
            .with_telemetry(Arc::clone(&telemetry)),
        );
        Self {
            bus,
            map,
            nodes,
            coordinator,
            clock,
            telemetry,
            pools: Mutex::new(Vec::new()),
        }
    }

    /// Registers and seeds a quantity pool, assigning it to a shard
    /// round-robin (deterministic in registration order).
    pub fn register_quantity_pool(&self, name: &str, qty: u64) -> usize {
        let shard = self.map.assign_round_robin(name);
        self.nodes[shard].host_pool(name, qty);
        self.pools.lock().push((name.to_owned(), qty, shard));
        shard
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.nodes.len()
    }

    /// Sets the modeled per-message service time on every shard node
    /// (see [`crate::ShardServer`]); 0 disables the model.
    pub fn set_service_time_us(&self, us: u64) {
        for node in &self.nodes {
            node.server.set_service_us(us);
        }
    }

    /// Pool names hosted by shard `index`.
    pub fn pools_on(&self, index: usize) -> Vec<String> {
        self.pools
            .lock()
            .iter()
            .filter(|(_, _, s)| *s == index)
            .map(|(n, _, _)| n.clone())
            .collect()
    }

    /// Kills shard `index` (its in-memory promise table dies) and rebuilds
    /// it from its journal. Returns the shard's recovery report.
    pub fn crash_restart_shard(&mut self, index: usize) -> promises_core::RecoveryReport {
        let pools = self.pools_on(index);
        let bus = Arc::clone(&self.bus);
        self.nodes[index].crash_restart(&bus, &pools)
    }

    /// Total live promises across every shard.
    pub fn live_count(&self) -> usize {
        self.nodes.iter().map(|n| n.pm.live_count()).sum()
    }

    /// Advances the shared clock and prunes expiry on every shard. This is
    /// the sim-side analogue of the background reaper cadence, so it also
    /// gives each shard its journal-compaction opportunity and sweeps the
    /// coordinator's dedup index (both bounded-state disciplines).
    pub fn advance_and_prune(&self, ms: u64) {
        self.clock.advance(ms);
        for node in &self.nodes {
            let _ = node.pm.prune_expired();
            let _ = node.pm.maybe_compact();
        }
        self.coordinator.sweep_dedup();
    }

    /// One merged metrics snapshot: the coordinator registry's series
    /// unprefixed plus every shard's series under `shardN.` labels.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = self.telemetry.snapshot();
        for node in &self.nodes {
            snap.absorb_prefixed(&node.endpoint, &node.telemetry.snapshot());
        }
        snap
    }

    /// Per-shard spans + journal truth for the cluster lifecycle auditor.
    pub fn evidence(&self) -> Vec<ShardEvidence> {
        self.nodes.iter().map(ShardNode::evidence).collect()
    }
}
