//! The cross-shard grant coordinator: prepare/commit over the wire bus.
//!
//! A multi-predicate request whose predicates span shards is granted or
//! rejected *as a unit* (paper §4) without any shared state between
//! shards:
//!
//! 1. **Begin** is logged, then per-shard *prepare* requests fan out —
//!    each a normal grant on its shard (resources reserved immediately)
//!    journalled as an in-doubt hold. Any shard that cannot hold rejects
//!    immediately; nothing ever blocks, so there is no distributed
//!    deadlock to detect.
//! 2. If every shard held, **Commit** is logged — the commit point — and
//!    commit resolutions fan out. If any shard rejected (or a prepare was
//!    lost to the transport), the coordinator aborts the rest and logs
//!    **Abort**.
//! 3. Crash recovery replays the log with *presumed abort*: an undecided
//!    transaction's holds are aborted (by request key, covering lost
//!    prepare replies); a committed transaction's resolutions are resent
//!    (shard-side resolution is idempotent).
//!
//! Grant dedup is cluster-wide: the coordinator answers a retried
//! `(client, request-id)` from its own outcome index, and the per-shard
//! sub-request ids (`rid@sN`) make the shards' own dedup indexes back the
//! coordinator up even across a coordinator restart.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use promises_core::{parse_predicate, weaken_predicates, Clock, Predicate};
use promises_telemetry::{
    current_trace, push_trace, FlightRecorder, SpanKind, SpanOutcome, Telemetry, TraceContext,
};
use promises_wire::{
    BusError, Envelope, PromiseRequestHeader, PromiseResult, ResolutionOp, ResolveRef,
    RetryingClient,
};

use crate::lease::LeaseDirectory;
use crate::log::{CoordRecord, CoordinatorLog, LogCompaction, TxnId};
use crate::router::ShardMap;

/// How long a dedup entry outlives its promise duration before eviction.
/// A retry arriving after the promise expired *and* this grace elapsed is
/// treated as a fresh request — the same bound the per-shard grant index
/// uses, so coordinator and shard dedup stay in step.
const DEDUP_GRACE_MS: u64 = 300_000;

/// Where an injected coordinator crash fires, for crash–restart tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die after every shard prepared but before the decision is logged —
    /// recovery must presume abort and free every hold.
    AfterPrepare,
    /// Die after the Commit record is logged but before any resolution is
    /// sent — recovery must resend the commits.
    AfterCommitLogged,
}

/// One shard's slice of a granted cross-shard promise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrantPart {
    /// Owning shard.
    pub shard: usize,
    /// The promise id on that shard.
    pub promise_id: u64,
    /// The shard-granted expiry (shard clock = cluster clock, ms).
    pub expires_at: u64,
}

/// Outcome of a cluster grant: every predicate held (with per-shard
/// parts), or the unit rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterDecision {
    /// All shards hold; `parts` lists one entry per participating shard.
    Granted {
        /// Per-shard promises, ascending shard order.
        parts: Vec<GrantPart>,
    },
    /// At least one shard could not hold; nothing is retained anywhere.
    Rejected {
        /// Human-readable reason from the first rejecting shard.
        reason: String,
    },
}

impl ClusterDecision {
    /// True when granted.
    pub fn is_granted(&self) -> bool {
        matches!(self, ClusterDecision::Granted { .. })
    }
}

/// Outcome of a negotiated cluster grant
/// ([`Coordinator::grant_negotiated`]): the final decision plus how far
/// down the §3.3 weakening ladder the coordinator had to go to reach it.
#[derive(Debug, Clone)]
pub struct NegotiatedClusterGrant {
    /// The decision at the final rung — granted, or the essential-only
    /// rejection.
    pub decision: ClusterDecision,
    /// Total desirable clauses dropped to reach the decision (0 = granted
    /// as asked).
    pub dropped: usize,
    /// The predicates as actually decided, in the wire text syntax
    /// (weakened forms when `dropped > 0`).
    pub granted_predicates: Vec<String>,
}

/// Coordinator failures that are not unit rejections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordError {
    /// A predicate failed to parse.
    BadPredicate(String),
    /// The request named no predicates.
    EmptyRequest,
    /// Transport to a shard failed beyond the retry budget during a phase
    /// where the transaction could still be aborted cleanly (and was).
    Transport(String),
    /// An injected [`CrashPoint`] fired: the coordinator "died" here and
    /// [`Coordinator::recover`] must clean up.
    Crashed(&'static str),
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::BadPredicate(m) => write!(f, "bad predicate: {m}"),
            CoordError::EmptyRequest => write!(f, "request names no predicates"),
            CoordError::Transport(m) => write!(f, "transport: {m}"),
            CoordError::Crashed(p) => write!(f, "coordinator crashed at {p}"),
        }
    }
}

impl std::error::Error for CoordError {}

/// What a recovery pass did. See [`Coordinator::recover`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordRecovery {
    /// Undecided transactions presumed aborted (holds freed).
    pub presumed_aborted: usize,
    /// Committed transactions whose commit resolutions were resent.
    pub commits_resent: usize,
    /// Individual shard holds the abort pass actually freed.
    pub holds_freed: usize,
    /// Abort records with no matching Begin — tolerated no-ops (dead
    /// history after compaction, or a double-logged recovery abort).
    pub orphan_aborts: usize,
}

/// A dedup entry: the remembered decision plus when it may be evicted.
struct DedupEntry {
    decision: ClusterDecision,
    evict_at: u64,
}

/// The cross-shard grant coordinator. Cheap to rebuild: all durable state
/// lives in the [`CoordinatorLog`] and the shards' journals.
pub struct Coordinator {
    map: Arc<ShardMap>,
    client: Arc<RetryingClient>,
    log: Arc<CoordinatorLog>,
    clock: Arc<dyn Clock>,
    telemetry: Option<Arc<Telemetry>>,
    /// Flight recorder for 2PC phase-change events (DESIGN §17); state
    /// transitions only, never per-message work.
    recorder: RwLock<Option<Arc<FlightRecorder>>>,
    dedup: Mutex<HashMap<(String, String), DedupEntry>>,
    /// Committed transactions every shard acknowledged resolving — the
    /// only commits log compaction may drop. Rebuilt empty after a crash;
    /// the next [`Coordinator::recover`] repopulates it from resend acks.
    resolved: Mutex<HashSet<TxnId>>,
    crash_point: Mutex<Option<CrashPoint>>,
    /// Advisory lease directory (see [`LeaseDirectory`]). When installed,
    /// an all-quantity grant covered by the requesting client's home-shard
    /// lease headroom is routed there as one local grant — no coordinator
    /// log record, no 2PC — falling back to the ownership path when the
    /// lease cannot cover it.
    leases: RwLock<Option<Arc<LeaseDirectory>>>,
}

impl Coordinator {
    /// Builds a coordinator over `map`, speaking through `client`, logging
    /// decisions to `log`, reading time from `clock`.
    pub fn new(
        map: Arc<ShardMap>,
        client: Arc<RetryingClient>,
        log: Arc<CoordinatorLog>,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Self {
            map,
            client,
            log,
            clock,
            telemetry: None,
            recorder: RwLock::new(None),
            dedup: Mutex::new(HashMap::new()),
            resolved: Mutex::new(HashSet::new()),
            crash_point: Mutex::new(None),
            leases: RwLock::new(None),
        }
    }

    /// Installs (or removes) the advisory lease directory, switching the
    /// lease-local grant route on (or off).
    pub fn set_lease_directory(&self, directory: Option<Arc<LeaseDirectory>>) {
        *self.leases.write() = directory;
    }

    /// Builder: attaches a telemetry registry; grants then record
    /// [`SpanKind::CoordPrepare`] / [`SpanKind::CoordCommit`] /
    /// [`SpanKind::CoordAbort`] spans and every shard hop joins the same
    /// trace.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The decision log (for tests and recovery harnesses).
    pub fn log(&self) -> &Arc<CoordinatorLog> {
        &self.log
    }

    /// Installs (or removes) the flight recorder that receives 2PC
    /// phase-change events.
    pub fn set_recorder(&self, recorder: Option<Arc<FlightRecorder>>) {
        *self.recorder.write() = recorder;
    }

    fn record_event(&self, kind: &'static str, detail: String) {
        if let Some(rec) = self.recorder.read().as_ref() {
            rec.record(kind, detail);
        }
    }

    /// Arms an injected crash for the *next* cross-shard grant.
    pub fn set_crash_point(&self, point: Option<CrashPoint>) {
        *self.crash_point.lock() = point;
    }

    fn crash_armed(&self, at: CrashPoint) -> bool {
        let mut cp = self.crash_point.lock();
        if *cp == Some(at) {
            *cp = None;
            return true;
        }
        false
    }

    /// Grants `predicates` (text syntax) to `(client, request_id)` for
    /// `duration_ms`, atomically across however many shards the predicate
    /// footprint spans. Retried requests (same client + request id) are
    /// answered from the coordinator's outcome index without touching the
    /// shards.
    pub fn grant(
        &self,
        client: &str,
        request_id: &str,
        predicates: &[String],
        duration_ms: u64,
    ) -> Result<ClusterDecision, CoordError> {
        let key = (client.to_owned(), request_id.to_owned());
        if let Some(entry) = self.dedup.lock().get(&key) {
            return Ok(entry.decision.clone());
        }
        if predicates.is_empty() {
            return Err(CoordError::EmptyRequest);
        }
        // Split the footprint: each predicate names its pool; the router
        // names the pool's owner. All-quantity footprints also aggregate
        // per-pool demand for the lease route.
        let mut with_pools = Vec::with_capacity(predicates.len());
        let mut qty_demands: Option<Vec<(String, u64)>> = Some(Vec::new());
        for text in predicates {
            let p = parse_predicate(text)
                .map_err(|e| CoordError::BadPredicate(format!("{text:?}: {e}")))?;
            match (&p, qty_demands.as_mut()) {
                (Predicate::QtyAtLeast { pool, amount }, Some(demands)) => {
                    match demands.iter_mut().find(|(name, _)| *name == pool.0) {
                        Some((_, total)) => *total += *amount,
                        None => demands.push((pool.0.clone(), *amount)),
                    }
                }
                _ => qty_demands = None,
            }
            with_pools.push((p.pool().0.clone(), text.clone()));
        }
        let groups = self.map.split_by_shard(with_pools);

        // Trace: one per logical cluster grant; shard hops join it.
        let trace_guard = self.telemetry.as_ref().map(|tel| {
            let ctx = TraceContext {
                trace: tel.mint_trace(),
                parent: tel.mint_span(),
            };
            push_trace(ctx)
        });

        // Lease route: if the client's home shard holds enough lease
        // headroom for the whole footprint, the grant is one ordinary
        // local grant there — regardless of which shards *own* the pools,
        // and with no coordinator log record. The directory is advisory;
        // the home shard's own escrow check (promised ≤ lease) is the
        // authority, so a stale estimate costs a round trip, never an
        // oversell.
        let mut decision: Option<ClusterDecision> = None;
        let lease_route = self.leases.read().clone();
        if let (Some(dir), Some(demands)) = (lease_route.as_ref(), qty_demands.as_ref()) {
            if !demands.is_empty() {
                let home = dir.home_shard(client);
                dir.note_demand(home, demands);
                if dir.covers(home, demands) {
                    match self.single_shard_grant(
                        client,
                        request_id,
                        home,
                        predicates,
                        duration_ms,
                    )? {
                        granted @ ClusterDecision::Granted { .. } => {
                            dir.consume(home, demands);
                            if let Some(tel) = &self.telemetry {
                                tel.incr("cluster.lease.local_grants");
                                for (pool, _) in demands {
                                    tel.incr(&format!("cluster.lease.local.{pool}"));
                                }
                                if groups.len() > 1 {
                                    // The ownership split would have cost a
                                    // full 2PC round with Begin/Commit
                                    // records; the lease saved it.
                                    tel.incr("cluster.lease.coord_log_skips");
                                }
                            }
                            decision = Some(granted);
                        }
                        ClusterDecision::Rejected { reason } => {
                            if let Some(tel) = &self.telemetry {
                                tel.incr("cluster.lease.local_rejects");
                            }
                            // The home shard's authoritative check said no.
                            // If home *is* the sole owner shard there is no
                            // one better to ask — the rejection is final;
                            // otherwise retry through the ownership path.
                            if groups.len() == 1 && groups.keys().next() == Some(&home) {
                                decision = Some(ClusterDecision::Rejected { reason });
                            }
                        }
                    }
                }
                if decision.is_none() {
                    if let Some(tel) = &self.telemetry {
                        tel.incr("cluster.lease.coordinator_fallbacks");
                        for (pool, _) in demands {
                            tel.incr(&format!("cluster.lease.fallback.{pool}"));
                        }
                    }
                }
            }
        }

        let decision = match decision {
            Some(d) => d,
            None if groups.len() == 1 => {
                // Fast path: single-shard footprint — an ordinary grant
                // with the original request id; the shard's atomicity (§4)
                // and dedup cover it without any coordination round.
                let (&shard, preds) = groups.iter().next().expect("one group");
                self.single_shard_grant(client, request_id, shard, preds, duration_ms)?
            }
            None => self.cross_shard_grant(client, request_id, &groups, duration_ms)?,
        };
        drop(trace_guard);

        // The dedup index is bounded: entries are only useful while a
        // retry of the same request could still arrive, so they carry an
        // eviction deadline (promise duration + grace) and each insert
        // sweeps the expired ones out.
        let now = self.clock.now_ms();
        let evict_at = now
            .saturating_add(duration_ms)
            .saturating_add(DEDUP_GRACE_MS);
        let mut dedup = self.dedup.lock();
        dedup.retain(|_, e| e.evict_at > now);
        dedup.insert(
            key,
            DedupEntry {
                decision: decision.clone(),
                evict_at,
            },
        );
        let len = dedup.len();
        drop(dedup);
        if let Some(tel) = &self.telemetry {
            tel.set_gauge("coord.dedup.size", len as u64);
        }
        Ok(decision)
    }

    /// Requests a cluster grant, negotiating away desirable clauses when
    /// the full request cannot be granted (§3.3 driven over the
    /// coordinator instead of a single gateway). The ladder is computed
    /// coordinator-side with the same weakening discipline as the local
    /// [`promises_core::PromiseManager::request_negotiated`] loop
    /// ([`weaken_predicates`], last predicate's desirables first), so a
    /// multi-predicate footprint that spans shards negotiates through full
    /// 2PC rounds: rung 0 is the request as asked under the original
    /// request id; rung `n > 0` retries under the deterministic sub-id
    /// `rid~dn`. Every rung's outcome lands in the cluster-wide dedup
    /// index, so a client retrying the whole ladder replays the same
    /// decisions and converges on the same promise — duplicated or
    /// re-driven ladders can neither double-drop clauses nor double-grant.
    pub fn grant_negotiated(
        &self,
        client: &str,
        request_id: &str,
        predicates: &[String],
        duration_ms: u64,
    ) -> Result<NegotiatedClusterGrant, CoordError> {
        let mut parsed = Vec::with_capacity(predicates.len());
        for text in predicates {
            parsed.push(
                parse_predicate(text)
                    .map_err(|e| CoordError::BadPredicate(format!("{text:?}: {e}")))?,
            );
        }
        let max_drops: usize = parsed
            .iter()
            .map(|p| match p {
                Predicate::Property { expr, .. } => expr.desirable_count(),
                _ => 0,
            })
            .sum();

        for total_drop in 0..=max_drops {
            let (preds, dropped_per) = weaken_predicates(&parsed, total_drop);
            let texts: Vec<String> = preds.iter().map(ToString::to_string).collect();
            let rung_id = if total_drop == 0 {
                request_id.to_owned()
            } else {
                format!("{request_id}~d{total_drop}")
            };
            let decision = self.grant(client, &rung_id, &texts, duration_ms)?;
            let is_last = total_drop == max_drops;
            if matches!(decision, ClusterDecision::Granted { .. }) || is_last {
                if let Some(tel) = &self.telemetry {
                    if total_drop > 0 && decision.is_granted() {
                        tel.incr("coord.negotiate.weakened_grants");
                        tel.add("coord.negotiate.dropped_clauses", total_drop as u64);
                    }
                }
                return Ok(NegotiatedClusterGrant {
                    decision,
                    dropped: dropped_per.iter().sum(),
                    granted_predicates: texts,
                });
            }
        }
        unreachable!("ladder always returns on the final rung")
    }

    /// Number of live entries in the grant dedup index (boundedness
    /// assertions in fault sweeps).
    pub fn dedup_len(&self) -> usize {
        self.dedup.lock().len()
    }

    /// Evicts dedup entries whose retry window has passed. Inserts do this
    /// opportunistically; an idle coordinator can call it from the same
    /// cadence that drives shard pruning.
    pub fn sweep_dedup(&self) {
        let now = self.clock.now_ms();
        let mut dedup = self.dedup.lock();
        dedup.retain(|_, e| e.evict_at > now);
        let len = dedup.len();
        drop(dedup);
        if let Some(tel) = &self.telemetry {
            tel.set_gauge("coord.dedup.size", len as u64);
        }
    }

    fn single_shard_grant(
        &self,
        client: &str,
        request_id: &str,
        shard: usize,
        predicates: &[String],
        duration_ms: u64,
    ) -> Result<ClusterDecision, CoordError> {
        let envelope = Envelope::new().with_promise_request(PromiseRequestHeader {
            request_id: request_id.to_owned(),
            client: client.to_owned(),
            predicates: predicates.to_vec(),
            duration_ms,
            exchange: vec![],
            negotiate: false,
            prepare: false,
        });
        let reply = self
            .client
            .send(&self.map.endpoint_of(shard), &envelope)
            .map_err(|e| CoordError::Transport(e.to_string()))?;
        Ok(match reply.response_for(request_id) {
            Some(resp) => match (&resp.result, resp.promise_id) {
                (PromiseResult::Rejected(reason), _) => ClusterDecision::Rejected {
                    reason: reason.clone(),
                },
                (_, Some(id)) => ClusterDecision::Granted {
                    parts: vec![GrantPart {
                        shard,
                        promise_id: id,
                        expires_at: resp.expires_at,
                    }],
                },
                (_, None) => ClusterDecision::Rejected {
                    reason: "malformed shard response".into(),
                },
            },
            None => ClusterDecision::Rejected {
                reason: "shard reply carried no response".into(),
            },
        })
    }

    fn cross_shard_grant(
        &self,
        client: &str,
        request_id: &str,
        groups: &std::collections::BTreeMap<usize, Vec<String>>,
        duration_ms: u64,
    ) -> Result<ClusterDecision, CoordError> {
        let txn = TxnId::new(client, request_id);
        let shards: Vec<usize> = groups.keys().copied().collect();
        self.log.append(CoordRecord::Begin {
            txn: txn.clone(),
            shards: shards.clone(),
        });
        self.record_event("2pc.begin", format!("{} shards={shards:?}", txn.request));

        let prepare_started = Instant::now();
        // Pipelined prepare: one concurrent send per shard — replies are
        // matched by the `rid@sN` sub-request id, never by arrival order,
        // so the fan-out needs no serialization. The ambient trace is
        // re-pushed inside each worker so every shard hop still joins the
        // grant's trace (the lifecycle auditor replays it).
        let trace = current_trace();
        let outcomes: Vec<(usize, String, Result<Envelope, BusError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .iter()
                    .map(|(&shard, preds)| {
                        let sub = txn.sub_request(shard);
                        let envelope = Envelope::new().with_promise_request(PromiseRequestHeader {
                            request_id: sub.clone(),
                            client: client.to_owned(),
                            predicates: preds.clone(),
                            duration_ms,
                            exchange: vec![],
                            negotiate: false,
                            prepare: true,
                        });
                        scope.spawn(move || {
                            let _guard = trace.map(push_trace);
                            let result = self.client.send(&self.map.endpoint_of(shard), &envelope);
                            (shard, sub, result)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("prepare fan-out worker"))
                    .collect()
            });

        let mut parts: Vec<GrantPart> = Vec::with_capacity(groups.len());
        let mut reject: Option<String> = None;
        // Shards that may hold something we must abort: everything that
        // prepared, plus any shard whose outcome we could not learn (lost
        // reply — abort by request key). Outcomes are judged in ascending
        // shard order (the fan-out preserved `groups`' order), so the
        // recorded reject reason is deterministic however the concurrent
        // sends interleaved.
        let mut to_abort: Vec<(usize, ResolveRef)> = Vec::new();
        for (shard, sub, result) in outcomes {
            match result {
                Ok(reply) => match reply.response_for(&sub) {
                    Some(resp) => match (&resp.result, resp.promise_id) {
                        (PromiseResult::Rejected(reason), _) => {
                            // Immediate, non-blocking rejection (paper §4).
                            // Sibling shards were contacted concurrently —
                            // whatever they prepared is aborted below.
                            reject.get_or_insert_with(|| reason.clone());
                        }
                        (_, Some(id)) => {
                            to_abort.push((shard, ResolveRef::Id(id)));
                            parts.push(GrantPart {
                                shard,
                                promise_id: id,
                                expires_at: resp.expires_at,
                            });
                        }
                        (_, None) => {
                            reject.get_or_insert_with(|| "malformed shard response".into());
                        }
                    },
                    None => {
                        reject.get_or_insert_with(|| "shard reply carried no response".into());
                    }
                },
                Err(e @ (BusError::DroppedRequest | BusError::DroppedReply)) => {
                    // Retries exhausted; the shard *may* hold (reply lost
                    // after granting). Abort it by request key — resolved
                    // against the shard's dedup index if the hold exists,
                    // a no-op if it never granted.
                    to_abort.push((
                        shard,
                        ResolveRef::Request {
                            client: client.to_owned(),
                            request: sub,
                        },
                    ));
                    reject.get_or_insert_with(|| format!("shard {shard} unreachable: {e}"));
                }
                Err(e) => {
                    reject.get_or_insert_with(|| format!("shard {shard} failed: {e}"));
                }
            }
        }

        if reject.is_none() {
            // Holds that expired while the fan-out ran cannot be
            // committed; treat the transaction as rejected.
            let now = self.clock.now_ms();
            if let Some(stale) = parts.iter().find(|p| p.expires_at <= now) {
                reject = Some(format!(
                    "hold on shard {} expired before commit",
                    stale.shard
                ));
            }
        }
        if let Some(tel) = &self.telemetry {
            let draft = tel.span_since(SpanKind::CoordPrepare, prepare_started);
            let draft = draft.note(format!("shards={}", shards.len()));
            match &reject {
                None => draft.finish(),
                Some(r) => draft
                    .outcome(SpanOutcome::Rejected)
                    .note(r.clone())
                    .finish(),
            }
        }

        if let Some(reason) = reject {
            self.abort_txn(&txn, &to_abort);
            return Ok(ClusterDecision::Rejected { reason });
        }

        if self.crash_armed(CrashPoint::AfterPrepare) {
            // Undecided: every hold stays in doubt until recovery.
            self.record_event("2pc.crash", format!("{} after-prepare", txn.request));
            return Err(CoordError::Crashed("after-prepare"));
        }

        // The commit point: once this record is durable the transaction IS
        // committed, whatever happens to the resolution sends below.
        self.log.append(CoordRecord::Commit { txn: txn.clone() });
        self.record_event(
            "2pc.commit",
            format!("{} shards={}", txn.request, parts.len()),
        );

        if self.crash_armed(CrashPoint::AfterCommitLogged) {
            self.record_event("2pc.crash", format!("{} after-commit-logged", txn.request));
            return Err(CoordError::Crashed("after-commit-logged"));
        }

        let commit_started = Instant::now();
        // Commit resolutions fan out concurrently too. Idempotent
        // shard-side; a lost resolution leaves the hold in doubt for
        // recover() to resend, never half-committed. A reply that names
        // the resolution is the shard's acknowledgement — the resolution
        // was processed (applied, idempotent repeat, or definitively
        // unresolvable), so a resend could never change the outcome.
        let acked = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|part| {
                    let reference = ResolveRef::Id(part.promise_id);
                    scope.spawn(move || {
                        let _guard = trace.map(push_trace);
                        match self.client.send(
                            &self.map.endpoint_of(part.shard),
                            &Envelope::new()
                                .with_resolution(reference.clone(), ResolutionOp::Commit),
                        ) {
                            Ok(reply) => reply.resolution_for(&reference).is_some(),
                            Err(_) => false,
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("commit fan-out worker"))
                .filter(|acked| *acked)
                .count()
        });
        if acked == parts.len() {
            // Every shard acknowledged: the transaction is fully resolved
            // and its log records are compaction fodder.
            self.resolved.lock().insert(txn.clone());
        }
        if let Some(tel) = &self.telemetry {
            tel.span_since(SpanKind::CoordCommit, commit_started)
                .note(format!("parts={}", parts.len()))
                .finish();
        }
        Ok(ClusterDecision::Granted { parts })
    }

    /// Compacts the decision log: aborted transactions and fully-resolved
    /// commits are dropped, in-doubt Begins and unacknowledged Commits
    /// survive. See [`CoordinatorLog::compact`]. The resolved set is
    /// cleared afterwards — everything in it was just dropped.
    pub fn compact_log(&self) -> Result<LogCompaction, CoordError> {
        let mut resolved = self.resolved.lock();
        let report = self
            .log
            .compact(&resolved)
            .map_err(|e| CoordError::Transport(e.to_string()))?;
        resolved.clear();
        drop(resolved);
        if let Some(tel) = &self.telemetry {
            tel.incr("coord.log.compactions");
            tel.add("coord.log.dropped", report.dropped as u64);
            tel.set_gauge("coord.log.records", self.log.len() as u64);
        }
        Ok(report)
    }

    /// Aborts every hold in `refs` (concurrently — abort resolutions are
    /// as independent as prepares) and logs the Abort decision.
    fn abort_txn(&self, txn: &TxnId, refs: &[(usize, ResolveRef)]) {
        let started = Instant::now();
        let trace = current_trace();
        std::thread::scope(|scope| {
            for (shard, reference) in refs {
                scope.spawn(move || {
                    let _guard = trace.map(push_trace);
                    let _ = self.client.send(
                        &self.map.endpoint_of(*shard),
                        &Envelope::new().with_resolution(reference.clone(), ResolutionOp::Abort),
                    );
                });
            }
        });
        self.log.append(CoordRecord::Abort { txn: txn.clone() });
        self.record_event("2pc.abort", format!("{} holds={}", txn.request, refs.len()));
        if let Some(tel) = &self.telemetry {
            tel.span_since(SpanKind::CoordAbort, started)
                .note(format!("holds={}", refs.len()))
                .finish();
        }
    }

    /// Releases every part of a granted cross-shard promise.
    pub fn release(&self, parts: &[GrantPart]) {
        for part in parts {
            let _ = self.client.send(
                &self.map.endpoint_of(part.shard),
                &Envelope::new().with_release(part.promise_id),
            );
        }
    }

    /// Crash recovery: replays the decision log, presumes undecided
    /// transactions aborted (freeing their holds by request key), and
    /// resends commit resolutions for decided transactions whose sends may
    /// never have left. Safe to run any number of times — every message it
    /// sends is idempotent shard-side.
    pub fn recover(&self) -> Result<CoordRecovery, CoordError> {
        let summary = self
            .log
            .replay()
            .map_err(|e| CoordError::Transport(e.to_string()))?;
        self.record_event(
            "2pc.recover",
            format!(
                "undecided={} committed={} orphan_aborts={}",
                summary.undecided.len(),
                summary.committed.len(),
                summary.orphan_aborts.len()
            ),
        );
        let mut report = CoordRecovery {
            orphan_aborts: summary.orphan_aborts.len(),
            ..CoordRecovery::default()
        };
        if report.orphan_aborts > 0 {
            if let Some(tel) = &self.telemetry {
                tel.add("coord.replay.orphan_abort", report.orphan_aborts as u64);
                // One marked span per orphan so the cluster lifecycle
                // auditor can surface the tolerated no-ops.
                for txn in &summary.orphan_aborts {
                    tel.span_since(SpanKind::CoordAbort, Instant::now())
                        .outcome(SpanOutcome::Deduped)
                        .note(format!("orphan-abort {}", txn.request))
                        .finish();
                }
            }
        }
        for (txn, shards) in &summary.undecided {
            let started = Instant::now();
            let mut freed = 0usize;
            for &shard in shards {
                let reference = ResolveRef::Request {
                    client: txn.client.clone(),
                    request: txn.sub_request(shard),
                };
                if let Ok(reply) = self.client.send(
                    &self.map.endpoint_of(shard),
                    &Envelope::new().with_resolution(reference.clone(), ResolutionOp::Abort),
                ) {
                    if reply.resolution_for(&reference).is_some_and(|r| r.applied) {
                        freed += 1;
                    }
                }
            }
            self.log.append(CoordRecord::Abort { txn: txn.clone() });
            report.presumed_aborted += 1;
            report.holds_freed += freed;
            if let Some(tel) = &self.telemetry {
                tel.span_since(SpanKind::CoordAbort, started)
                    .note(format!("recovery presumed-abort {}", txn.request))
                    .finish();
            }
        }
        for (txn, shards) in &summary.committed {
            let started = Instant::now();
            let mut acked = 0usize;
            for &shard in shards {
                let reference = ResolveRef::Request {
                    client: txn.client.clone(),
                    request: txn.sub_request(shard),
                };
                if let Ok(reply) = self.client.send(
                    &self.map.endpoint_of(shard),
                    &Envelope::new().with_resolution(reference.clone(), ResolutionOp::Commit),
                ) {
                    if reply.resolution_for(&reference).is_some() {
                        acked += 1;
                    }
                }
            }
            if acked == shards.len() {
                self.resolved.lock().insert(txn.clone());
            }
            report.commits_resent += 1;
            if let Some(tel) = &self.telemetry {
                tel.span_since(SpanKind::CoordCommit, started)
                    .note(format!("recovery resend {}", txn.request))
                    .finish();
            }
        }
        Ok(report)
    }
}
