//! Exhaustive-interleaving model of the group-commit state machine.
//!
//! `GroupCommitter::commit_through` is a small lock-and-condvar protocol:
//! append, then loop { durable? → done; no leader? → lead one flush+ship
//! round; already led? → bounded give-up; else wait }. Its correctness
//! claims — no acknowledged record left unflushed, at most one write per
//! record, bounded give-up instead of a wedged data path, no deadlock —
//! are interleaving-sensitive, so this test model-checks them: every
//! lock-held region of the real code becomes one atomic step of a model
//! state machine, and a depth-first scheduler explores *every*
//! interleaving of N callers, asserting the invariants in every reachable
//! state and the postconditions in every terminal state. No external
//! model-checking framework is used (the repo vendors no such dep); the
//! scheduler below is ~60 lines and exhausts ~10^3–10^4 states per
//! scenario.
//!
//! Fidelity notes, mapping model steps to `commit.rs` / `journal.rs`:
//! - `Check` is the committer's lock-held decision point (one mutex
//!   region in the real code, so one atomic step here).
//! - `FlushSnap` / `FlushMark` split `PromiseJournal::flush_all`'s two
//!   lock acquisitions: the tip is snapshotted first and the watermark
//!   raised later, so appends land *between* them exactly as they do
//!   behind the modeled write latency.
//! - `Ship` is `ReplicationLink::sync` (which re-flushes the leader
//!   before shipping — modeled inside the same step).
//! - A `Waiting` thread only steps when `flushing` is false: the real
//!   condvar is notified under the lock right after the leader clears
//!   `flushing`, so wakeups cannot be missed; spurious wakeups re-run an
//!   idempotent check and add no behaviors, so eliding them loses no
//!   safety violations.

use std::collections::HashSet;

const HEALTHY: u8 = 0; // follower acks every ship
const WEDGED: u8 = 1; // follower never acks (100% drop past the retry budget)
const NO_LINK: u8 = 2; // no follower attached

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Pc {
    Append,
    Check,
    FlushSnap,
    FlushMark,
    Ship,
    Unlock,
    Waiting,
    Done,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Caller {
    pc: Pc,
    seq: u64,
    snap: u64,
    led: bool,
    result: Option<bool>,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Model {
    tip: u64,
    flushed: u64,
    watermark: u64,
    flushing: bool,
    writes: u64,
    stalled: u64,
    callers: Vec<Caller>,
}

impl Model {
    fn new(n: usize) -> Self {
        Self {
            tip: 0,
            flushed: 0,
            watermark: 0,
            flushing: false,
            writes: 0,
            stalled: 0,
            callers: vec![
                Caller {
                    pc: Pc::Append,
                    seq: 0,
                    snap: 0,
                    led: false,
                    result: None,
                };
                n
            ],
        }
    }

    fn durable(&self, seq: u64, link: u8) -> bool {
        self.flushed >= seq && (link == NO_LINK || self.watermark >= seq)
    }

    fn enabled(&self, i: usize) -> bool {
        match self.callers[i].pc {
            Pc::Done => false,
            // The condvar wait: runnable once the leader clears the flag
            // (notify_all happens under the same lock that clears it).
            Pc::Waiting => !self.flushing,
            _ => true,
        }
    }

    /// One atomic step of caller `i`. Panics on any invariant violation.
    fn step(&self, i: usize, link: u8) -> Model {
        let mut next = self.clone();
        let c = &mut next.callers[i];
        match c.pc {
            Pc::Append => {
                next.tip += 1;
                c.seq = next.tip;
                c.pc = Pc::Check;
            }
            Pc::Check | Pc::Waiting => {
                if self.durable(c.seq, link) {
                    c.result = Some(true);
                    c.pc = Pc::Done;
                } else if !self.flushing && !c.led {
                    next.flushing = true;
                    c.pc = Pc::FlushSnap;
                } else if c.led {
                    // Bounded give-up: one full round already ran (ours,
                    // or ours plus someone else's in flight) and the
                    // follower is still behind — stop, count, return.
                    next.stalled += 1;
                    c.result = Some(false);
                    c.pc = Pc::Done;
                } else {
                    c.pc = Pc::Waiting;
                }
            }
            Pc::FlushSnap => {
                c.snap = next.tip;
                c.pc = Pc::FlushMark;
            }
            Pc::FlushMark => {
                if c.snap > next.flushed {
                    next.flushed = c.snap;
                    next.writes += 1;
                }
                c.pc = if link == NO_LINK {
                    Pc::Unlock
                } else {
                    Pc::Ship
                };
            }
            Pc::Ship => {
                // sync() re-flushes the leader before shipping, then the
                // follower acks everything flushed — unless wedged.
                if next.tip > next.flushed {
                    next.flushed = next.tip;
                    next.writes += 1;
                }
                if link == HEALTHY {
                    next.watermark = next.flushed;
                }
                c.pc = Pc::Unlock;
            }
            Pc::Unlock => {
                next.flushing = false;
                c.led = true;
                c.pc = Pc::Check;
            }
            Pc::Done => unreachable!("done callers are never scheduled"),
        }
        // Record the completion decision's own postcondition: a `true`
        // return promises durability at that instant.
        let c = next.callers[i];
        if c.pc == Pc::Done && c.result == Some(true) {
            assert!(
                next.durable(c.seq, link),
                "caller {i} acked seq {} without durability: {next:?}",
                c.seq
            );
        }
        next.check_invariants();
        next
    }

    /// Invariants that must hold in *every* reachable state.
    fn check_invariants(&self) {
        assert!(self.flushed <= self.tip, "flushed past the tip: {self:?}");
        assert!(
            self.watermark <= self.flushed,
            "shipped an unflushed record: {self:?}"
        );
        assert!(
            self.writes <= self.flushed,
            "a write that advanced nothing was counted: {self:?}"
        );
    }

    fn terminal(&self) -> bool {
        self.callers.iter().all(|c| c.pc == Pc::Done)
    }
}

/// Explores every interleaving from `state`, asserting invariants along
/// the way and `check_terminal` at every complete schedule. Returns
/// (states visited, terminals reached).
fn explore(n: usize, link: u8, check_terminal: &dyn Fn(&Model)) -> (usize, usize) {
    let mut seen: HashSet<Model> = HashSet::new();
    let mut terminals = 0usize;
    let mut stack = vec![Model::new(n)];
    while let Some(state) = stack.pop() {
        if !seen.insert(state.clone()) {
            continue;
        }
        if state.terminal() {
            check_terminal(&state);
            terminals += 1;
            continue;
        }
        let runnable: Vec<usize> = (0..n).filter(|&i| state.enabled(i)).collect();
        assert!(
            !runnable.is_empty(),
            "deadlock: no caller runnable in non-terminal state {state:?}"
        );
        for i in runnable {
            stack.push(state.step(i, link));
        }
    }
    (seen.len(), terminals)
}

#[test]
fn healthy_link_every_interleaving_acks_durable_and_batches() {
    let n = 3;
    let (states, terminals) = explore(n, HEALTHY, &|m| {
        assert!(
            m.callers.iter().all(|c| c.result == Some(true)),
            "healthy link must ack every caller: {m:?}"
        );
        assert_eq!(m.stalled, 0, "nothing stalls on a healthy link: {m:?}");
        assert_eq!(m.flushed, m.tip, "every record flushed: {m:?}");
        assert_eq!(m.watermark, m.tip, "every record shipped: {m:?}");
        assert!(
            m.writes <= n as u64,
            "more writes than records — batching inverted: {m:?}"
        );
    });
    assert!(terminals > 0);
    // Batching must actually happen on *some* interleaving: a schedule
    // exists where one write covered multiple records.
    let batched = std::cell::Cell::new(false);
    explore(n, HEALTHY, &|m| {
        if m.writes < n as u64 {
            batched.set(true);
        }
    });
    assert!(
        batched.get(),
        "no interleaving of {n} callers shared a batch ({states} states)"
    );
}

#[test]
fn no_link_flush_only_discipline_holds() {
    let n = 3;
    let (_, terminals) = explore(n, NO_LINK, &|m| {
        assert!(m.callers.iter().all(|c| c.result == Some(true)));
        assert_eq!(m.stalled, 0);
        assert_eq!(m.flushed, m.tip);
        assert_eq!(m.watermark, 0, "nothing ships without a link");
    });
    assert!(terminals > 0);
}

#[test]
fn wedged_link_gives_up_bounded_without_losing_local_durability() {
    let n = 3;
    let (_, terminals) = explore(n, WEDGED, &|m| {
        assert!(
            m.callers.iter().all(|c| c.result == Some(false)),
            "a wedged follower can never satisfy the barrier: {m:?}"
        );
        assert_eq!(
            m.stalled, n as u64,
            "every caller's give-up is counted: {m:?}"
        );
        assert_eq!(
            m.flushed, m.tip,
            "local durability survives the wedge: {m:?}"
        );
        assert_eq!(m.watermark, 0);
    });
    // Termination across all interleavings *is* the boundedness proof:
    // the DFS only reaches terminals because every caller leads at most
    // one round before giving up.
    assert!(terminals > 0);
}
